"""repro.analysis: determinism & cache-coherence static analyzer.

Three layers of coverage:

* **Corpus** — known-bad/known-good fixtures under ``analysis_corpus/``
  pin the exact (rule, line) findings of every rule, plus the ``noqa``
  and baseline suppression machinery.
* **Meta** — the analyzer runs clean (zero unbaselined findings, zero
  stale baseline entries) over ``src/repro`` against the checked-in
  ``analysis-baseline.json``.
* **Surgery** — deleting any single ``sorted()`` wrap in ``egraph.py``
  or any ``to_wire`` payload field in ``codec.py`` must produce a new
  finding: the analyzer, not luck, guards those invariants.
"""

import ast
import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    Baseline,
    BaselineEntry,
    analyze_source,
    apply_baseline,
    build_model,
    iter_python_files,
    load_baseline,
    parse_noqa,
    run_analysis,
)

REPO = Path(__file__).resolve().parent.parent
CORPUS = Path(__file__).resolve().parent / "analysis_corpus"
BASELINE = REPO / "analysis-baseline.json"


def _findings_for(name):
    source = (CORPUS / name).read_text(encoding="utf-8")
    return analyze_source(source, str(CORPUS / name))


def _rule_lines(result):
    return Counter((f.rule, f.line) for f in result.findings)


# ----------------------------------------------------------------------
# Rule corpus: exact finding counts and line numbers
# ----------------------------------------------------------------------
class TestCorpus:
    def test_det001_bad(self):
        result = _findings_for("det001_bad.py")
        assert _rule_lines(result) == Counter({
            ("DET001", 7): 1,    # for item in items (set)
            ("DET001", 12): 1,   # list(items)
            ("DET001", 16): 1,   # return set as List
            ("DET001", 20): 1,   # set as wire dict value
            ("DET001", 24): 1,   # unsorted dict iteration in wire code
        })

    def test_det001_good_clean(self):
        result = _findings_for("det001_good.py")
        assert result.findings == []

    def test_det002_bad(self):
        result = _findings_for("det002_bad.py")
        assert _rule_lines(result) == Counter({
            ("DET002", 7): 1,    # sorted(..., key=id)
            ("DET002", 11): 1,   # id(obj) in a sort key lambda
            ("DET002", 15): 1,   # table[hash(name)]
        })

    def test_det002_good_clean(self):
        result = _findings_for("det002_good.py")
        assert result.findings == []

    def test_det003_bad(self):
        result = _findings_for("det003_bad.py")
        assert _rule_lines(result) == Counter({
            ("DET003", 12): 1,   # time.time() in *_to_wire
            ("DET003", 17): 1,   # random.randrange in fingerprint_*
            ("DET003", 22): 1,   # uuid.uuid4 in *_cache_key
        })

    def test_det003_good_clean(self):
        result = _findings_for("det003_good.py")
        assert result.findings == []

    def test_egr001_bad(self):
        result = _findings_for("egr001_bad.py")
        assert _rule_lines(result) == Counter({
            ("EGR001", 16): 1,   # memo[class_id] after union
            ("EGR001", 22): 2,   # root == other, both stale on re-entry
        })

    def test_egr001_good_clean(self):
        result = _findings_for("egr001_good.py")
        assert result.findings == []

    def test_wire001_bad(self):
        result = _findings_for("wire001_bad.py")
        assert _rule_lines(result) == Counter({
            ("WIRE001", 14): 1,  # to_wire forgets total_time
            ("WIRE001", 22): 1,  # from_wire forgets iterations
        })
        messages = sorted(f.message for f in result.findings)
        assert "total_time" in messages[1]
        assert "iterations" in messages[0]

    def test_wire001_good_clean(self):
        result = _findings_for("wire001_good.py")
        assert result.findings == []

    def test_key001_bad(self):
        result = _findings_for("key001_bad.py")
        assert _rule_lines(result) == Counter({
            ("KEY001", 18): 3,   # bogus exclusion + 2 undocumented
            ("KEY001", 21): 2,   # refine_rounds/renamed_away unkeyed
        })

    def test_key001_good_clean(self):
        result = _findings_for("key001_good.py")
        assert result.findings == []

    def test_every_rule_has_a_bad_fixture(self):
        # Acceptance: each of the 6 rules has >= 1 known-bad fixture.
        assert set(RULES) == {"DET001", "DET002", "DET003", "EGR001",
                              "WIRE001", "KEY001"}
        for rule in RULES:
            fixture = CORPUS / f"{rule.lower()}_bad.py"
            assert fixture.exists(), fixture
            result = _findings_for(fixture.name)
            assert any(f.rule == rule for f in result.findings), rule


# ----------------------------------------------------------------------
# Suppression: noqa comments and the JSON baseline
# ----------------------------------------------------------------------
class TestSuppression:
    def test_noqa_suppresses_named_rule(self):
        result = _findings_for("det001_good.py")
        assert [f.rule for f in result.suppressed] == ["DET001"]
        assert result.suppressed[0].line == 33

    def test_noqa_parsing_variants(self):
        lines = [
            "x = 1  # repro: noqa",
            "y = 2  # repro: noqa DET001",
            "z = 3  # repro: noqa: DET001, EGR001",
            "w = 4  # unrelated comment",
        ]
        parsed = parse_noqa(lines)
        assert parsed[1] is None                      # all rules
        assert parsed[2] == frozenset({"DET001"})
        assert parsed[3] == frozenset({"DET001", "EGR001"})
        assert 4 not in parsed

    def test_noqa_other_rule_does_not_suppress(self):
        source = (
            "from typing import List, Set\n"
            "def freeze(items: Set[int]) -> List[int]:\n"
            "    return list(items)  # repro: noqa EGR001\n")
        result = analyze_source(source, "x.py")
        assert [f.rule for f in result.findings] == ["DET001"]

    def test_baseline_matches_by_content_not_line(self):
        source = (
            "from typing import List, Set\n"
            "def freeze(items: Set[int]) -> List[int]:\n"
            "    return list(items)\n")
        result = analyze_source(source, "x.py")
        (finding,) = result.findings
        baseline = Baseline(entries=[BaselineEntry(
            rule=finding.rule, path=finding.path, context=finding.context,
            content=finding.content, justification="reviewed")])
        # Same finding, shifted three lines down: still baselined.
        shifted = analyze_source("\n\n\n" + source, "x.py")
        new, accepted, stale = apply_baseline(shifted.findings, baseline)
        assert new == [] and stale == []
        assert len(accepted) == 1

    def test_stale_baseline_entry_reported(self):
        baseline = Baseline(entries=[BaselineEntry(
            rule="DET001", path="gone.py", context="nowhere",
            content="for x in s:", justification="obsolete")])
        new, accepted, stale = apply_baseline([], baseline)
        assert [e.path for e in stale] == ["gone.py"]

    def test_baseline_requires_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "DET001", "path": "x.py",
                         "context": "f", "content": "pass",
                         "justification": "   "}],
        }))
        with pytest.raises(ValueError, match="justification"):
            load_baseline(str(path))


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------
class TestCli:
    def _run(self, *args, cwd=REPO):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, cwd=cwd,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})

    def test_findings_exit_one(self):
        proc = self._run(str(CORPUS / "det001_bad.py"))
        assert proc.returncode == 1
        assert "DET001" in proc.stdout

    def test_clean_exit_zero(self):
        proc = self._run(str(CORPUS / "det001_good.py"))
        assert proc.returncode == 0

    def test_json_report(self):
        proc = self._run(str(CORPUS / "det001_bad.py"), "--json")
        payload = json.loads(proc.stdout)
        assert payload["files_analyzed"] == 1
        assert len(payload["findings"]) == 5
        assert all(f["rule"] == "DET001" for f in payload["findings"])

    def test_write_then_apply_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        proc = self._run(str(CORPUS / "det001_bad.py"),
                         "--write-baseline", str(baseline))
        assert proc.returncode == 0
        proc = self._run(str(CORPUS / "det001_bad.py"),
                         "--baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout
        assert "5 baselined" in proc.stdout

    def test_rules_filter(self):
        proc = self._run(str(CORPUS / "det001_bad.py"),
                         "--rules", "EGR001")
        assert proc.returncode == 0  # no EGR001 findings in that fixture

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule in RULES:
            assert rule in proc.stdout


# ----------------------------------------------------------------------
# Meta: the analyzer runs clean over src/repro against the baseline
# ----------------------------------------------------------------------
class TestTreeIsClean:
    def test_src_has_zero_unbaselined_findings(self, monkeypatch):
        monkeypatch.chdir(REPO)
        result = run_analysis(["src"])
        assert result.errors == []
        baseline = load_baseline(str(BASELINE))
        new, accepted, stale = apply_baseline(result.findings, baseline)
        assert new == [], [f"{f.location()} {f.rule} {f.message}"
                           for f in new]
        assert stale == [], [e.context for e in stale]

    def test_baseline_justifications_are_real(self):
        payload = json.loads(BASELINE.read_text(encoding="utf-8"))
        for entry in payload["entries"]:
            assert len(entry["justification"]) > 20
            assert "TODO" not in entry["justification"]


# ----------------------------------------------------------------------
# Surgery: the analyzer guards egraph.py's sorted() wraps and codec.py's
# wire fields (acceptance criteria)
# ----------------------------------------------------------------------
def _whole_tree_model():
    parsed = []
    for path in iter_python_files([str(REPO / "src")]):
        parsed.append((path, ast.parse(Path(path).read_text("utf-8"))))
    return build_model(parsed)


def _splice_out_call(source, call, replacement):
    """Replace a call's source span with ``replacement``."""
    lines = source.splitlines(keepends=True)
    start = sum(len(l) for l in lines[:call.lineno - 1]) + call.col_offset
    end = (sum(len(l) for l in lines[:call.end_lineno - 1])
           + call.end_col_offset)
    return source[:start] + replacement + source[end:]


class TestSurgery:
    @pytest.fixture(scope="class")
    def model(self):
        return _whole_tree_model()

    def test_deleting_any_sorted_wrap_in_egraph_is_caught(self, model):
        path = REPO / "src/repro/egraph/egraph.py"
        rel = "src/repro/egraph/egraph.py"
        source = path.read_text(encoding="utf-8")
        base_keys = {f.baseline_key
                     for f in analyze_source(source, rel, model).findings}
        tree = ast.parse(source)
        sorted_calls = [
            node for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"]
        assert len(sorted_calls) >= 7  # the guarded determinism wraps

        caught, excluded = [], []
        for call in sorted_calls:
            inner = ast.get_source_segment(source, call.args[0])
            mutated = _splice_out_call(source, call, inner)
            result = analyze_source(mutated, rel, model)
            new = [f for f in result.findings
                   if f.baseline_key not in base_keys]
            # tuple(sorted(canonical.children)) is a *semantic* multiset
            # sort (children is already an ordered tuple); deleting it
            # changes dedup behaviour, not determinism, and is out of
            # scope for DET001 — the one documented exclusion.
            is_child_multiset = (isinstance(call.args[0], ast.Attribute)
                                 and call.args[0].attr == "children")
            if is_child_multiset:
                excluded.append(call.lineno)
            else:
                assert new, (f"deleting sorted() at egraph.py:"
                             f"{call.lineno} went undetected")
                caught.append(call.lineno)
        assert len(excluded) == 1
        assert len(caught) == len(sorted_calls) - 1

    def test_deleting_any_to_wire_field_in_codec_is_caught(self, model):
        path = REPO / "src/repro/store/codec.py"
        rel = "src/repro/store/codec.py"
        source = path.read_text(encoding="utf-8")
        base_keys = {f.baseline_key
                     for f in analyze_source(source, rel, model).findings}
        tree = ast.parse(source)
        lines = source.splitlines(keepends=True)

        deleted = 0
        for func in tree.body:
            if (not isinstance(func, ast.FunctionDef)
                    or not func.name.endswith("to_wire")):
                continue
            params = {a.arg for a in func.args.args}
            for node in ast.walk(func):
                if not isinstance(node, ast.Dict):
                    continue
                for key, value in zip(node.keys, node.values):
                    if key is None:
                        continue
                    used = {n.id for n in ast.walk(value)
                            if isinstance(n, ast.Name)}
                    if not (used & params):
                        continue
                    # Splice out "key": value (and the trailing comma).
                    start = (sum(len(l) for l in lines[:key.lineno - 1])
                             + key.col_offset)
                    end = (sum(len(l)
                               for l in lines[:value.end_lineno - 1])
                           + value.end_col_offset)
                    tail = source[end:]
                    stripped = tail.lstrip()
                    if stripped.startswith(","):
                        end += len(tail) - len(stripped) + 1
                    mutated = source[:start] + source[end:]
                    try:
                        result = analyze_source(mutated, rel, model)
                    except SyntaxError:  # pragma: no cover
                        continue
                    new = [f for f in result.findings
                           if f.baseline_key not in base_keys
                           and f.rule == "WIRE001"]
                    assert new, (f"deleting {func.name} field "
                                 f"{key.value!r} went undetected")
                    deleted += 1
        assert deleted >= 20  # every dataclass payload field is guarded


# ----------------------------------------------------------------------
# mypy gate (runs when mypy is available; CI installs it)
# ----------------------------------------------------------------------
class TestTyping:
    def test_py_typed_marker_exists(self):
        assert (REPO / "src/repro/py.typed").exists()

    def test_mypy_clean_on_strict_targets(self):
        pytest.importorskip("mypy")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "-p", "repro.store",
             "-m", "repro.core.phases"],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
