"""Tests for the e-graph engine: union-find, congruence, matching, extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egraph import (
    EGraph,
    ENode,
    Op,
    Rewrite,
    Runner,
    RunnerLimits,
    StopReason,
    TreeCostExtractor,
    UnionFind,
    apply_rules,
    ematch,
    expr_of,
    parse_pattern,
    pattern_vars,
)


class TestUnionFind:
    def test_singletons_are_their_own_root(self):
        uf = UnionFind()
        a = uf.make_set()
        b = uf.make_set()
        assert uf.find(a) == a
        assert uf.find(b) == b

    def test_union_merges(self):
        uf = UnionFind()
        a, b, c = uf.make_set(), uf.make_set(), uf.make_set()
        uf.union(a, b)
        uf.union(b, c)
        assert uf.find(c) == uf.find(a)

    def test_union_keeps_first_argument_root(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        root = uf.union(a, b)
        assert root == a

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_transitivity_property(self, pairs):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(20)]
        for a, b in pairs:
            uf.union(ids[a], ids[b])
        # find is idempotent and consistent
        for a, b in pairs:
            assert uf.in_same_set(ids[a], ids[b])
        for x in ids:
            assert uf.find(uf.find(x)) == uf.find(x)


class TestENode:
    def test_arity_validation(self):
        with pytest.raises(ValueError):
            ENode(Op.AND, (1,))

    def test_leaf_str(self):
        assert str(ENode(Op.VAR, (), "a")) == "a"
        assert str(ENode(Op.CONST, (), True)) == "1"


class TestEGraphBasics:
    def test_hashcons_dedupes(self):
        eg = EGraph()
        a = eg.var("a")
        b = eg.var("b")
        first = eg.add_term(Op.AND, a, b)
        second = eg.add_term(Op.AND, a, b)
        assert first == second
        assert eg.num_classes == 3

    def test_var_lookup_is_stable(self):
        eg = EGraph()
        assert eg.var("x") == eg.var("x")

    def test_union_merges_classes(self):
        eg = EGraph()
        a = eg.var("a")
        b = eg.var("b")
        assert eg.union(a, b)
        assert not eg.union(a, b)
        assert eg.find(a) == eg.find(b)

    def test_congruence_after_union(self):
        """f(a) and f(b) must merge when a and b merge (upward congruence)."""
        eg = EGraph()
        a = eg.var("a")
        b = eg.var("b")
        fa = eg.add_term(Op.NOT, a)
        fb = eg.add_term(Op.NOT, b)
        assert eg.find(fa) != eg.find(fb)
        eg.union(a, b)
        eg.rebuild()
        assert eg.find(fa) == eg.find(fb)

    def test_nested_congruence(self):
        eg = EGraph()
        a, b, c = eg.var("a"), eg.var("b"), eg.var("c")
        left = eg.add_term(Op.AND, eg.add_term(Op.AND, a, b), c)
        right = eg.add_term(Op.AND, eg.add_term(Op.AND, a, b), c)
        assert eg.find(left) == eg.find(right)

    def test_add_expr(self):
        eg = EGraph()
        root = eg.add_expr(("&", "a", ("~", "b")))
        assert eg.num_classes == 4
        assert eg.find(root) == root

    def test_lookup(self):
        eg = EGraph()
        a = eg.var("a")
        node = ENode(Op.NOT, (a,))
        assert eg.lookup(node) is None
        added = eg.add(node)
        assert eg.lookup(node) == eg.find(added)

    def test_prune_duplicates(self):
        eg = EGraph()
        a, b = eg.var("a"), eg.var("b")
        c1 = eg.add_term(Op.AND, a, b)
        c2 = eg.add_term(Op.AND, b, a)
        eg.union(c1, c2)
        eg.rebuild()
        removed = eg.prune_duplicates({Op.AND})
        assert removed == 1


class TestPatterns:
    def test_parse_and_vars(self):
        pattern = parse_pattern("(& ?a (~ ?b))")
        assert pattern_vars(pattern) == ["?a", "?b"]

    def test_parse_constant(self):
        pattern = parse_pattern("(& ?a 1)")
        assert pattern_vars(pattern) == ["?a"]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_pattern("(& ?a ?b) extra")

    def test_ematch_finds_all_ands(self):
        eg = EGraph()
        a, b, c = eg.var("a"), eg.var("b"), eg.var("c")
        eg.add_term(Op.AND, a, b)
        eg.add_term(Op.AND, b, c)
        matches = ematch(eg, parse_pattern("(& ?x ?y)"))
        assert len(matches) == 2

    def test_ematch_nonlinear_pattern(self):
        """A repeated pattern variable must bind to the same e-class."""
        eg = EGraph()
        a, b = eg.var("a"), eg.var("b")
        eg.add_term(Op.AND, a, a)
        eg.add_term(Op.AND, a, b)
        matches = ematch(eg, parse_pattern("(& ?x ?x)"))
        assert len(matches) == 1

    def test_ematch_nested(self):
        eg = EGraph()
        root = eg.add_expr(("~", ("&", "a", "b")))
        matches = ematch(eg, parse_pattern("(~ (& ?x ?y))"))
        assert len(matches) == 1
        assert matches[0][0] == eg.find(root)


class TestRewriteRules:
    def test_parse_rejects_unbound_rhs_vars(self):
        with pytest.raises(ValueError):
            Rewrite.parse("bad", "(& ?a ?b)", "(| ?a ?c)")

    def test_commutativity_saturates(self):
        eg = EGraph()
        root = eg.add_expr(("&", "a", "b"))
        rule = Rewrite.parse("comm", "(& ?a ?b)", "(& ?b ?a)")
        report = Runner(RunnerLimits(max_iterations=5)).run(eg, [rule])
        assert report.stop_reason == StopReason.SATURATED
        nodes = eg.enodes(root)
        assert len(nodes) == 2

    def test_double_negation_merges_with_original(self):
        eg = EGraph()
        a = eg.var("a")
        double = eg.add_expr(("~", ("~", "a")))
        rule = Rewrite.parse("nn", "(~ (~ ?a))", "?a")
        apply_rules(eg, [rule])
        assert eg.find(double) == eg.find(a)

    def test_conditional_rule(self):
        eg = EGraph()
        eg.add_expr(("&", "a", "b"))
        rule = Rewrite.parse("never", "(& ?a ?b)", "(& ?b ?a)",
                             condition=lambda *_: False)
        stats = apply_rules(eg, [rule])
        assert stats["never"].applications == 0

    def test_applier_rule_sorts_children(self):
        from repro.core.rules_xor_maj import _sorted_applier
        eg = EGraph()
        root1 = eg.add_expr(("^", ("^", "a", "b"), "c"))
        root2 = eg.add_expr(("^", ("^", "c", "b"), "a"))
        # make the nested xor classes equal so both become xor3 over {a,b,c}
        rules = [
            Rewrite.parse("xor-comm", "(^ ?a ?b)", "(^ ?b ?a)"),
            Rewrite.parse("xor-assoc", "(^ (^ ?a ?b) ?c)", "(^ ?a (^ ?b ?c))",
                          bidirectional=True),
            Rewrite.with_applier("xor3", "(^ (^ ?a ?b) ?c)",
                                 _sorted_applier(Op.XOR3, ("?a", "?b", "?c"))),
        ]
        Runner(RunnerLimits(max_iterations=6)).run(eg, rules)
        assert eg.find(root1) == eg.find(root2)

    def test_node_limit_stops_runner(self):
        eg = EGraph()
        eg.add_expr(("&", ("&", "a", "b"), ("&", "c", "d")))
        rules = [Rewrite.parse("assoc", "(& (& ?a ?b) ?c)", "(& ?a (& ?b ?c))",
                               bidirectional=True),
                 Rewrite.parse("comm", "(& ?a ?b)", "(& ?b ?a)")]
        limits = RunnerLimits(max_iterations=50, max_nodes=10)
        report = Runner(limits).run(eg, rules)
        assert report.stop_reason in (StopReason.NODE_LIMIT, StopReason.SATURATED)


class TestExtraction:
    def test_extracts_smaller_equivalent(self):
        eg = EGraph()
        root = eg.add_expr(("&", "a", ("~", ("~", "b"))))
        rule = Rewrite.parse("nn", "(~ (~ ?a))", "?a")
        apply_rules(eg, [rule])
        result = TreeCostExtractor().extract(eg)
        assert expr_of(result, root) == ("&", "a", "b")

    def test_extraction_reaches_all_roots(self):
        eg = EGraph()
        roots = [eg.add_expr(("&", "a", "b")), eg.add_expr(("|", "a", "c"))]
        result = TreeCostExtractor().extract(eg)
        for root in roots:
            assert result.has_choice(root)

    def test_count_ops(self):
        from repro.egraph import count_ops
        eg = EGraph()
        root = eg.add_expr(("&", ("&", "a", "b"), ("~", "c")))
        result = TreeCostExtractor().extract(eg)
        counts = count_ops(result, [root])
        assert counts[Op.AND] == 2
        assert counts[Op.NOT] == 1
