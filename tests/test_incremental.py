"""Tests for the incremental (delta) e-matching engine.

The key property: a saturation run that matches only against the dirty
frontier after iteration 0 must converge to the same e-graph as a run that
re-scans everything every iteration.  This is exercised on random AIGs with
the debug cross-check enabled (which asserts after every delta iteration
that a full scan finds nothing more).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, lit_not
from repro.core.construct import aig_to_egraph
from repro.core.rules_basic import basic_rules
from repro.core.rules_xor_maj import identification_rules
from repro.egraph import (
    EGraph,
    Op,
    Rewrite,
    Runner,
    RunnerLimits,
    StopReason,
    apply_rules,
    compile_pattern,
    parse_pattern,
)


@st.composite
def random_aigs(draw):
    """Generate a small random AIG: a DAG of AND gates over negated fanins."""
    num_inputs = draw(st.integers(min_value=2, max_value=4))
    num_gates = draw(st.integers(min_value=1, max_value=12))
    aig = AIG(name="rand")
    literals = [aig.add_input(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_gates):
        a = literals[draw(st.integers(0, len(literals) - 1))]
        b = literals[draw(st.integers(0, len(literals) - 1))]
        if draw(st.booleans()):
            a = lit_not(a)
        if draw(st.booleans()):
            b = lit_not(b)
        literals.append(aig.and_(a, b))
    aig.add_output(literals[-1], "f")
    return aig


def _class_partition(construction):
    """The grouping of AIG variables into e-classes (canonical-id agnostic)."""
    egraph = construction.egraph
    groups = {}
    for var, class_id in construction.class_of_var.items():
        groups.setdefault(egraph.find(class_id), set()).add(var)
    return {frozenset(group) for group in groups.values()}


def _saturate(aig, incremental, rules, debug_check=False):
    construction = aig_to_egraph(aig)
    limits = RunnerLimits(max_iterations=8, max_nodes=50_000,
                          match_limit=None)
    runner = Runner(limits, incremental=incremental,
                    debug_check_full=debug_check)
    report = runner.run(construction.egraph, rules)
    return construction, report


class TestDeltaMatchingEquivalence:
    @given(random_aigs())
    @settings(max_examples=20, deadline=None)
    def test_delta_equals_full_scan_on_random_aigs(self, aig):
        """Delta matching reaches the same saturated e-graph as full scans."""
        rules = basic_rules()
        full_con, _ = _saturate(aig, incremental=False, rules=rules)
        delta_con, _ = _saturate(aig, incremental=True, rules=rules,
                                 debug_check=True)
        assert full_con.egraph.num_classes == delta_con.egraph.num_classes
        assert full_con.egraph.num_nodes == delta_con.egraph.num_nodes
        assert _class_partition(full_con) == _class_partition(delta_con)

    @given(random_aigs())
    @settings(max_examples=10, deadline=None)
    def test_delta_equals_full_scan_with_identification_rules(self, aig):
        """The deeper R2 patterns also saturate identically under delta."""
        rules = basic_rules() + identification_rules(include_variants=False)
        full_con, _ = _saturate(aig, incremental=False, rules=rules)
        delta_con, _ = _saturate(aig, incremental=True, rules=rules,
                                 debug_check=True)
        assert full_con.egraph.num_classes == delta_con.egraph.num_classes
        assert full_con.egraph.num_nodes == delta_con.egraph.num_nodes
        assert _class_partition(full_con) == _class_partition(delta_con)

    def test_delta_round_finds_matches_of_new_nodes(self):
        """apply_rules with an explicit dirty set only rescans the frontier."""
        eg = EGraph()
        eg.add_expr(("~", ("~", "a")))
        rule = Rewrite.parse("nn", "(~ (~ ?x))", "?x")
        apply_rules(eg, [rule])  # full scan saturates
        eg.take_dirty()
        stats = apply_rules(eg, [rule], dirty=set())
        assert stats["nn"].matches == 0  # empty frontier, nothing rescanned

        double = eg.add_expr(("~", ("~", "b")))
        dirty = eg.take_dirty()
        stats = apply_rules(eg, [rule], dirty=dirty, verify_full=True)
        assert stats["nn"].matches == 1
        assert eg.find(double) == eg.find(eg.var("b"))

    def test_union_dirties_parents_for_nonlinear_patterns(self):
        """A union below an existing node must re-enable matches above it."""
        eg = EGraph()
        a, b = eg.var("a"), eg.var("b")
        root = eg.add_term(Op.AND, a, b)
        rule = Rewrite.parse("idem", "(& ?x ?x)", "?x")
        apply_rules(eg, [rule])  # no match yet: a != b
        eg.take_dirty()
        eg.union(a, b)
        eg.rebuild()
        stats = apply_rules(eg, [rule], dirty=eg.take_dirty(),
                            verify_full=True)
        assert stats["idem"].unions == 1
        assert eg.find(root) == eg.find(a)


class TestMatchPlans:
    def test_plan_shape(self):
        plan = compile_pattern(parse_pattern("(| (& ?a ?b) (& (~ ?a) ?c))"))
        assert plan.root_op == Op.OR
        assert plan.height == 3  # ?a under the ~ under the & under the |
        assert plan.op_min_depth[Op.OR] == 0
        assert plan.op_min_depth[Op.AND] == 1
        assert plan.op_min_depth[Op.NOT] == 2

    def test_plan_skips_rule_with_absent_operator(self):
        eg = EGraph()
        eg.add_expr(("&", "a", "b"))
        plan = compile_pattern(parse_pattern("(^ ?x ?y)"))
        assert not list(plan.search(eg))
        assert plan.candidate_roots(eg) == []

    def test_candidate_classes_survive_unions(self):
        eg = EGraph()
        a, b, c = eg.var("a"), eg.var("b"), eg.var("c")
        and1 = eg.add_term(Op.AND, a, b)
        and2 = eg.add_term(Op.AND, a, c)
        eg.union(and1, and2)
        eg.rebuild()
        candidates = eg.candidate_classes(Op.AND)
        assert candidates == {eg.find(and1)}

    def test_stats_count_and_cap_after_condition(self):
        """Match counts must agree between capped and uncapped runs.

        This exercises the deprecated flat ``max_matches_per_rule`` path of
        ``apply_rules`` (no scheduler): matches beyond the cap are cut as a
        deterministic suffix of the seq-sorted match stream.  Runner-driven
        saturation uses the :class:`BackoffScheduler` instead (see
        ``tests/test_determinism.py``).
        """
        eg = EGraph()
        eg.add_expr(("&", "a", "b"))
        eg.add_expr(("&", "c", "d"))
        never = Rewrite.parse("never", "(& ?x ?y)", "(& ?y ?x)",
                              condition=lambda *_: False)
        stats = apply_rules(eg, [never], max_matches_per_rule=1)
        assert stats["never"].matches == 0  # condition filtered, not capped
        assert not stats["never"].capped

        eg2 = EGraph()
        eg2.add_expr(("&", "a", "b"))
        eg2.add_expr(("&", "c", "d"))
        comm = Rewrite.parse("comm", "(& ?x ?y)", "(& ?y ?x)")
        stats = apply_rules(eg2, [comm], max_matches_per_rule=1)
        assert stats["comm"].matches == 1
        assert stats["comm"].capped


class TestRunnerStopReasons:
    def _explosive_rules(self):
        return [Rewrite.parse("assoc", "(& (& ?a ?b) ?c)", "(& ?a (& ?b ?c))",
                              bidirectional=True),
                Rewrite.parse("comm", "(& ?a ?b)", "(& ?b ?a)")]

    def _chain(self, eg, depth=4):
        expr = "x0"
        for i in range(1, depth + 1):
            expr = ("&", expr, f"x{i}")
        return eg.add_expr(expr)

    def test_time_limit(self):
        eg = EGraph()
        self._chain(eg)
        limits = RunnerLimits(max_iterations=100, time_limit=0.0)
        report = Runner(limits).run(eg, self._explosive_rules())
        assert report.stop_reason == StopReason.TIME_LIMIT
        assert report.num_iterations == 0

    def test_node_limit(self):
        eg = EGraph()
        self._chain(eg)
        limits = RunnerLimits(max_iterations=100, max_nodes=12)
        report = Runner(limits).run(eg, self._explosive_rules())
        assert report.stop_reason == StopReason.NODE_LIMIT

    def test_class_limit(self):
        eg = EGraph()
        self._chain(eg)
        limits = RunnerLimits(max_iterations=100, max_nodes=10_000,
                              max_classes=10)
        report = Runner(limits).run(eg, self._explosive_rules())
        assert report.stop_reason == StopReason.CLASS_LIMIT

    def test_iteration_limit(self):
        eg = EGraph()
        self._chain(eg)
        limits = RunnerLimits(max_iterations=1, max_nodes=10_000,
                              max_classes=10_000)
        report = Runner(limits).run(eg, self._explosive_rules())
        assert report.stop_reason == StopReason.ITERATION_LIMIT
        assert report.num_iterations == 1

    def test_saturated_and_frontier_shrinks(self):
        eg = EGraph()
        eg.add_expr(("&", "a", "b"))
        rule = Rewrite.parse("comm", "(& ?a ?b)", "(& ?b ?a)")
        report = Runner(RunnerLimits(max_iterations=10)).run(eg, [rule])
        assert report.stop_reason == StopReason.SATURATED
        # iteration 0 is a full scan, later iterations report their frontier
        assert report.iterations[0].frontier_size is None
        assert all(it.frontier_size is not None
                   for it in report.iterations[1:])
