"""Known-bad DET001 fixture: unordered collections leak order."""

from typing import Dict, List, Set


def iterate_set(items: Set[int]) -> None:
    for item in items:                      # line 7: DET001 (iteration)
        print(item)


def freeze_set(items: Set[int]) -> List[int]:
    return list(items)                      # line 12: DET001 (list() call)


def return_set_as_list(items: Set[int]) -> List[int]:
    return items                            # line 16: DET001 (return)


def wire_escape_to_wire(items: Set[int]) -> Dict:
    return {"items": items}                 # line 20: DET001 (dict value)


def dict_iter_to_wire(mapping: Dict[str, int]) -> List[str]:
    return [key for key in mapping]         # line 24: DET001 (wire dict)
