"""Known-good WIRE001 fixture: every field crosses the wire."""

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Report:
    stop_reason: str
    total_time: float
    iterations: List[int] = field(default_factory=list)


def report_to_wire(report: Report) -> Dict:
    return {
        "stop_reason": report.stop_reason,
        "total_time": report.total_time,
        "iterations": list(report.iterations),
    }


def report_from_wire(wire: Dict) -> Report:
    report = Report(stop_reason=wire["stop_reason"],
                    total_time=wire["total_time"])
    for value in wire["iterations"]:
        # Post-construction fills through the result variable count.
        report.iterations.append(value)
    return report
