"""Known-bad DET003 fixture: entropy inside canonical-payload code."""

import random
import time
import uuid
from typing import Dict


def report_to_wire(stats: Dict[str, int]) -> Dict:
    return {
        "stats": sorted(stats.items()),
        "written_at": time.time(),          # line 12: DET003
    }


def fingerprint_run(seed_space: int) -> int:
    nonce = random.randrange(seed_space)    # line 17: DET003
    return nonce


def make_cache_key(name: str) -> str:
    return f"{name}-{uuid.uuid4()}"         # line 22: DET003
