"""Known-good EGR001 fixture: ids re-canonicalized before keyed use."""

from typing import Dict, List


class EGraph:
    def add(self, op: str) -> int: ...
    def find(self, class_id: int) -> int: ...
    def union(self, a: int, b: int) -> bool: ...
    def class_ids(self) -> List[int]: ...


def refind_after_union(egraph: EGraph, memo: Dict[int, str]) -> None:
    class_id = egraph.add("AND")
    egraph.union(class_id, 0)
    class_id = egraph.find(class_id)        # re-canonicalized
    memo[class_id] = "and"


def safe_consumers(egraph: EGraph) -> None:
    class_id = egraph.add("AND")
    egraph.union(class_id, 0)
    # union()/find() canonicalize their arguments internally.
    egraph.union(class_id, 1)
    egraph.find(class_id)
