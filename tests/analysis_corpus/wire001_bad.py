"""Known-bad WIRE001 fixture: codec pair drops dataclass fields."""

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Report:
    stop_reason: str
    total_time: float
    iterations: List[int] = field(default_factory=list)


def report_to_wire(report: Report) -> Dict:     # line 14: WIRE001 ×1
    return {
        "stop_reason": report.stop_reason,
        "iterations": list(report.iterations),
        # total_time is forgotten
    }


def report_from_wire(wire: Dict) -> Report:     # line 22: WIRE001 ×1
    return Report(
        stop_reason=wire["stop_reason"],
        total_time=wire.get("total_time", 0.0),
        # iterations is forgotten — silently reset on every restore
    )
