"""Known-good DET001 fixture: every consumption is order-safe."""

from typing import Dict, List, Set


def iterate_sorted(items: Set[int]) -> None:
    for item in sorted(items):
        print(item)


def freeze_sorted(items: Set[int]) -> List[int]:
    return sorted(items)


def order_insensitive_consumers(items: Set[int]) -> int:
    total = sum(items)
    largest = max(items)
    other: Set[int] = {item * 2 for item in items}
    return total + largest + len(other)


def dict_iteration_outside_wire(mapping: Dict[str, int]) -> List[str]:
    # Plain dicts iterate in insertion order; only wire/fingerprint code
    # needs a canonical (sorted) order.
    return [key for key in mapping]


def sorted_dict_to_wire(mapping: Dict[str, int]) -> Dict:
    return {"items": sorted(mapping.items())}


def suppressed(items: Set[int]) -> List[int]:
    return list(items)  # repro: noqa DET001 -- caller sorts downstream
