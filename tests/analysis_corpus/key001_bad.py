"""Known-bad KEY001 fixture: an option escapes the fingerprint."""

from dataclasses import dataclass
from typing import Dict


@dataclass
class BoolEOptions:
    iterations: int = 3
    match_limit: int = 100
    refine_rounds: int = 0
    checkpoint_every: int = 0
    renamed_away: int = 1


# ``cadence`` is not a field (rename drift) and ``checkpoint_every`` has
# no written justification anywhere in this file.
_NON_SEMANTIC_OPTION_FIELDS = frozenset({"cadence", "checkpoint_every"})


def fingerprint_options(options: BoolEOptions) -> Dict:
    # refine_rounds and renamed_away are neither excluded nor digested:
    # changing them would silently reuse a stale cached artifact.
    return {
        "iterations": options.iterations,
        "match_limit": options.match_limit,
    }
