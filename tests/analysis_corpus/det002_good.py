"""Known-good DET002 fixture: hash() only inside __hash__/__eq__."""

from typing import Tuple


class Node:
    def __init__(self, op: str, children: Tuple[int, ...]) -> None:
        self.op = op
        self.children = children

    def __hash__(self) -> int:
        return hash((self.op, self.children))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Node)
                and hash(self) == hash(other))


def shadowed_id(id: int) -> int:
    # ``id`` here is a local variable, not the builtin.
    return id + 1
