"""Known-good DET003 fixture: clocks stay outside payload code."""

import time
from typing import Dict


def run_with_timing(payload: Dict) -> float:
    # Wall-clock reads are fine in ordinary code paths (progress,
    # timings): only wire/fingerprint/cache-key functions are restricted.
    started = time.perf_counter()
    process(payload)
    return time.perf_counter() - started


def report_to_wire(stats: Dict[str, int], elapsed: float) -> Dict:
    # Timing measured by the caller is data, not a clock read.
    return {"stats": sorted(stats.items()), "elapsed": elapsed}


def process(payload: Dict) -> None:
    del payload
