"""Known-bad EGR001 fixture: e-class ids used stale after unions."""

from typing import Dict, List, Set


class EGraph:
    def add(self, op: str) -> int: ...
    def find(self, class_id: int) -> int: ...
    def union(self, a: int, b: int) -> bool: ...
    def class_ids(self) -> List[int]: ...


def collect_then_mutate(egraph: EGraph, memo: Dict[int, str]) -> None:
    class_id = egraph.add("AND")
    egraph.union(class_id, 0)
    memo[class_id] = "and"                  # line 16: EGR001 (subscript)


def loop_reentry(egraph: EGraph, keep: Set[int]) -> None:
    root = egraph.find(3)
    for other in egraph.class_ids():
        if root == other:                   # line 21: EGR001 (compare)
            continue
        egraph.union(root, other)
