"""Known-bad DET002 fixture: process-dependent keys."""

from typing import Dict, List


def sort_by_identity(objects: List[object]) -> List[object]:
    return sorted(objects, key=id)          # no call — builtins referenced


def sort_by_id_call(objects: List[object]) -> List[object]:
    return sorted(objects, key=lambda obj: id(obj))   # line 11: DET002


def keyed_by_hash(name: str, table: Dict[int, str]) -> None:
    table[hash(name)] = name                # line 15: DET002
