"""Known-good KEY001 fixture: exclusions audited and documented."""

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class BoolEOptions:
    iterations: int = 3
    match_limit: int = 100
    checkpoint_every: int = 0


_NON_SEMANTIC_OPTION_FIELDS = frozenset({"checkpoint_every"})


def fingerprint_options(options: BoolEOptions) -> Dict:
    """Digest every semantic option field.

    ``checkpoint_every`` is excluded because checkpoint cadence cannot
    change results: resume is bit-identical to an uninterrupted run.
    """
    return {f.name: getattr(options, f.name) for f in fields(options)
            if f.name not in _NON_SEMANTIC_OPTION_FIELDS}
