"""Tests for the cell library, technology mapper and dch-style optimiser."""

import pytest

from repro.aig import AIG, multiplier_value_check, output_truth_tables
from repro.generators import booth_multiplier, csa_multiplier
from repro.netlist import (
    CellNetlist,
    MappingOptions,
    default_library,
    map_and_blast,
    technology_map,
)
from repro.opt import (
    DchOptions,
    RestructureOptions,
    dch_optimize,
    post_mapping_flow,
    rebalance_and_trees,
    restructure_majorities,
    restructure_xor_trees,
)


class TestCellLibrary:
    def test_cell_truth_tables(self):
        library = default_library()
        assert library.cell("NAND2").function == 0b0111
        assert library.cell("NOR2").function == 0b0001
        assert library.cell("XOR2").function == 0b0110
        assert library.cell("INV").function == 0b01

    def test_aoi21_function(self):
        library = default_library()
        # AOI21 = ~((a & b) | c); a=var0, b=var1, c=var2
        expected = 0
        for m in range(8):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            if not ((a and b) or c):
                expected |= 1 << m
        assert library.cell("AOI21").function == expected

    def test_inverting_cells_marked(self):
        library = default_library()
        assert library.cell("NAND2").inverting
        assert not library.cell("AND2").inverting

    def test_match_table_covers_both_phases(self):
        library = default_library()
        table = library.match_table(max_arity=2)
        and2 = 0b1000
        nand2 = 0b0111
        assert (2, and2) in table
        assert (2, nand2) in table

    def test_blast_matches_function(self):
        """Every cell's blast decomposition must implement its truth table."""
        library = default_library()
        for cell in library:
            aig = AIG()
            inputs = [aig.add_input(f"x{i}") for i in range(cell.num_inputs)]
            aig.add_output(cell.blast(aig, inputs))
            assert output_truth_tables(aig)[0] == cell.function, cell.name

    def test_library_size(self):
        assert len(default_library()) >= 20


class TestTechnologyMapper:
    @pytest.mark.parametrize("width", [3, 4])
    def test_mapping_preserves_function_csa(self, width):
        circuit = csa_multiplier(width)
        mapped = map_and_blast(circuit.aig)
        assert multiplier_value_check(mapped, width, width)

    @pytest.mark.parametrize("width", [3, 4])
    def test_mapping_preserves_function_booth(self, width):
        circuit = booth_multiplier(width)
        mapped = map_and_blast(circuit.aig)
        assert multiplier_value_check(mapped, width, width, signed=True)

    def test_netlist_structure_valid(self):
        circuit = csa_multiplier(4)
        netlist = technology_map(circuit.aig)
        netlist.validate()
        assert netlist.num_instances > 0
        assert set(netlist.cell_histogram()) <= set(default_library().names())

    def test_mapping_uses_complex_cells(self):
        circuit = csa_multiplier(4)
        netlist = technology_map(circuit.aig)
        histogram = netlist.cell_histogram()
        complex_cells = [name for name in histogram
                         if name not in ("INV", "BUF", "NAND2", "AND2")]
        assert complex_cells, "mapping should use multi-input cells"

    def test_small_cut_option(self):
        circuit = csa_multiplier(3)
        mapped = map_and_blast(circuit.aig, options=MappingOptions(cut_size=2))
        assert multiplier_value_check(mapped, 3, 3)

    def test_area_positive(self):
        circuit = csa_multiplier(3)
        netlist = technology_map(circuit.aig)
        assert netlist.area() > 0

    def test_undriven_net_rejected(self):
        from repro.netlist import CellInstance
        netlist = CellNetlist(inputs=["a"],
                              instances=[CellInstance("INV", ("missing",), "y")],
                              outputs=[("y", "o")])
        with pytest.raises(ValueError):
            netlist.validate()


class TestRestructuring:
    @pytest.mark.parametrize("width", [3, 4, 5])
    def test_xor_restructure_preserves_function(self, width):
        circuit = csa_multiplier(width)
        options = RestructureOptions(merge_fraction=1.0)
        restructured = restructure_xor_trees(circuit.aig, options)
        assert multiplier_value_check(restructured, width, width)

    @pytest.mark.parametrize("width", [3, 4])
    def test_maj_restructure_preserves_function(self, width):
        circuit = csa_multiplier(width)
        restructured = restructure_majorities(circuit.aig)
        assert multiplier_value_check(restructured, width, width)

    @pytest.mark.parametrize("width", [3, 4])
    def test_rebalance_preserves_function(self, width):
        circuit = csa_multiplier(width)
        rebalanced = rebalance_and_trees(circuit.aig)
        assert multiplier_value_check(rebalanced, width, width)

    def test_dch_preserves_function_booth(self):
        circuit = booth_multiplier(4)
        optimized = dch_optimize(circuit.aig)
        assert multiplier_value_check(optimized, 4, 4, signed=True)

    def test_dch_changes_structure(self):
        circuit = csa_multiplier(6)
        optimized = dch_optimize(circuit.aig)
        assert optimized.num_gates != circuit.aig.num_gates

    def test_merge_fraction_zero_keeps_block_boundaries(self):
        """With merging disabled the cut detector still sees every FA."""
        from repro.baselines import detect_adder_tree
        circuit = csa_multiplier(5)
        options = DchOptions(restructure=RestructureOptions(merge_fraction=0.0))
        optimized = dch_optimize(circuit.aig, options)
        report = detect_adder_tree(optimized)
        assert report.num_npn_fas == circuit.num_full_adders

    def test_merge_fraction_one_hides_blocks(self):
        """Aggressive merging makes some FAs invisible to cut enumeration."""
        from repro.baselines import detect_adder_tree
        circuit = csa_multiplier(5)
        options = DchOptions(restructure=RestructureOptions(merge_fraction=1.0))
        optimized = dch_optimize(circuit.aig, options)
        report = detect_adder_tree(optimized)
        assert report.num_npn_fas < circuit.num_full_adders


class TestPostMappingFlow:
    @pytest.mark.parametrize("width", [3, 4])
    def test_flow_preserves_function(self, width):
        circuit = csa_multiplier(width)
        mapped = post_mapping_flow(circuit.aig)
        assert multiplier_value_check(mapped, width, width)

    def test_flow_without_optimisation(self):
        circuit = csa_multiplier(3)
        mapped = post_mapping_flow(circuit.aig, optimize=False)
        assert multiplier_value_check(mapped, 3, 3)

    def test_flow_degrades_cut_based_detection(self):
        """The post-mapping flow hides part of the adder tree from ABC-style
        detection (the motivation for BoolE, Section III)."""
        from repro.baselines import detect_adder_tree
        circuit = csa_multiplier(8)
        mapped = post_mapping_flow(circuit.aig)
        report = detect_adder_tree(mapped)
        assert report.num_npn_fas < circuit.num_full_adders
