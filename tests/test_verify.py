"""Tests for the polynomial algebra and the SCA multiplier verifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BoolEOptions
from repro.generators import booth_multiplier, csa_multiplier
from repro.opt import dch_optimize
from repro.verify import (
    AdderBlockSpec,
    MultiplierVerifier,
    Polynomial,
    blocks_from_cut_report,
    verify_baseline,
    verify_with_boole,
)


class TestPolynomial:
    def test_zero(self):
        assert Polynomial.zero().is_zero()

    def test_constant(self):
        poly = Polynomial.constant(5)
        assert poly.coefficient(()) == 5

    def test_addition_cancels(self):
        x = Polynomial.variable(1)
        assert (x - x).is_zero()

    def test_multiplication_idempotent_variables(self):
        x = Polynomial.variable(1)
        assert (x * x) == x

    def test_literal_polynomial(self):
        poly = Polynomial.from_literal(3, negated=True)
        assert poly.coefficient(()) == 1
        assert poly.coefficient({3}) == -1

    def test_substitute(self):
        # x*y with x := 1 - z  ->  y - z*y
        poly = Polynomial.variable(1) * Polynomial.variable(2)
        result = poly.substitute(1, Polynomial.from_literal(3, True))
        assert result.coefficient({2}) == 1
        assert result.coefficient({2, 3}) == -1

    def test_linear_coefficient(self):
        poly = Polynomial.variable(1).scale(4) + Polynomial.variable(2) * Polynomial.variable(3)
        assert poly.linear_coefficient(1) == 4
        assert poly.linear_coefficient(2) is None
        assert poly.linear_coefficient(9) == 0

    @given(st.integers(-5, 5), st.integers(-5, 5), st.booleans(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_evaluation_matches_arithmetic(self, ca, cb, xa, xb):
        poly = Polynomial.variable(1).scale(ca) + Polynomial.variable(2).scale(cb)
        value = poly.evaluate({1: int(xa), 2: int(xb)})
        assert value == ca * int(xa) + cb * int(xb)

    @given(st.booleans(), st.booleans(), st.booleans())
    @settings(max_examples=16, deadline=None)
    def test_and_gate_identity(self, a, b, c):
        """out = x*y models an AND gate exactly on 0/1 values."""
        gate = Polynomial.variable(1) * Polynomial.variable(2)
        assert gate.evaluate({1: int(a), 2: int(b)}) == int(a and b)


class TestVerifierOnCleanMultipliers:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_csa_verifies_without_blocks(self, width):
        circuit = csa_multiplier(width)
        verifier = MultiplierVerifier(max_poly_size=200_000, time_limit=60)
        result = verifier.verify(circuit.aig, width, width)
        assert result.verified

    @pytest.mark.parametrize("width", [2, 3])
    def test_booth_verifies_signed(self, width):
        circuit = booth_multiplier(width)
        verifier = MultiplierVerifier(max_poly_size=200_000, time_limit=60)
        result = verifier.verify(circuit.aig, width, width, signed=True)
        assert result.verified

    def test_buggy_multiplier_is_refuted(self):
        circuit = csa_multiplier(3)
        aig = circuit.aig
        # Corrupt one output by complementing it.
        aig.outputs[2] = aig.outputs[2] ^ 1
        verifier = MultiplierVerifier(max_poly_size=200_000, time_limit=60)
        result = verifier.verify(aig, 3, 3)
        assert not result.verified
        assert result.status == "refuted"

    def test_block_rewriting_reduces_polynomial_size(self):
        width = 4
        circuit = csa_multiplier(width)
        verifier = MultiplierVerifier(max_poly_size=500_000, time_limit=60)
        from repro.baselines import detect_adder_tree
        report = detect_adder_tree(circuit.aig)
        blocks = blocks_from_cut_report(circuit.aig, report)
        plain = verifier.verify(circuit.aig, width, width)
        assisted = verifier.verify(circuit.aig, width, width, blocks=blocks)
        assert assisted.verified and plain.verified
        assert assisted.max_poly_size <= plain.max_poly_size


class TestTableIIConfigurations:
    def test_boole_configuration_verifies_dch_netlist(self):
        width = 4
        circuit = csa_multiplier(width)
        optimized = dch_optimize(circuit.aig)
        run = verify_with_boole(optimized, width, width,
                                options=BoolEOptions(r1_iterations=3, r2_iterations=3),
                                verifier=MultiplierVerifier(max_poly_size=500_000,
                                                            time_limit=120))
        assert run.result.verified
        assert run.num_exact_fas > 0

    def test_baseline_configuration_runs(self):
        width = 4
        circuit = csa_multiplier(width)
        optimized = dch_optimize(circuit.aig)
        run = verify_baseline(optimized, width, width,
                              verifier=MultiplierVerifier(max_poly_size=500_000,
                                                          time_limit=120))
        assert run.result.status in ("verified", "timeout", "size_limit")

    def test_size_limit_reported(self):
        width = 6
        circuit = csa_multiplier(width)
        optimized = dch_optimize(circuit.aig)
        tight = MultiplierVerifier(max_poly_size=50, time_limit=30)
        run = verify_baseline(optimized, width, width, verifier=tight)
        assert run.result.timed_out

    def test_block_spec_properties(self):
        block = AdderBlockSpec(inputs=(2, 4, 6), sum_lit=8, carry_lit=10)
        assert block.is_full_adder
        half = AdderBlockSpec(inputs=(2, 4), sum_lit=8, carry_lit=10)
        assert not half.is_full_adder
