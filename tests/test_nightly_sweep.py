"""Slow equivalence sweep for the nightly CI cron job.

Gated behind ``REPRO_NIGHTLY=1`` (see ``.github/workflows/nightly.yml``):
these runs use larger random AIGs, the full R1+R2 ruleset and the expensive
``debug_check_full`` cross-check — several minutes of work, far beyond the
per-PR property-test budget in ``tests/test_incremental.py`` and
``tests/test_determinism.py``.

Every case asserts the three engine contracts at a size the fast tests
cannot afford:

* delta e-matching converges to the same e-graph as full scans;
* the back-off scheduler (tiny budgets, many bans) loses no matches;
* ``debug_check_full`` stays silent after every delta iteration.
"""

import os
import random

import pytest

from repro.aig import AIG, lit_not
from repro.core.construct import aig_to_egraph
from repro.core.rules_basic import basic_rules
from repro.core.rules_xor_maj import identification_rules
from repro.egraph import Runner, RunnerLimits

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_NIGHTLY"),
    reason="slow nightly sweep; set REPRO_NIGHTLY=1 to run")


def _random_aig(seed: int, num_inputs: int, num_gates: int) -> AIG:
    rng = random.Random(seed)
    aig = AIG(name=f"sweep{seed}")
    literals = [aig.add_input(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_gates):
        a = rng.choice(literals)
        b = rng.choice(literals)
        if rng.random() < 0.5:
            a = lit_not(a)
        if rng.random() < 0.5:
            b = lit_not(b)
        literals.append(aig.and_(a, b))
    for lit in literals[-max(1, num_inputs // 2):]:
        aig.add_output(lit)
    return aig


def _partition(construction):
    egraph = construction.egraph
    groups = {}
    for var, class_id in construction.class_of_var.items():
        groups.setdefault(egraph.find(class_id), set()).add(var)
    return {frozenset(group) for group in groups.values()}


_CASES = [(seed, inputs, gates)
          for seed in range(8)
          for inputs, gates in ((6, 40), (8, 80))]


@pytest.mark.parametrize("seed,num_inputs,num_gates", _CASES)
def test_delta_equals_full_scan_large(seed, num_inputs, num_gates):
    """Delta + debug cross-check vs. full scans on larger random AIGs."""
    aig = _random_aig(seed, num_inputs, num_gates)
    rules = basic_rules() + identification_rules(include_variants=True)
    limits = RunnerLimits(max_iterations=10, max_nodes=150_000,
                          match_limit=None)

    full = aig_to_egraph(aig)
    Runner(limits, incremental=False).run(full.egraph, rules)
    delta = aig_to_egraph(aig)
    Runner(limits, incremental=True,
           debug_check_full=True).run(delta.egraph, rules)

    assert full.egraph.num_classes == delta.egraph.num_classes
    assert (full.egraph.num_canonical_nodes()
            == delta.egraph.num_canonical_nodes())
    assert _partition(full) == _partition(delta)


@pytest.mark.parametrize("seed", range(6))
def test_backoff_sweep_loses_no_matches(seed):
    """Tiny budgets (constant banning) still reach the uncapped fixpoint."""
    aig = _random_aig(1000 + seed, 4, 20)
    rules = basic_rules()
    uncapped = aig_to_egraph(aig)
    Runner(RunnerLimits(max_iterations=40, match_limit=None),
           incremental=False).run(uncapped.egraph, rules)
    banned = aig_to_egraph(aig)
    report = Runner(RunnerLimits(max_iterations=40, match_limit=8,
                                 ban_length=1),
                    incremental=True,
                    debug_check_full=True).run(banned.egraph, rules)
    assert report.saturated
    assert report.total_bans() > 0, "budget never exceeded; case too small"
    assert uncapped.egraph.num_classes == banned.egraph.num_classes
    assert (uncapped.egraph.num_canonical_nodes()
            == banned.egraph.num_canonical_nodes())
    assert _partition(uncapped) == _partition(banned)
