"""Soundness tests for the BoolE rulesets (R1 and R2).

Every rewrite rule is checked by brute force: the left-hand side is
instantiated over fresh variables in an e-graph, the rule is applied once,
and every e-node that ends up in the matched e-class must evaluate to the
same Boolean value as the original expression under every input assignment.
An unsound rule would corrupt every downstream result, so this is the most
important test in the suite.
"""

from itertools import product

import pytest

from repro.core import basic_rules, full_basic_rules, identification_rules, ruleset_summary
from repro.core.rules_xor_maj import maj_rules, xor_rules
from repro.egraph import EGraph, Op, apply_rules
from repro.egraph.pattern import instantiate, pattern_vars


def _eval_class(egraph, class_id, assignment, visiting=None):
    """Evaluate an e-class as a Boolean function (first evaluable node)."""
    class_id = egraph.find(class_id)
    if visiting is None:
        visiting = frozenset()
    if class_id in assignment:
        return assignment[class_id]
    if class_id in visiting:
        return None
    visiting = visiting | {class_id}
    for node in egraph.enodes(class_id):
        value = _eval_node(egraph, node, assignment, visiting)
        if value is not None:
            return value
    return None


def _eval_node(egraph, node, assignment, visiting):
    if node.op == Op.VAR:
        return assignment.get(egraph.find(egraph.var(node.payload)))
    if node.op == Op.CONST:
        return bool(node.payload)
    values = [_eval_class(egraph, child, assignment, visiting)
              for child in node.children]
    if any(value is None for value in values):
        return None
    if node.op == Op.NOT:
        return not values[0]
    if node.op == Op.AND:
        return values[0] and values[1]
    if node.op == Op.OR:
        return values[0] or values[1]
    if node.op == Op.XOR:
        return values[0] ^ values[1]
    if node.op == Op.XNOR:
        return not (values[0] ^ values[1])
    if node.op == Op.XOR3:
        return values[0] ^ values[1] ^ values[2]
    if node.op == Op.MAJ:
        return (values[0] and values[1]) or (values[0] and values[2]) \
            or (values[1] and values[2])
    return None


def _rule_is_sound(rule) -> bool:
    names = pattern_vars(rule.lhs)
    for bits in product([False, True], repeat=len(names)):
        egraph = EGraph()
        var_classes = {name: egraph.var(name.lstrip("?")) for name in names}
        root = instantiate(egraph, rule.lhs, dict(var_classes))
        egraph.rebuild()
        assignment = {egraph.find(cls): bit
                      for cls, bit in zip(var_classes.values(), bits)}
        before = _eval_class(egraph, root, dict(assignment))
        apply_rules(egraph, [rule])
        assignment = {egraph.find(cls): bit
                      for cls, bit in zip(var_classes.values(), bits)}
        if before is None:
            continue
        for node in egraph.enodes(egraph.find(root)):
            value = _eval_node(egraph, node, dict(assignment), frozenset({egraph.find(root)}))
            if value is not None and value != before:
                return False
    return True


ALL_RULES = full_basic_rules() + identification_rules(True)


@pytest.mark.parametrize("rule", ALL_RULES, ids=lambda rule: rule.name)
def test_rule_soundness(rule):
    assert _rule_is_sound(rule), f"rule {rule.name} changes the Boolean function"


class TestRulesetStructure:
    def test_lightweight_is_subset_of_full(self):
        light_names = {rule.name for rule in basic_rules(lightweight=True)}
        full_names = {rule.name for rule in basic_rules(lightweight=False)}
        assert light_names <= full_names

    def test_rule_names_unique(self):
        names = [rule.name for rule in ALL_RULES]
        assert len(names) == len(set(names))

    def test_groups_assigned(self):
        for rule in ALL_RULES:
            assert rule.group in ("R1", "R2-xor", "R2-maj")

    def test_summary_counts_match(self):
        summary = ruleset_summary(lightweight=False, include_variants=True)
        assert summary["R2-xor"] == len(xor_rules(True))
        assert summary["R2-maj"] == len(maj_rules(True))
        assert summary["total"] == (summary["R1-basic"] + summary["R2-xor"]
                                    + summary["R2-maj"])

    def test_variant_generation_expands_xor_rules(self):
        assert len(xor_rules(True)) > len(xor_rules(False))

    def test_xor_and_maj_rule_volumes(self):
        """The identification library is dominated by XOR rules, as in the paper."""
        assert len(xor_rules(True)) > len(maj_rules(True)) > 10
