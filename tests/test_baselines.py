"""Tests for the ABC-style and Gamora-style baselines."""

import pytest

from repro.baselines import (
    GamoraModel,
    detect_adder_tree,
    default_gamora_model,
    predict_adder_tree,
)
from repro.generators import csa_multiplier, csa_upper_bound_fa, ripple_carry_adder
from repro.opt import post_mapping_flow


class TestAbcAtree:
    @pytest.mark.parametrize("width", [3, 4, 6, 8])
    def test_premapping_csa_reaches_upper_bound(self, width):
        """RQ1: on pre-mapping netlists cut enumeration finds every NPN FA."""
        circuit = csa_multiplier(width)
        report = detect_adder_tree(circuit.aig)
        assert report.num_npn_fas == csa_upper_bound_fa(width)

    def test_ripple_carry_adder_fas_detected(self):
        aig, blocks = ripple_carry_adder(6)
        report = detect_adder_tree(aig)
        expected = sum(1 for block in blocks if block.kind == "FA")
        assert report.num_npn_fas == expected

    def test_exact_subset_of_npn(self):
        circuit = csa_multiplier(6)
        report = detect_adder_tree(circuit.aig)
        assert report.num_exact_fas <= report.num_npn_fas

    def test_half_adders_detected(self):
        circuit = csa_multiplier(4)
        report = detect_adder_tree(circuit.aig)
        assert report.num_npn_has > 0

    def test_postmapping_detection_degrades(self):
        """RQ2 motivation: mapping hides part of the adder tree from ABC."""
        circuit = csa_multiplier(8)
        mapped = post_mapping_flow(circuit.aig)
        pre = detect_adder_tree(circuit.aig)
        post = detect_adder_tree(mapped)
        assert post.num_npn_fas < pre.num_npn_fas

    def test_empty_netlist(self):
        from repro.aig import AIG
        aig = AIG()
        aig.add_input("a")
        report = detect_adder_tree(aig)
        assert report.num_npn_fas == 0

    def test_fa_matches_reference_distinct_nodes(self):
        circuit = csa_multiplier(5)
        report = detect_adder_tree(circuit.aig)
        for fa in report.full_adders:
            assert fa.sum_var != fa.carry_var
            assert len(fa.leaves) == 3


class TestGamora:
    def test_default_model_is_cached(self):
        assert default_gamora_model() is default_gamora_model()

    def test_training_collects_shapes(self):
        model = GamoraModel(depth=3).fit([csa_multiplier(4).aig])
        assert model.num_trained_shapes > 0

    @pytest.mark.parametrize("width", [4, 6])
    def test_premapping_recall_is_high(self, width):
        circuit = csa_multiplier(width)
        prediction = predict_adder_tree(circuit.aig)
        assert prediction.num_npn_fas >= 0.9 * circuit.num_full_adders

    def test_postmapping_recall_below_abc(self):
        """The paper's ordering on mapped netlists: Gamora <= ABC."""
        circuit = csa_multiplier(8)
        mapped = post_mapping_flow(circuit.aig)
        abc = detect_adder_tree(mapped)
        gamora = predict_adder_tree(mapped)
        assert gamora.num_npn_fas <= abc.num_npn_fas

    def test_predictions_are_not_marked_exact(self):
        circuit = csa_multiplier(4)
        prediction = predict_adder_tree(circuit.aig)
        assert all(not fa.exact for fa in prediction.full_adders)

    def test_untrained_model_predicts_nothing(self):
        model = GamoraModel(depth=3)
        prediction = model.predict(csa_multiplier(4).aig)
        assert prediction.num_npn_fas == 0
