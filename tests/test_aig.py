"""Unit tests for the AIG data structure, simulation and AIGER I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import (
    AIG,
    CONST0,
    CONST1,
    aig_equivalent,
    cone_truth_table,
    from_aag_string,
    lit_is_compl,
    lit_not,
    lit_var,
    make_lit,
    output_truth_tables,
    to_aag_string,
    table_mask,
    var_table,
)


class TestLiterals:
    def test_make_lit_positive(self):
        assert make_lit(5) == 10

    def test_make_lit_complemented(self):
        assert make_lit(5, True) == 11

    def test_lit_var_roundtrip(self):
        assert lit_var(make_lit(7, True)) == 7

    def test_lit_not_toggles(self):
        assert lit_not(10) == 11
        assert lit_not(11) == 10

    def test_lit_is_compl(self):
        assert not lit_is_compl(10)
        assert lit_is_compl(11)


class TestAIGConstruction:
    def test_inputs_get_names(self):
        aig = AIG()
        lit = aig.add_input("x")
        assert aig.input_name(lit_var(lit)) == "x"

    def test_and_constant_false(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.and_(a, CONST0) == CONST0

    def test_and_constant_true(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.and_(a, CONST1) == a

    def test_and_idempotent(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.and_(a, a) == a

    def test_and_complement_is_false(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.and_(a, aig.not_(a)) == CONST0

    def test_structural_hashing_reuses_gates(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        first = aig.and_(a, b)
        second = aig.and_(b, a)
        assert first == second
        assert aig.num_gates == 1

    def test_or_via_de_morgan(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.or_(a, b))
        assert output_truth_tables(aig)[0] == 0b1110

    def test_xor_truth_table(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.xor_(a, b))
        assert output_truth_tables(aig)[0] == 0b0110

    def test_mux_truth_table(self):
        aig = AIG()
        s = aig.add_input()
        t = aig.add_input()
        e = aig.add_input()
        aig.add_output(aig.mux_(s, t, e))
        # minterm order: s=var0, t=var1, e=var2
        expected = 0
        for m in range(8):
            s_v, t_v, e_v = m & 1, (m >> 1) & 1, (m >> 2) & 1
            if (t_v if s_v else e_v):
                expected |= 1 << m
        assert output_truth_tables(aig)[0] == expected

    def test_full_adder_outputs(self):
        aig = AIG()
        a, b, c = (aig.add_input() for _ in range(3))
        s, carry = aig.full_adder(a, b, c)
        aig.add_output(s)
        aig.add_output(carry)
        sum_tt, carry_tt = output_truth_tables(aig)
        assert sum_tt == 0b10010110
        assert carry_tt == 0b11101000

    def test_levels_and_depth(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        c = aig.add_input()
        out = aig.and_(aig.and_(a, b), c)
        aig.add_output(out)
        assert aig.depth() == 2
        assert aig.levels()[lit_var(a)] == 0

    def test_unknown_literal_rejected(self):
        aig = AIG()
        with pytest.raises(ValueError):
            aig.and_(2, 100)


class TestCleanupAndCopy:
    def test_cleanup_removes_dangling(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.and_(a, b)          # dangling
        keep = aig.or_(a, b)
        aig.add_output(keep)
        cleaned = aig.cleanup()
        assert cleaned.num_gates < aig.num_gates
        assert aig_equivalent(aig, cleaned)

    def test_copy_is_equivalent(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.xor_(a, b))
        assert aig_equivalent(aig, aig.copy())


class TestSimulation:
    def test_simulate_single_pattern(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.and_(a, b))
        assert aig.evaluate({lit_var(a): True, lit_var(b): True}) == [True]
        assert aig.evaluate({lit_var(a): True, lit_var(b): False}) == [False]

    def test_bit_parallel_matches_single(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.xor_(a, b))
        words = {lit_var(a): 0b0101, lit_var(b): 0b0011}
        values = aig.simulate(words, mask=0b1111)
        assert aig.output_words(values, 0b1111)[0] == 0b0110


class TestTruthTables:
    def test_var_table_patterns(self):
        assert var_table(0, 2) == 0b1010
        assert var_table(1, 2) == 0b1100

    def test_table_mask(self):
        assert table_mask(3) == 0xFF

    def test_cone_truth_table_xor(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        x = aig.xor_(a, b)
        table = cone_truth_table(aig, lit_var(x), (lit_var(a), lit_var(b)))
        # the node itself computes XNOR (the XOR literal is complemented)
        assert table in (0b0110, 0b1001)

    def test_cone_depends_outside_leaves_raises(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        c = aig.add_input()
        node = aig.and_(aig.and_(a, b), c)
        with pytest.raises(ValueError):
            cone_truth_table(aig, lit_var(node), (lit_var(a), lit_var(b)))


class TestAiger:
    def test_roundtrip_preserves_function(self):
        aig = AIG(name="rt")
        a = aig.add_input("a")
        b = aig.add_input("b")
        c = aig.add_input("c")
        aig.add_output(aig.maj3_(a, b, c), "maj")
        aig.add_output(aig.xor3_(a, b, c), "sum")
        text = to_aag_string(aig)
        parsed = from_aag_string(text)
        assert parsed.num_inputs == 3
        assert parsed.num_outputs == 2
        assert aig_equivalent(aig, parsed)

    def test_header_validation(self):
        with pytest.raises(ValueError):
            from_aag_string("not an aiger file")

    def test_latches_rejected(self):
        with pytest.raises(ValueError):
            from_aag_string("aag 1 0 1 0 0\n2\n")

    def test_write_read_file(self, tmp_path):
        from repro.aig import read_aag, write_aag
        aig = AIG(name="file")
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_output(aig.and_(a, b), "y")
        path = write_aag(aig, tmp_path / "test.aag")
        loaded = read_aag(path)
        assert aig_equivalent(aig, loaded)


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=50, deadline=None)
    def test_random_expression_equivalence(self, seed_a, seed_b):
        """AND/OR/XOR built from AIG primitives obey integer semantics."""
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_output(aig.and_(a, b))
        aig.add_output(aig.or_(a, b))
        aig.add_output(aig.xor_(a, b))
        bit_a = bool(seed_a & 1)
        bit_b = bool(seed_b & 1)
        out = aig.evaluate({lit_var(a): bit_a, lit_var(b): bit_b})
        assert out == [bit_a and bit_b, bit_a or bit_b, bit_a ^ bit_b]

    @given(st.lists(st.booleans(), min_size=3, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_full_adder_semantics(self, bits):
        aig = AIG()
        ins = [aig.add_input() for _ in range(3)]
        s, c = aig.full_adder(*ins)
        aig.add_output(s)
        aig.add_output(c)
        out = aig.evaluate({lit_var(lit): bit for lit, bit in zip(ins, bits)})
        total = sum(bits)
        assert out[0] == bool(total & 1)
        assert out[1] == bool(total >> 1)
