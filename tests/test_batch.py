"""Tests for the BatchPipeline driver.

Covers the three executor backends (serial / thread / process), the
lightweight-result contract of the process backend (``keep_results`` is
no longer silently disabled — workers ship reports + counts + the
reconstructed netlist, just not the e-graph), chunked submission,
broken-pool requeue, and the headline determinism property: all three
backends produce bit-identical report aggregates for the same job list,
across ``PYTHONHASHSEED`` values (subprocess cases).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import (
    BatchJob,
    BatchPipeline,
    BatchReport,
    BoolEOptions,
    BoolEPipeline,
)
from repro.core.batch import _chunked
from repro.generators import csa_multiplier, ripple_carry_adder

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

FAST = BoolEOptions(r1_iterations=2, r2_iterations=2, count_npn=False)


def small_jobs():
    return [
        BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST),
        BatchJob("rca4", ripple_carry_adder(4)[0], options=FAST),
        BatchJob("csa2", csa_multiplier(2).aig, options=FAST),
    ]


class TestBatchPipeline:
    def test_batch_matches_serial_results(self):
        report = BatchPipeline(max_workers=2, executor="thread").run(
            small_jobs())
        assert report.num_failed == 0
        assert [item.name for item in report.items] == ["rca3", "rca4", "csa2"]
        serial = BoolEPipeline(FAST).run(ripple_carry_adder(4)[0])
        batch = report.item("rca4")
        assert batch.summary["exact_fas"] == serial.summary()["exact_fas"]
        assert batch.summary["paired_fas"] == serial.summary()["paired_fas"]
        assert batch.result is not None  # thread backend keeps full results
        assert batch.result.construction is not None

    def test_accepts_bare_aigs(self):
        aig, _ = ripple_carry_adder(3)
        report = BatchPipeline(FAST, executor="serial").run([aig])
        assert report.num_ok == 1
        assert report.items[0].name == aig.name

    def test_failure_is_isolated(self):
        jobs = [BatchJob("bad", aig=None),
                BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST)]
        report = BatchPipeline(max_workers=2, executor="thread").run(jobs)
        assert report.num_failed == 1
        assert report.num_ok == 1
        (name, error), = report.failures()
        assert name == "bad"
        assert error
        assert report.item("rca3").ok

    def test_failure_is_isolated_in_process_workers(self):
        jobs = [BatchJob("bad", aig=None),
                BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST)]
        report = BatchPipeline(max_workers=1, executor="process",
                               chunk_size=1).run(jobs)
        assert report.num_failed == 1
        assert report.item("rca3").ok

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_bad_job_options_fail_alone(self, backend):
        """Invalid per-job options (pipeline construction raises) must
        fail that job only — never abort the batch or poison chunk-mates.
        BoolEOptions validates at construction, so simulate options that
        went bad afterwards (mutation skips __post_init__); the extractor
        still rejects them when the job's pipeline is built."""
        bad = BoolEOptions()
        bad.refine_rounds = -1
        jobs = [BatchJob("bad-options", ripple_carry_adder(3)[0],
                         options=bad),
                BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST)]
        report = BatchPipeline(executor=backend, max_workers=1,
                               chunk_size=2).run(jobs)
        assert report.num_failed == 1
        (name, error), = report.failures()
        assert name == "bad-options"
        assert "refine_rounds" in error
        assert report.item("rca3").ok

    def test_per_job_options_override_default(self):
        no_extract = BoolEOptions(r1_iterations=1, r2_iterations=1,
                                  extract=False, count_npn=False)
        jobs = [BatchJob("plain", ripple_carry_adder(3)[0], options=FAST),
                BatchJob("no-extract", ripple_carry_adder(3)[0],
                         options=no_extract)]
        report = BatchPipeline(FAST, executor="thread").run(jobs)
        assert report.num_failed == 0
        assert report.item("plain").result.extracted_aig is not None
        assert report.item("no-extract").result.extracted_aig is None

    def test_aggregate_and_throughput(self):
        report = BatchPipeline(max_workers=2, keep_results=False,
                               executor="thread").run(small_jobs())
        totals = report.aggregate()
        assert totals["exact_fas"] == sum(
            item.summary["exact_fas"] for item in report.items)
        assert report.throughput > 0
        assert report.total_runtime >= max(item.runtime
                                           for item in report.items)
        assert all(item.result is None for item in report.items)

    def test_deterministic_aggregate_drops_runtime_only(self):
        report = BatchPipeline(FAST, executor="serial").run(small_jobs())
        deterministic = report.deterministic_aggregate()
        assert "runtime" not in deterministic
        totals = report.aggregate()
        totals.pop("runtime")
        assert deterministic == totals

    def test_empty_batch(self):
        report = BatchPipeline().run([])
        assert isinstance(report, BatchReport)
        assert report.items == []
        assert report.throughput == 0.0

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            BatchPipeline(executor="fleet")

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            BatchPipeline(chunk_size=0)

    def test_rejects_unknown_job_type(self):
        with pytest.raises(TypeError):
            BatchPipeline().run(["not-a-job"])

    def test_process_backend_keeps_lightweight_results(self):
        """The process backend no longer drops results: workers return a
        lightweight copy (reports + counts + reconstructed netlist, no
        e-graph)."""
        jobs = [BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST)]
        report = BatchPipeline(executor="process", max_workers=1).run(jobs)
        assert report.num_failed == 0
        item = report.items[0]
        assert item.summary["exact_fas"] >= 0
        result = item.result
        assert result is not None
        assert result.construction is None  # the e-graph stays behind
        assert result.extraction is None
        assert result.extracted_aig is not None
        assert result.fa_blocks
        assert result.r1_report.num_iterations > 0
        # Shape properties survive the lightweight copy.
        assert result.egraph_classes == item.summary["egraph_classes"]
        assert result.egraph_nodes == item.summary["egraph_nodes"]

    def test_process_backend_keep_results_false(self):
        jobs = [BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST)]
        report = BatchPipeline(executor="process", max_workers=1,
                               keep_results=False).run(jobs)
        assert report.num_failed == 0
        assert report.items[0].result is None


class TestChunking:
    def test_chunked_partitions_in_order(self):
        assert _chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        assert _chunked([], 3) == []
        assert _chunked([7], 5) == [[7]]

    def test_explicit_chunk_size_round_trips_all_jobs(self):
        jobs = small_jobs()
        report = BatchPipeline(max_workers=2, executor="process",
                               chunk_size=2).run(jobs)
        assert report.num_failed == 0
        assert [item.name for item in report.items] == [job.name
                                                        for job in jobs]


class TestBackendEquivalence:
    def test_three_backends_bit_identical(self):
        """serial, thread and process runs of the same jobs agree exactly
        on every per-item summary and on the aggregate."""
        jobs = small_jobs()
        reports = {
            backend: BatchPipeline(max_workers=2, executor=backend).run(jobs)
            for backend in ("serial", "thread", "process")}
        reference = reports["serial"]
        assert reference.num_failed == 0
        ref_summaries = [
            {key: value for key, value in item.summary.items()
             if key != "runtime"}
            for item in reference.items]
        for backend, report in reports.items():
            assert report.num_failed == 0, (backend, report.failures())
            summaries = [
                {key: value for key, value in item.summary.items()
                 if key != "runtime"}
                for item in report.items]
            assert summaries == ref_summaries, backend
            assert (report.deterministic_aggregate()
                    == reference.deterministic_aggregate()), backend


class TestWorkerRequeue:
    def test_killed_worker_requeues_jobs(self, tmp_path, monkeypatch):
        """A worker hard-killed mid-chunk (simulating an OOM kill) breaks
        the pool; the driver rebuilds it and requeues the undone jobs."""
        marker = tmp_path / "kill-once"
        monkeypatch.setenv("_REPRO_BATCH_KILL_WORKER_ONCE", str(marker))
        jobs = [BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST),
                BatchJob("rca4", ripple_carry_adder(4)[0], options=FAST)]
        report = BatchPipeline(executor="process", max_workers=1,
                               chunk_size=1, retries=2).run(jobs)
        assert marker.exists()  # the fault actually fired
        assert report.num_failed == 0
        assert report.num_requeued >= 1
        serial = BatchPipeline(executor="serial").run(jobs)
        assert (report.deterministic_aggregate()
                == serial.deterministic_aggregate())

    def test_retries_exhausted_reports_failures(self, tmp_path, monkeypatch):
        """With retries=0, the jobs a dead worker took down are reported
        as failures instead of hanging or crashing the batch."""
        marker = tmp_path / "kill-once"
        monkeypatch.setenv("_REPRO_BATCH_KILL_WORKER_ONCE", str(marker))
        jobs = [BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST)]
        report = BatchPipeline(executor="process", max_workers=1,
                               retries=0).run(jobs)
        assert report.num_failed == 1
        (_name, error), = report.failures()
        assert "pool broke" in error


_BACKEND_SWEEP_SCRIPT = """
import json, sys
from repro.core import BatchJob, BatchPipeline, BoolEOptions
from repro.generators import csa_multiplier, ripple_carry_adder

backend = sys.argv[1]
options = BoolEOptions(r1_iterations=2, r2_iterations=2, count_npn=False)
jobs = [BatchJob(f"rca{w}", ripple_carry_adder(w)[0]) for w in (3, 4, 5)]
jobs.append(BatchJob("csa2", csa_multiplier(2).aig))
report = BatchPipeline(options, max_workers=2, executor=backend).run(jobs)
assert report.num_failed == 0, report.failures()
print(json.dumps(report.deterministic_aggregate(), sort_keys=True))
"""


def _sweep_subprocess(backend: str, hash_seed: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _BACKEND_SWEEP_SCRIPT, backend],
        env=env, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestCrossBackendDeterminismProperty:
    def test_backends_and_hash_seeds_agree(self):
        """Cross-backend × cross-hash-seed: every (backend, seed) cell of
        the sweep produces the same aggregate JSON."""
        results = {
            (backend, seed): _sweep_subprocess(backend, seed)
            for backend, seed in (("serial", 0), ("thread", 12345),
                                  ("process", 98765))}
        values = set(results.values())
        assert len(values) == 1, results
        assert json.loads(values.pop())["exact_fas"] > 0


class TestDedupAcrossBackends:
    """Jobs identical up to the non-semantic option fields share one
    final artifact key; the planner folds them to a single execution on
    every backend (the deeper single-backend checks live in
    ``test_plan.py``)."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_non_semantic_twins_share_one_result(self, backend, tmp_path):
        aig, _ = ripple_carry_adder(3)
        twin = BoolEOptions(checkpoint_every=50, r1_iterations=2,
                            r2_iterations=2, count_npn=False)
        jobs = [BatchJob("canonical", aig, options=FAST),
                BatchJob("twin", aig, options=twin)]
        report = BatchPipeline(max_workers=2, executor=backend,
                               store=str(tmp_path)).run(jobs)
        assert report.num_failed == 0
        assert report.num_deduped == 1
        canonical, twin_item = report.item("canonical"), report.item("twin")
        assert twin_item.deduped_from == "canonical"
        assert twin_item.summary == canonical.summary
        assert twin_item.runtime == canonical.runtime
        # One store write per artifact kind: the pair ran exactly once.
        from repro.store import ArtifactStore
        kinds = sorted(entry.kind for entry in ArtifactStore(tmp_path).entries())
        assert kinds == ["extraction", "saturated-pipeline"]
