"""Tests for the BatchPipeline driver."""

import pytest

from repro.core import (
    BatchJob,
    BatchPipeline,
    BatchReport,
    BoolEOptions,
    BoolEPipeline,
)
from repro.generators import csa_multiplier, ripple_carry_adder

FAST = BoolEOptions(r1_iterations=2, r2_iterations=2, count_npn=False)


def small_jobs():
    return [
        BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST),
        BatchJob("rca4", ripple_carry_adder(4)[0], options=FAST),
        BatchJob("csa2", csa_multiplier(2).aig, options=FAST),
    ]


class TestBatchPipeline:
    def test_batch_matches_serial_results(self):
        report = BatchPipeline(max_workers=2).run(small_jobs())
        assert report.num_failed == 0
        assert [item.name for item in report.items] == ["rca3", "rca4", "csa2"]
        serial = BoolEPipeline(FAST).run(ripple_carry_adder(4)[0])
        batch = report.item("rca4")
        assert batch.summary["exact_fas"] == serial.summary()["exact_fas"]
        assert batch.summary["paired_fas"] == serial.summary()["paired_fas"]
        assert batch.result is not None  # thread backend keeps full results

    def test_accepts_bare_aigs(self):
        aig, _ = ripple_carry_adder(3)
        report = BatchPipeline(FAST).run([aig])
        assert report.num_ok == 1
        assert report.items[0].name == aig.name

    def test_failure_is_isolated(self):
        jobs = [BatchJob("bad", aig=None),
                BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST)]
        report = BatchPipeline(max_workers=2).run(jobs)
        assert report.num_failed == 1
        assert report.num_ok == 1
        (name, error), = report.failures()
        assert name == "bad"
        assert error
        assert report.item("rca3").ok

    def test_per_job_options_override_default(self):
        no_extract = BoolEOptions(r1_iterations=1, r2_iterations=1,
                                  extract=False, count_npn=False)
        jobs = [BatchJob("plain", ripple_carry_adder(3)[0], options=FAST),
                BatchJob("no-extract", ripple_carry_adder(3)[0],
                         options=no_extract)]
        report = BatchPipeline(FAST).run(jobs)
        assert report.num_failed == 0
        assert report.item("plain").result.extracted_aig is not None
        assert report.item("no-extract").result.extracted_aig is None

    def test_aggregate_and_throughput(self):
        report = BatchPipeline(max_workers=2, keep_results=False).run(
            small_jobs())
        totals = report.aggregate()
        assert totals["exact_fas"] == sum(
            item.summary["exact_fas"] for item in report.items)
        assert report.throughput > 0
        assert report.total_runtime >= max(item.runtime
                                           for item in report.items)
        assert all(item.result is None for item in report.items)

    def test_empty_batch(self):
        report = BatchPipeline().run([])
        assert isinstance(report, BatchReport)
        assert report.items == []
        assert report.throughput == 0.0

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            BatchPipeline(executor="fleet")

    def test_rejects_unknown_job_type(self):
        with pytest.raises(TypeError):
            BatchPipeline().run(["not-a-job"])

    def test_process_backend(self):
        jobs = [BatchJob("rca3", ripple_carry_adder(3)[0], options=FAST)]
        report = BatchPipeline(executor="process", max_workers=1).run(jobs)
        assert report.num_failed == 0
        item = report.items[0]
        assert item.result is None  # summaries only across processes
        assert item.summary["exact_fas"] >= 0
