"""Tests for the arithmetic circuit generators (adders and multipliers)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import lit_var, multiplier_value_check
from repro.generators import (
    booth_multiplier,
    csa_multiplier,
    csa_upper_bound_fa,
    generate_multiplier,
    ripple_carry_adder,
    wallace_multiplier,
)


class TestRippleCarryAdder:
    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_adds_correctly(self, width):
        aig, _blocks = ripple_carry_adder(width)
        for a in (0, 1, (1 << width) - 1, 0b1010 & ((1 << width) - 1)):
            for b in (0, 1, (1 << width) - 1):
                for cin in (0, 1):
                    bits = {}
                    for i in range(width):
                        bits[lit_var(aig.inputs[i])] = bool((a >> i) & 1)
                        bits[lit_var(2 * aig.inputs[width + i])] = bool((b >> i) & 1)
                    # inputs list holds vars already
                    bits = {aig.inputs[i]: bool((a >> i) & 1) for i in range(width)}
                    bits.update({aig.inputs[width + i]: bool((b >> i) & 1)
                                 for i in range(width)})
                    bits[aig.inputs[2 * width]] = bool(cin)
                    out = aig.evaluate(bits)
                    value = sum(1 << i for i, bit in enumerate(out) if bit)
                    assert value == a + b + cin

    def test_block_count(self):
        _aig, blocks = ripple_carry_adder(8)
        assert len(blocks) == 8
        assert all(block.kind == "FA" for block in blocks)


class TestCSAMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4, 6])
    def test_functional_correctness(self, width):
        circuit = csa_multiplier(width)
        assert multiplier_value_check(circuit.aig, width, width)

    @pytest.mark.parametrize("width", [2, 3, 4, 6, 8, 10])
    def test_fa_count_matches_paper_upper_bound(self, width):
        """The CSA array contains exactly (n-1)^2 - 1 full adders (RQ1)."""
        circuit = csa_multiplier(width)
        assert circuit.num_full_adders == csa_upper_bound_fa(width)

    def test_io_counts(self):
        circuit = csa_multiplier(5)
        assert circuit.aig.num_inputs == 10
        assert circuit.aig.num_outputs == 10

    def test_width_one(self):
        circuit = csa_multiplier(1)
        assert multiplier_value_check(circuit.aig, 1, 1)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            csa_multiplier(0)

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
    @settings(max_examples=30, deadline=None)
    def test_exhaustive_4bit_products(self, a, b):
        circuit = csa_multiplier(4)
        assert multiplier_value_check(circuit.aig, 4, 4, samples=[(a, b)])


class TestBoothMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6])
    def test_signed_correctness(self, width):
        circuit = booth_multiplier(width)
        assert multiplier_value_check(circuit.aig, width, width, signed=True)

    def test_exhaustive_small(self):
        circuit = booth_multiplier(3)
        samples = [(a, b) for a in range(8) for b in range(8)]
        assert multiplier_value_check(circuit.aig, 3, 3, signed=True, samples=samples)

    def test_has_full_adders(self):
        circuit = booth_multiplier(6)
        assert circuit.num_full_adders > 0
        assert circuit.architecture == "booth"
        assert circuit.signed

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            booth_multiplier(1)


class TestWallaceMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_unsigned_correctness(self, width):
        circuit = wallace_multiplier(width)
        assert multiplier_value_check(circuit.aig, width, width)


class TestDispatch:
    @pytest.mark.parametrize("arch", ["csa", "booth", "wallace"])
    def test_generate_multiplier(self, arch):
        circuit = generate_multiplier(arch, 4)
        assert circuit.architecture == arch

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            generate_multiplier("dadda", 4)


class TestGroundTruthBlocks:
    def test_blocks_reference_real_literals(self):
        circuit = csa_multiplier(4)
        max_var = circuit.aig.num_vars
        for block in circuit.blocks:
            for lit in block.inputs + (block.sum_lit, block.carry_lit):
                assert 0 <= lit < 2 * max_var

    def test_half_adders_present(self):
        circuit = csa_multiplier(4)
        assert circuit.num_half_adders > 0
