"""Tests for repro.service: jobs, leases, HTTP front door, worker fleet.

The acceptance spine: a cold width-4 job submitted over HTTP is claimed
by a worker under a lease and finishes with an artifact byte-identical
to an in-process ``BoolEPipeline.run``; an immediate re-submit is served
warm inline with zero planned saturations; two processes racing for one
lease elect exactly one winner, so a ``final_key`` is never executed
twice; and a hard-killed worker's successor takes over its stale lease
and resumes from its checkpoint bit-identically.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import BatchItemResult, BatchJob, BatchPipeline, \
    BatchReport, BoolEOptions, BoolEPipeline
from repro.generators import csa_multiplier, ripple_carry_adder
from repro.opt import post_mapping_flow
from repro.service import (
    STATE_DONE,
    STATE_DUPLICATE,
    STATE_QUEUED,
    STATE_RUNNING,
    SWEEP_DONE,
    SWEEP_RUNNING,
    JobRecord,
    JobService,
    JobSpec,
    LeaseManager,
    ServiceClient,
    ServiceError,
    ServiceServer,
    ServiceWorker,
    SweepRecord,
    job_key,
    sweep_key,
)
from repro.store import KIND_JOB, KIND_SWEEP, ArtifactStore

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

#: Fast pipeline options used throughout (seconds, not minutes).
FAST = {"r1_iterations": 2, "r2_iterations": 2, "count_npn": False}
FAST_OPTIONS = BoolEOptions(**FAST)


def fast_request(width=3, **extra):
    request = {"arch": "csa", "width": width, "options": dict(FAST)}
    request.update(extra)
    return request


def subprocess_env():
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def payload_bytes(store, key):
    """Canonical bytes of a stored artifact's payload.

    The payload is the deterministic contract (the store's own
    round-trip tests pin it); the snapshot header's ``meta`` carries
    wall-clock timings like ``saturation_seconds`` by design, so raw
    file bytes differ across runs while payloads may not.
    """
    return json.dumps(store.get(key), sort_keys=True).encode("utf-8")


# ----------------------------------------------------------------------
# Job model
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_arch_request_materialises_wire(self):
        spec = JobSpec.from_request(fast_request())
        assert spec.name == "csa-3"
        assert spec.origin == {"arch": "csa", "width": 3, "mapped": True}
        aig = spec.build_aig()
        assert aig.num_gates == post_mapping_flow(
            csa_multiplier(3).aig).num_gates

    def test_explicit_aig_round_trips(self):
        from repro.store import aig_to_wire
        source = ripple_carry_adder(3)[0]
        spec = JobSpec.from_request({"aig": aig_to_wire(source),
                                     "name": "mine"})
        assert spec.name == "mine"
        assert spec.build_aig().num_gates == source.num_gates

    def test_payload_round_trip(self):
        spec = JobSpec.from_request(fast_request(width=2, mapped=False))
        clone = JobSpec.from_payload(spec.to_payload())
        assert clone == spec

    @pytest.mark.parametrize("bad", [
        {"arch": "nope", "width": 3},
        {"arch": "csa"},
        {"arch": "csa", "width": 0},
        {"arch": "csa", "width": 999},
        {"arch": "csa", "width": True},
        {"arch": "csa", "width": 3, "mapped": "yes"},
        {"arch": "csa", "width": 3, "options": {"bogus_field": 1}},
        {"arch": "csa", "width": 3, "options": []},
        {"aig": "not-a-wire"},
        [],
    ])
    def test_rejects_malformed_requests(self, bad):
        with pytest.raises(ValueError):
            JobSpec.from_request(bad)

    def test_options_merge_over_defaults(self):
        spec = JobSpec.from_request(fast_request())
        options = spec.build_options(BoolEOptions(max_nodes=123))
        assert options.r1_iterations == 2
        assert options.max_nodes == 123


class TestJobKey:
    def test_stable_and_distinct_from_final_key(self):
        final = "ab" * 32
        assert job_key(final) == job_key(final)
        assert job_key(final) != final
        assert len(job_key(final)) == 64
        assert job_key(final) != job_key("cd" * 32)


class TestJobService:
    def test_submit_enqueues_and_dedups(self, tmp_path):
        service = JobService(tmp_path / "store")
        first = service.submit(fast_request())
        assert first["state"] == STATE_QUEUED
        assert first["duplicate"] is False
        assert first["plan"]["saturations"] > 0
        second = service.submit(fast_request())
        assert second["state"] == STATE_DUPLICATE
        assert second["duplicate"] is True
        assert second["job_id"] == first["job_id"]
        # Only one job record exists for the pair.
        assert len(service.records()) == 1

    def test_record_persists_as_job_kind(self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit(fast_request())
        job_id = response["job_id"]
        assert service.store.kinds()[job_id] == KIND_JOB
        record = service.load(job_id)
        assert record is not None
        assert record.state == STATE_QUEUED
        assert record.job_id == job_key(record.final_key)
        # The wire view hides the netlist but keeps provenance.
        view = record.public_view()
        assert "aig" not in view["spec"]
        assert view["spec"]["origin"]["arch"] == "csa"

    def test_worker_completes_and_resubmit_is_warm(self, tmp_path):
        service = JobService(tmp_path / "store")
        queued = service.submit(fast_request())
        worker = ServiceWorker(service.store, poll_interval=0.01)
        assert worker.run_once() == queued["job_id"]
        record = service.load(queued["job_id"])
        assert record.state == STATE_DONE
        assert record.result["exact_fas"] > 0
        assert record.worker == worker.owner
        # Same spec again: served inline, zero saturation bodies planned.
        warm = service.submit(fast_request())
        assert warm["state"] == STATE_DONE
        assert warm["warm"] is True
        assert warm["duplicate"] is True
        assert warm["plan"]["saturations"] == 0
        assert warm["plan"]["fully_warm"] is True

    def test_progress_surfaces_phases(self, tmp_path):
        service = JobService(tmp_path / "store")
        queued = service.submit(fast_request())
        record = service.load(queued["job_id"])
        progress = service.progress(record)
        names = [phase["name"] for phase in progress["phases"]]
        assert "saturate-r1" in names and "extract" in names
        assert progress["fully_warm"] is False
        ServiceWorker(service.store).run_once()
        progress = service.progress(service.load(queued["job_id"]))
        assert progress["fully_warm"] is True
        assert progress["cold_phases"] == []

    def test_stats_counts_states(self, tmp_path):
        service = JobService(tmp_path / "store")
        service.submit(fast_request())
        stats = service.stats()
        assert stats["queue_depth"] == 1
        assert stats["jobs"][STATE_QUEUED] == 1
        assert stats["store"]["kinds"][KIND_JOB] == 1

    def test_failed_job_records_error_and_requeues(self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit(fast_request())
        # Poison the queued record so the worker's run raises.
        record = service.load(response["job_id"])
        record.spec.aig_wire = {"broken": True}
        service.save(record)
        worker = ServiceWorker(service.store, poll_interval=0.01)
        worker.run_once()
        record = service.load(response["job_id"])
        assert record.state == "failed"
        assert record.error
        # Resubmitting the spec requeues a failed job instead of deduping.
        again = service.submit(fast_request())
        assert again["state"] == STATE_QUEUED


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------
class TestLeases:
    KEY = "ef" * 32

    def test_claim_release_cycle(self, tmp_path):
        manager = LeaseManager(tmp_path / "store", owner="a")
        lease = manager.claim(self.KEY)
        assert lease is not None
        assert lease.taken_over_from is None
        assert manager.store.read_lease(self.KEY)["owner"] == "a"
        manager.release(lease)
        assert manager.store.read_lease(self.KEY) is None
        assert manager.claim(self.KEY) is not None

    def test_second_claimant_loses(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = LeaseManager(store, owner="a")
        second = LeaseManager(store, owner="b")
        assert first.claim(self.KEY) is not None
        assert second.claim(self.KEY) is None

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        manager = LeaseManager(tmp_path / "store", owner="a", ttl=0.4)
        lease = manager.claim(self.KEY)
        for _ in range(3):
            time.sleep(0.2)
            assert manager.heartbeat(lease) is True
        assert not manager.store.lease_is_stale(
            manager.store.read_lease(self.KEY))

    def test_expiry_enables_takeover_and_deposes_owner(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        dead = LeaseManager(store, owner="dead", ttl=0.2)
        lease = dead.claim(self.KEY)
        time.sleep(0.3)  # heartbeat missed: lease is now stale
        assert store.lease_is_stale(store.read_lease(self.KEY))
        heir = LeaseManager(store, owner="heir", ttl=30.0)
        taken = heir.claim(self.KEY)
        assert taken is not None
        assert taken.taken_over_from == "dead"
        # The deposed owner notices on its next heartbeat and backs off.
        assert dead.heartbeat(lease) is False
        assert heir.heartbeat(taken) is True

    def test_release_does_not_steal_from_new_owner(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        dead = LeaseManager(store, owner="dead", ttl=0.1)
        stale = dead.claim(self.KEY)
        time.sleep(0.2)
        heir = LeaseManager(store, owner="heir", ttl=30.0)
        assert heir.claim(self.KEY) is not None
        dead.release(stale)  # must be a no-op: the lease is heir's now
        assert store.read_lease(self.KEY)["owner"] == "heir"


_CONTENTION_SCRIPT = """
import sys, time
from repro.service import LeaseManager
root, owner, go_file, key = sys.argv[1:5]
manager = LeaseManager(root, owner=owner, ttl=30.0)
import os
while not os.path.exists(go_file):
    time.sleep(0.005)
lease = manager.claim(key)
print("WON" if lease is not None else "LOST")
"""


class TestLeaseContentionTwoProcesses:
    def test_exactly_one_winner(self, tmp_path):
        """Two processes race the O_EXCL claim; the filesystem picks one."""
        key = "ab" * 32
        go_file = tmp_path / "go"
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _CONTENTION_SCRIPT,
                 str(tmp_path / "store"), f"racer-{index}",
                 str(go_file), key],
                env=subprocess_env(), stdout=subprocess.PIPE, text=True)
            for index in range(2)
        ]
        time.sleep(0.3)  # both racers are now spinning on the go file
        go_file.touch()
        outcomes = sorted(proc.communicate()[0].strip() for proc in procs)
        assert all(proc.returncode == 0 for proc in procs)
        assert outcomes == ["LOST", "WON"]

    def test_two_workers_never_double_execute(self, tmp_path):
        """Two worker processes drain a one-job queue: the job runs once."""
        store_root = tmp_path / "store"
        service = JobService(store_root)
        response = service.submit(fast_request())
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro.service", "--root",
                 str(store_root), "work", "--max-jobs", "1",
                 "--idle-timeout", "3"],
                env=subprocess_env(), stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True)
            for _ in range(2)
        ]
        for proc in workers:
            proc.communicate(timeout=180)
            assert proc.returncode == 0
        record = service.load(response["job_id"])
        assert record.state == STATE_DONE
        # Exactly one claim, one attempt — the losing racer backed off.
        assert record.attempts == 1
        claims = [event for event in record.events
                  if event["event"] == "claimed"]
        assert len(claims) == 1


# ----------------------------------------------------------------------
# HTTP front door, end to end
# ----------------------------------------------------------------------
@pytest.fixture()
def running_server(tmp_path):
    server = ServiceServer(tmp_path / "store", port=0)
    server.start_background()
    try:
        yield server
    finally:
        server.stop_background()


class TestServiceHTTP:
    def test_healthz_and_stats(self, running_server):
        client = ServiceClient(running_server.host, running_server.port)
        assert client.healthz() == {"ok": True}
        stats = client.stats()
        assert stats["queue_depth"] == 0
        assert stats["store"]["artifacts"] == 0

    def test_unknown_routes_and_jobs_404(self, running_server):
        client = ServiceClient(running_server.host, running_server.port)
        with pytest.raises(ServiceError) as excinfo:
            client.status("ab" * 32)
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_malformed_submissions_400(self, running_server):
        client = ServiceClient(running_server.host, running_server.port)
        for bad in [{"arch": "nope", "width": 3},
                    {"arch": "csa", "width": 3,
                     "options": {"bogus": True}}]:
            with pytest.raises(ServiceError) as excinfo:
                client.submit(bad)
            assert excinfo.value.status == 400

    def test_cold_submit_worker_done_then_warm_resubmit(
            self, running_server, tmp_path):
        """The acceptance spine, over real HTTP with a width-4 job."""
        client = ServiceClient(running_server.host, running_server.port)
        response = client.submit(fast_request(width=4))
        assert response["state"] == STATE_QUEUED
        assert response["plan"]["saturations"] > 0
        final_key = response["plan"]["final_key"]

        # While queued, an identical submission collapses onto the job.
        dup = client.submit(fast_request(width=4))
        assert dup["state"] == STATE_DUPLICATE
        assert dup["job_id"] == response["job_id"]

        worker = ServiceWorker(running_server.service.store,
                               poll_interval=0.01)
        assert worker.run_forever(max_jobs=1, idle_timeout=10) == 1
        final = client.wait(response["job_id"], timeout=30)
        assert final["state"] == STATE_DONE
        assert final["progress"]["fully_warm"] is True

        # Byte-identity: the service-produced artifact equals a plain
        # in-process run's artifact in a fresh store, byte for byte.
        reference_store = ArtifactStore(tmp_path / "reference")
        aig = post_mapping_flow(csa_multiplier(4).aig)
        result = BoolEPipeline(FAST_OPTIONS).run(aig, store=reference_store)
        reference_summary = {key: value
                             for key, value in result.summary().items()
                             if key != "runtime"}
        service_summary = {key: value
                           for key, value in final["result"].items()
                           if key != "runtime"}
        assert service_summary == reference_summary
        service_store = running_server.service.store
        assert (payload_bytes(service_store, final_key)
                == payload_bytes(reference_store, final_key))

        # Warm resubmission: served inline, zero new saturations.
        warm = client.submit(fast_request(width=4))
        assert warm["state"] == STATE_DONE
        assert warm["warm"] is True
        assert warm["plan"]["saturations"] == 0
        assert warm["plan"]["cold_phases"] == []
        assert warm["result"]["exact_fas"] == final["result"]["exact_fas"]

    def test_events_stream_to_terminal_state(self, running_server):
        client = ServiceClient(running_server.host, running_server.port)
        response = client.submit(fast_request(width=2))
        worker = ServiceWorker(running_server.service.store,
                               poll_interval=0.01)
        worker.run_forever(max_jobs=1, idle_timeout=10)
        events = list(client.events(response["job_id"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert "claimed" in kinds and "running" in kinds
        assert kinds[-1] == "done"
        assert [event["seq"] for event in events] == list(range(len(events)))
        phase_events = [event for event in events
                        if event["event"] == "phase"]
        assert {event["name"] for event in phase_events} >= {
            "construct", "saturate-r1", "saturate-r2"}


# ----------------------------------------------------------------------
# Kill-mid-job: successor takes over the lease and resumes
# ----------------------------------------------------------------------
_KILLED_WORKER_SCRIPT = """
import sys
from repro.service import ServiceWorker
worker = ServiceWorker(sys.argv[1], ttl=0.5, poll_interval=0.05)
worker.run_forever(max_jobs=1, idle_timeout=5)
print("SURVIVED")  # only reached if the kill never fired
"""


class TestKillMidJobTakeover:
    def test_successor_resumes_from_checkpoint_bit_identically(
            self, tmp_path):
        store_root = tmp_path / "store"
        service = JobService(store_root)
        options = {**FAST, "r1_iterations": 3, "checkpoint_every": 1}
        response = service.submit(fast_request(options=options))

        marker = tmp_path / "killed.marker"
        env = subprocess_env()
        env["_REPRO_SERVICE_KILL_WORKER_ONCE"] = str(marker)
        proc = subprocess.run(
            [sys.executable, "-c", _KILLED_WORKER_SCRIPT, str(store_root)],
            env=env, capture_output=True, text=True, timeout=180)
        assert proc.returncode == 17, proc.stdout + proc.stderr
        assert marker.exists()

        # The dead worker left a live-state record behind a dying lease.
        record = service.load(response["job_id"])
        assert record.state == STATE_RUNNING
        time.sleep(0.6)  # let the orphaned lease pass its 0.5s TTL
        store = service.store
        assert store.lease_is_stale(store.read_lease(record.final_key))

        successor = ServiceWorker(store_root, ttl=30.0, poll_interval=0.01)
        assert successor.run_forever(max_jobs=1, idle_timeout=10) == 1
        record = service.load(response["job_id"])
        assert record.state == STATE_DONE
        assert record.attempts == 2
        # The takeover resumed the dead worker's checkpoint mid-phase.
        assert record.resumed_phase in ("saturate-r1", "saturate-r2")
        takeover = [event for event in record.events
                    if event["event"] == "claimed"][-1]
        assert takeover["taken_over_from"] is not None

        # Bit-identical to an uninterrupted in-process run.
        reference_store = ArtifactStore(tmp_path / "reference")
        aig = post_mapping_flow(csa_multiplier(3).aig)
        BoolEPipeline(BoolEOptions(
            **{**FAST, "r1_iterations": 3})).run(aig, store=reference_store)
        final_key = record.final_key
        assert (payload_bytes(store, final_key)
                == payload_bytes(reference_store, final_key))


# ----------------------------------------------------------------------
# Store self-healing (verify/gc over leases + job records)
# ----------------------------------------------------------------------
class TestStoreHealing:
    KEY = "ab" * 32

    def test_verify_collects_stale_leases_only(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        dead = LeaseManager(store, owner="dead", ttl=0.1)
        dead.claim(self.KEY)
        live_key = "cd" * 32
        LeaseManager(store, owner="live", ttl=300.0).claim(live_key)
        time.sleep(0.2)
        report = store.verify()
        assert report["stale_leases"] == [self.KEY]
        assert store.read_lease(self.KEY) is None
        assert store.read_lease(live_key)["owner"] == "live"

    def test_verify_requeues_orphaned_running_jobs(self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit(fast_request())
        record = service.load(response["job_id"])
        record.state = STATE_RUNNING
        record.worker = "vanished:1"
        service.save(record)  # no lease on final_key: the worker is gone
        report = service.store.verify()
        assert report["requeued_jobs"] == [record.job_id]
        healed = service.load(record.job_id)
        assert healed.state == STATE_QUEUED
        assert healed.worker is None
        # And the healed job is claimable again.
        assert [job.job_id for job in service.claimable()] == [record.job_id]

    def test_verify_leaves_leased_running_jobs_alone(self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit(fast_request())
        record = service.load(response["job_id"])
        record.state = STATE_RUNNING
        service.save(record)
        LeaseManager(service.store, owner="busy",
                     ttl=300.0).claim(record.final_key)
        report = service.store.verify()
        assert report["requeued_jobs"] == []
        assert service.load(record.job_id).state == STATE_RUNNING

    def test_gc_sweeps_stale_leases_and_keeps_live_ones(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        LeaseManager(store, owner="dead", ttl=0.1).claim(self.KEY)
        live_key = "cd" * 32
        LeaseManager(store, owner="live", ttl=300.0).claim(live_key)
        time.sleep(0.2)
        store.gc()
        assert store.read_lease(self.KEY) is None
        assert store.read_lease(live_key)["owner"] == "live"

    def test_gc_dry_run_touches_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        LeaseManager(store, owner="dead", ttl=0.1).claim(self.KEY)
        time.sleep(0.2)
        store.gc(dry_run=True)
        assert store.read_lease(self.KEY) is not None


# ----------------------------------------------------------------------
# CLI argument plumbing
# ----------------------------------------------------------------------
class TestCliParser:
    def test_common_flags_accepted_before_and_after_subcommand(self):
        from repro.service.__main__ import _build_parser
        parser = _build_parser()
        before = parser.parse_args(["--port", "9001", "serve"])
        after = parser.parse_args(["serve", "--port", "9001"])
        assert before.port == after.port == 9001
        assert before.root == after.root == ".repro-store"
        defaulted = parser.parse_args(["--root", "/tmp/x", "work"])
        assert defaulted.root == "/tmp/x" and defaulted.port == 8765


# ----------------------------------------------------------------------
# Sweeps: server-side planning, DAG scheduling, fleet sharding
# ----------------------------------------------------------------------
def sweep_generator_request(widths=(3,), rounds=(0, 1, 2), **extra):
    """A generator-style sweep request over ``refine_rounds`` values.

    Same saturated prefix per width, so the planner schedules one cold
    leader and ``len(rounds) - 1`` dependents per width.
    """
    request = {"generator": {"archs": ["csa"], "widths": list(widths),
                             "options": dict(FAST),
                             "option_sets": [{"refine_rounds": value}
                                             for value in rounds]}}
    request.update(extra)
    return request


class TestSweepExpansion:
    def test_generator_cross_product_and_unique_names(self, tmp_path):
        service = JobService(tmp_path / "store")
        members, priority, requires = service.expand_sweep_request(
            sweep_generator_request(widths=(2, 3), rounds=(0, 1)))
        assert priority == 0 and requires == []
        names = [spec.name for spec, _, _ in members]
        # Same arch/width twice (two option sets) → uniquified suffixes.
        assert names == ["csa-2", "csa-2#2", "csa-3", "csa-3#2"]
        rounds = [spec.options["refine_rounds"] for spec, _, _ in members]
        assert rounds == [0, 1, 0, 1]

    def test_jobs_list_with_per_job_overrides(self, tmp_path):
        service = JobService(tmp_path / "store")
        members, priority, requires = service.expand_sweep_request({
            "priority": 2, "requires": ["fast-host"],
            "jobs": [fast_request(width=2),
                     fast_request(width=3, priority=7, requires=["gpu"])]})
        assert priority == 2 and requires == ["fast-host"]
        assert [(p, r) for _, p, r in members] == [
            (2, ["fast-host"]), (7, ["gpu"])]

    @pytest.mark.parametrize("bad", [
        "not-an-object",
        {},  # neither jobs nor generator
        {"jobs": [], "generator": {}},  # both
        {"jobs": "nope"},
        {"jobs": []},
        {"jobs": [fast_request()], "priority": True},
        {"jobs": [fast_request()], "priority": "high"},
        {"jobs": [fast_request()], "requires": "gpu"},
        {"jobs": [fast_request()], "requires": [""]},
        {"generator": {"widths": [3]}},  # no archs
        {"generator": {"archs": ["csa"]}},  # no widths
        {"generator": {"archs": ["csa"], "widths": [3], "bogus": 1}},
        {"generator": {"archs": ["csa"], "widths": [3],
                       "option_sets": []}},
        {"generator": {"archs": ["csa"], "widths": [3],
                       "option_sets": ["nope"]}},
    ])
    def test_rejects_malformed_sweeps(self, tmp_path, bad):
        service = JobService(tmp_path / "store")
        with pytest.raises(ValueError):
            service.expand_sweep_request(bad)

    def test_expansion_cap(self, tmp_path):
        service = JobService(tmp_path / "store")
        with pytest.raises(ValueError, match="cap"):
            service.expand_sweep_request(
                {"jobs": [fast_request()] * 257})


class TestSweepKey:
    def test_order_insensitive_and_distinct(self):
        finals = ["ab" * 32, "cd" * 32]
        assert sweep_key(finals) == sweep_key(list(reversed(finals)))
        assert len(sweep_key(finals)) == 64
        assert sweep_key(finals) != sweep_key(finals[:1])


class TestSchedulingWire:
    def test_job_record_scheduling_fields_round_trip(self):
        spec = JobSpec.from_request(fast_request(width=2))
        record = JobRecord(
            job_id="j" * 64, spec=spec, state=STATE_QUEUED,
            base_key="b" * 64, final_key="f" * 64, extraction_key=None,
            created=1.0, updated=2.0, depends_on=["d" * 64], priority=3,
            requires=["gpu"], sweep_id="s" * 64)
        clone = JobRecord.from_payload(record.to_payload())
        assert clone == record

    def test_legacy_job_payload_gets_neutral_defaults(self):
        spec = JobSpec.from_request(fast_request(width=2))
        payload = JobRecord(
            job_id="j" * 64, spec=spec, state=STATE_QUEUED,
            base_key="b" * 64, final_key="f" * 64, extraction_key=None,
            created=1.0, updated=2.0).to_payload()
        for legacy_absent in ("depends_on", "priority", "requires",
                              "sweep_id"):
            payload.pop(legacy_absent)
        record = JobRecord.from_payload(payload)
        assert record.depends_on == [] and record.priority == 0
        assert record.requires == [] and record.sweep_id is None

    def test_sweep_record_round_trip(self):
        record = SweepRecord(
            sweep_id="s" * 64, state=SWEEP_RUNNING, created=1.0,
            updated=2.0, priority=1, requires=["gpu"],
            counts={"pool": 1, "dependent": 2},
            plan={"jobs": 3},
            items=[{"name": "a", "job_id": "j" * 64,
                    "final_key": "f" * 64, "schedule": "pool",
                    "depends_on": []}])
        assert SweepRecord.from_payload(record.to_payload()) == record


class TestSweepSubmission:
    def test_shared_prefix_plans_one_leader(self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit_sweep(sweep_generator_request())
        assert response["state"] == SWEEP_RUNNING
        assert response["duplicate"] is False
        assert response["counts"] == {"inline": 0, "pool": 1,
                                      "dependent": 2, "duplicate": 0}
        # The plan ran the same overlay brain BatchPipeline uses.
        assert response["plan"]["saturations"] == 1
        jobs = response["jobs"]
        leader = jobs[0]
        assert leader["schedule"] == "pool" and leader["depends_on"] == []
        for dependent in jobs[1:]:
            assert dependent["schedule"] == "dependent"
            assert dependent["depends_on"] == [leader["final_key"]]
        # Durable: a kind="sweep" artifact plus one record per member.
        assert service.store.kinds()[response["sweep_id"]] == KIND_SWEEP
        assert len(service.records()) == 3
        for record in service.records():
            assert record.sweep_id == response["sweep_id"]

    def test_duplicate_members_collapse(self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit_sweep(
            {"jobs": [fast_request(width=2), fast_request(width=2)]})
        assert response["counts"]["duplicate"] == 1
        assert len(service.records()) == 1
        first, second = response["jobs"]
        assert first["job_id"] == second["job_id"]
        assert second["schedule"] == "duplicate"

    def test_drained_sweep_resubmits_all_inline(self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit_sweep(sweep_generator_request())
        worker = ServiceWorker(service.store, poll_interval=0.01)
        assert worker.run_forever(idle_timeout=1.0) == 3
        status = service.sweep_status(response["sweep_id"])
        assert status["state"] == SWEEP_DONE
        assert status["result"]["states"] == {STATE_DONE: 3}
        # The identical sweep again: same sweep id, everything inline.
        again = service.submit_sweep(sweep_generator_request())
        assert again["sweep_id"] == response["sweep_id"]
        assert again["duplicate"] is True
        assert again["state"] == SWEEP_DONE
        assert again["counts"] == {"inline": 3, "pool": 0,
                                   "dependent": 0, "duplicate": 0}
        # Inline serves executed no saturation bodies at all.
        assert service.stats()["saturation"]["runs"] == 1

    def test_stats_sweeps_section(self, tmp_path):
        service = JobService(tmp_path / "store")
        service.submit_sweep(sweep_generator_request())
        stats = service.stats()
        assert stats["sweeps"]["total"] == 1
        assert stats["sweeps"]["live"] == 1
        assert stats["sweeps"]["states"] == {SWEEP_RUNNING: 1}
        assert stats["sweeps"]["schedules"]["pool"] == 1
        assert stats["sweeps"]["schedules"]["dependent"] == 2
        # Both dependents are queued behind the un-landed leader key.
        assert stats["sweeps"]["blocked_on_dependency"] == 2
        ServiceWorker(service.store,
                      poll_interval=0.01).run_forever(idle_timeout=1.0)
        stats = service.stats()
        assert stats["sweeps"]["live"] == 0
        assert stats["sweeps"]["states"] == {SWEEP_DONE: 1}
        assert stats["sweeps"]["blocked_on_dependency"] == 0


class TestDependencyGating:
    def test_dependents_invisible_until_leader_lands(self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit_sweep(sweep_generator_request())
        leader_final = response["jobs"][0]["final_key"]
        claimable = service.claimable()
        assert [record.job_id for record in claimable] == [
            response["jobs"][0]["job_id"]]
        assert service.store.missing_keys([leader_final]) == [leader_final]
        # The leader's artifact landing is the *only* unblock signal.
        worker = ServiceWorker(service.store, poll_interval=0.01)
        assert worker.run_once() == response["jobs"][0]["job_id"]
        assert service.store.probe_all([leader_final])
        unblocked = {record.job_id for record in service.claimable()}
        assert unblocked == {job["job_id"]
                             for job in response["jobs"][1:]}

    def test_stale_leader_lease_takeover_unblocks_dependents(
            self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit_sweep(sweep_generator_request())
        leader = service.load(response["jobs"][0]["job_id"])
        # Simulate a worker dying mid-leader: live state, dying lease.
        leader.state = STATE_RUNNING
        leader.worker = "dead:1"
        service.save(leader)
        LeaseManager(service.store, owner="dead",
                     ttl=0.1).claim(leader.final_key)
        time.sleep(0.2)
        # Dependents stay blocked; the stale leader is claimable again.
        assert [record.job_id for record in service.claimable()] == [
            leader.job_id]
        successor = ServiceWorker(service.store, ttl=30.0,
                                  poll_interval=0.01)
        assert successor.run_forever(idle_timeout=1.0) == 3
        status = service.sweep_status(response["sweep_id"])
        assert status["state"] == SWEEP_DONE


class TestPriorityAndCapabilities:
    def test_priority_orders_claimable(self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit_sweep({"jobs": [
            fast_request(width=2),
            fast_request(width=3, priority=5)]})
        ordered = [record.job_id for record in service.claimable()]
        assert ordered == [response["jobs"][1]["job_id"],
                           response["jobs"][0]["job_id"]]

    def test_capability_gate_filters_claimable(self, tmp_path):
        service = JobService(tmp_path / "store")
        service.submit_sweep({"jobs": [fast_request(width=2)],
                              "requires": ["gpu"]})
        assert service.claimable(()) == []
        assert service.claimable(("cpu",)) == []
        assert len(service.claimable(("gpu", "cpu"))) == 1
        # None disables the filter: the admin's whole-queue view.
        assert len(service.claimable(None)) == 1

    def test_worker_without_capability_never_claims(self, tmp_path):
        service = JobService(tmp_path / "store")
        response = service.submit_sweep({"jobs": [fast_request(width=2)],
                                         "requires": ["gpu"]})
        plain = ServiceWorker(service.store, poll_interval=0.01)
        assert plain.run_once() is None
        tagged = ServiceWorker(service.store, poll_interval=0.01,
                               capabilities=["gpu", "cpu"])
        assert tagged.run_once() == response["jobs"][0]["job_id"]


class TestWorkerIdleBackoff:
    def test_delay_doubles_with_jitter_and_caps(self, tmp_path):
        worker = ServiceWorker(tmp_path / "store", poll_interval=0.1)
        for streak, factor in [(0, 1), (1, 2), (2, 4), (3, 8), (9, 8)]:
            ceiling = 0.1 * factor
            samples = [worker._idle_delay(streak) for _ in range(50)]
            assert all(0.5 * ceiling <= delay < ceiling
                       for delay in samples)
        # Jitter is actually random, not a constant factor.
        assert len({worker._idle_delay(3) for _ in range(10)}) > 1

    def test_idle_timeout_not_overslept_by_backoff(self, tmp_path):
        worker = ServiceWorker(tmp_path / "store", poll_interval=0.2)
        started = time.monotonic()
        assert worker.run_forever(idle_timeout=0.5) == 0
        # The clamp keeps the exit near the deadline even though the
        # raw back-off (up to 1.6s) exceeds the whole budget.
        assert time.monotonic() - started < 1.2


# ----------------------------------------------------------------------
# Sweeps over HTTP + client deadline semantics
# ----------------------------------------------------------------------
class TestSweepHTTP:
    def test_submit_sweep_roundtrip_and_rollup(self, running_server):
        client = ServiceClient(running_server.host, running_server.port)
        response = client.submit_sweep(
            sweep_generator_request(rounds=(0, 1)))
        assert response["state"] == SWEEP_RUNNING
        assert response["counts"]["pool"] == 1
        assert response["counts"]["dependent"] == 1
        worker = ServiceWorker(running_server.service.store,
                               poll_interval=0.01)
        assert worker.run_forever(idle_timeout=2.0) == 2
        final = client.wait_sweep(response["sweep_id"], timeout=30)
        assert final["state"] == SWEEP_DONE
        assert final["progress"]["states"] == {STATE_DONE: 2}
        assert final["progress"]["blocked_on_dependency"] == 0
        stats = client.stats()
        assert stats["sweeps"]["states"] == {SWEEP_DONE: 1}

    def test_sweep_http_errors(self, running_server):
        client = ServiceClient(running_server.host, running_server.port)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_sweep({"jobs": []})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.sweep_status("ab" * 32)
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/sweeps/" + "ab" * 32)
        assert excinfo.value.status == 405


class TestClientSharedDeadline:
    def test_sweep_timeout_is_one_wall_clock_budget(self, running_server):
        """N live jobs share one deadline — the wait can never stretch
        to N × timeout (the bug this guards against)."""
        client = ServiceClient(running_server.host, running_server.port)
        requests = [fast_request(width=2), fast_request(width=3)]
        started = time.monotonic()
        with pytest.raises(TimeoutError):
            client.sweep(requests, timeout=1.0)  # no workers running
        elapsed = time.monotonic() - started
        assert elapsed < 1.9  # per-job budgets would take >= 2s

    def test_wait_accepts_explicit_deadline(self, running_server):
        client = ServiceClient(running_server.host, running_server.port)
        response = client.submit(fast_request(width=2))
        with pytest.raises(TimeoutError):
            client.wait(response["job_id"],
                        deadline=time.monotonic() + 0.2)


# ----------------------------------------------------------------------
# Two-subprocess-worker fleet drains a shared-prefix sweep
# ----------------------------------------------------------------------
class TestTwoWorkerFleetSweep:
    def test_one_saturation_fleet_wide_and_byte_identical(
            self, running_server, tmp_path):
        """The tentpole acceptance: a cold ``refine_rounds`` ∈ {0, 1, 2}
        sweep POSTed to a two-worker fleet saturates exactly once, and
        every artifact is byte-identical to an in-process
        ``BatchPipeline`` run — across different ``PYTHONHASHSEED``
        values per worker."""
        client = ServiceClient(running_server.host, running_server.port)
        response = client.submit_sweep(sweep_generator_request())
        assert response["counts"] == {"inline": 0, "pool": 1,
                                      "dependent": 2, "duplicate": 0}

        workers = []
        for hash_seed in ("0", "31337"):
            env = subprocess_env()
            env["PYTHONHASHSEED"] = hash_seed
            workers.append(subprocess.Popen(
                [sys.executable, "-m", "repro.service", "--root",
                 str(running_server.service.store.root), "work",
                 "--idle-timeout", "10"],
                env=env, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True))
        final = client.wait_sweep(response["sweep_id"], timeout=240)
        for proc in workers:
            proc.communicate(timeout=240)
            assert proc.returncode == 0
        assert final["state"] == SWEEP_DONE
        assert final["progress"]["states"] == {STATE_DONE: 3}

        # Exactly one saturation across the whole fleet: the dependents
        # restored the leader's saturated prefix instead of re-matching.
        stats = client.stats()
        assert stats["saturation"]["runs"] == 1

        # Byte-identity against the in-process batch engine, fresh store.
        reference_store = ArtifactStore(tmp_path / "reference")
        aig = post_mapping_flow(csa_multiplier(3).aig)
        reference_jobs = [
            BatchJob(name=f"r{value}", aig=aig,
                     options=BoolEOptions(
                         **{**FAST, "refine_rounds": value}))
            for value in (0, 1, 2)]
        report = BatchPipeline(FAST_OPTIONS, executor="serial",
                               store=reference_store).run(reference_jobs)
        assert all(item.ok for item in report.items)
        service_store = running_server.service.store
        for job in response["jobs"]:
            assert (payload_bytes(service_store, job["final_key"])
                    == payload_bytes(reference_store, job["final_key"]))


class TestSweepCli:
    def test_submit_sweep_flags_parse(self):
        from repro.service.__main__ import _build_parser
        args = _build_parser().parse_args(
            ["submit", "--sweep", "--archs", "csa,rca",
             "--widths", "4,8", "--refine-rounds", "0,1,2",
             "--priority", "2", "--require", "gpu", "--wait"])
        assert args.sweep and args.archs == "csa,rca"
        assert args.widths == "4,8" and args.refine_rounds == "0,1,2"
        assert args.priority == 2 and args.require == ["gpu"]

    def test_sweep_flags_require_sweep_mode(self):
        from repro.service.__main__ import _build_parser, _cmd_submit
        args = _build_parser().parse_args(
            ["submit", "--widths", "4,8"])
        with pytest.raises(SystemExit):
            _cmd_submit(args)

    def test_work_capability_and_sweep_subcommand_parse(self):
        from repro.service.__main__ import _build_parser
        parser = _build_parser()
        work = parser.parse_args(["work", "--capability", "gpu",
                                  "--capability", "fast-host"])
        assert work.capability == ["gpu", "fast-host"]
        sweep = parser.parse_args(["sweep", "ab" * 32, "--wait"])
        assert sweep.sweep_id == "ab" * 32 and sweep.wait is True

    def test_csv_helper(self):
        from repro.service.__main__ import _csv
        assert _csv("a, b,,c") == ["a", "b", "c"]


# ----------------------------------------------------------------------
# BatchReport.merge
# ----------------------------------------------------------------------
def _report(names_runtimes, wall_time):
    items = [BatchItemResult(name=name, ok=True, runtime=runtime,
                             summary={"exact_fas": 1.0, "runtime": runtime})
             for name, runtime in names_runtimes]
    return BatchReport(items=items, wall_time=wall_time)


class TestBatchReportMerge:
    def test_merge_sorts_items_and_takes_max_wall_time(self):
        left = _report([("b", 1.0), ("a", 2.0)], wall_time=3.0)
        right = _report([("c", 4.0)], wall_time=5.0)
        merged = BatchReport.merge(left, right)
        assert [item.name for item in merged.items] == ["a", "b", "c"]
        assert merged.wall_time == 5.0
        assert merged.plan is None
        assert merged.total_runtime == pytest.approx(7.0)

    def test_merge_is_deterministic_and_aggregate_additive(self):
        left = _report([("a", 1.0)], wall_time=1.0)
        right = _report([("b", 2.0)], wall_time=2.0)
        once = BatchReport.merge(left, right)
        again = BatchReport.merge(left, right)
        assert ([item.name for item in once.items]
                == [item.name for item in again.items])
        assert once.deterministic_aggregate() == again.deterministic_aggregate()
        expected = {}
        for shard in (left, right):
            for key, value in shard.deterministic_aggregate().items():
                expected[key] = expected.get(key, 0.0) + value
        assert once.deterministic_aggregate() == expected

    def test_empty_merge_and_zero_guards(self):
        merged = BatchReport.merge()
        assert merged.items == []
        assert merged.wall_time == 0.0
        assert merged.throughput == 0.0
        assert merged.speedup == 0.0
        # All-warm merged shard: real wall clock, zero summed runtime.
        warm = BatchReport.merge(_report([("a", 0.0)], wall_time=2.0))
        assert warm.total_runtime == 0.0
        assert warm.speedup == 0.0
        assert warm.throughput == pytest.approx(0.5)

    def test_merge_of_real_shards_matches_single_batch(self, tmp_path):
        jobs = [ripple_carry_adder(3)[0], ripple_carry_adder(4)[0]]
        whole = BatchPipeline(FAST_OPTIONS, executor="serial").run(jobs)
        shard_a = BatchPipeline(FAST_OPTIONS, executor="serial").run(
            [ripple_carry_adder(3)[0]])
        shard_b = BatchPipeline(FAST_OPTIONS, executor="serial").run(
            [ripple_carry_adder(4)[0]])
        merged = BatchReport.merge(shard_a, shard_b)
        assert (merged.deterministic_aggregate()
                == whole.deterministic_aggregate())
        assert merged.num_ok == 2
