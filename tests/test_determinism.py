"""Determinism of saturation, FA detection and extraction.

Python randomises ``str`` hashing per process (``PYTHONHASHSEED``), so any
code path that iterates a set of e-nodes in raw hash order makes results
vary between runs.  These tests pin the fix: stable e-class insertion seqs,
sorted e-node hand-outs, and the egg-style :class:`BackoffScheduler` that
drops a rule's whole match set (instead of a hash-ordered subset) when it
exceeds its budget.

The heavyweight property — the full BoolE pipeline produces bit-identical
results under different hash seeds *while rules are being banned* — runs
the pipeline in subprocesses with explicit ``PYTHONHASHSEED`` values.
"""

import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, lit_not
from repro.core.construct import aig_to_egraph
from repro.core.rules_basic import basic_rules
from repro.egraph import (
    BackoffScheduler,
    EGraph,
    Op,
    Rewrite,
    Runner,
    RunnerLimits,
    StopReason,
    apply_rules,
    enode_sort_key,
)

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

# Pipeline configuration used by the subprocess runs: a post-mapping CSA
# multiplier at a width where the tight match budget forces several rule
# bans per phase (the regime that used to be nondeterministic under the
# flat cap), run to full saturation so both engines converge.
_PIPELINE_SCRIPT = """
import json
from collections import Counter
from repro.core import BoolEOptions, BoolEPipeline
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow

mapped = post_mapping_flow(csa_multiplier(3).aig)
options = BoolEOptions(r1_iterations=30, r2_iterations=40, match_limit=60,
                       ban_length=1, incremental={incremental})
result = BoolEPipeline(options).run(mapped)
egraph = result.construction.egraph
roots = sorted({{egraph.find(c) for c in result.construction.output_classes}})
cost = sum(result.extraction.entry(root).size for root in roots)
ops = Counter()
seen, stack = set(), list(roots)
while stack:
    class_id = egraph.find(stack.pop())
    if class_id in seen:
        continue
    seen.add(class_id)
    node = result.extraction.entry(class_id).node
    ops[node.op] += 1
    stack.extend(node.children)
print(json.dumps({{
    "exact_fas": result.num_exact_fas,
    "npn_fas": result.num_npn_fas,
    "classes": egraph.num_classes,
    "nodes": egraph.num_canonical_nodes(),
    "extraction_cost": cost,
    "op_counts": dict(sorted(ops.items())),
    "total_bans": (result.r1_report.total_bans()
                   + result.r2_report.total_bans()),
    "r1_stop": result.r1_report.stop_reason,
    "r2_stop": result.r2_report.stop_reason,
}}))
"""


def _run_pipeline_subprocess(hash_seed: int, incremental: bool) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    script = _PIPELINE_SCRIPT.format(incremental=incremental)
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


class TestPipelineDeterminism:
    def test_hash_seed_invariance_under_backoff(self):
        """Two hash seeds => bit-identical pipeline results, bans included."""
        first = _run_pipeline_subprocess(hash_seed=0, incremental=True)
        second = _run_pipeline_subprocess(hash_seed=98765, incremental=True)
        assert first["total_bans"] > 0, "budget never exceeded; test is vacuous"
        assert first == second

    def test_full_scan_and_delta_engines_agree(self):
        """Both engines saturate to identical counts despite different
        per-iteration ban schedules."""
        delta = _run_pipeline_subprocess(hash_seed=1, incremental=True)
        full = _run_pipeline_subprocess(hash_seed=2, incremental=False)
        assert delta["r2_stop"] == StopReason.SATURATED
        assert full["r2_stop"] == StopReason.SATURATED
        for key in ("exact_fas", "npn_fas", "classes", "nodes",
                    "extraction_cost", "op_counts"):
            assert delta[key] == full[key], key


class TestStableOrdering:
    def test_enodes_sorted_by_structural_key(self):
        eg = EGraph()
        a, b = eg.var("a"), eg.var("b")
        root = eg.add_term(Op.AND, a, b)
        eg.union(root, eg.add_term(Op.OR, a, b))
        eg.union(root, eg.add_term(Op.AND, b, a))
        eg.rebuild()
        nodes = eg.enodes(root)
        assert nodes == sorted(nodes, key=enode_sort_key)

    def test_seq_survives_union_keeping_smaller(self):
        eg = EGraph()
        early = eg.var("a")           # seq 0
        eg.var("b")                   # seq 1
        late = eg.add_term(Op.AND, eg.var("b"), eg.var("b"))
        assert eg.seq(late) > eg.seq(early)
        eg.union(late, early)
        eg.rebuild()
        # Whatever id won the merge, the surviving class keeps seq 0.
        assert eg.seq(late) == eg.seq(early) == 0

    def test_take_dirty_is_seq_sorted(self):
        eg = EGraph()
        eg.take_dirty()
        c = eg.var("c")
        a = eg.var("a")
        eg.add_term(Op.AND, a, c)
        dirty = eg.take_dirty()
        assert dirty == eg.sorted_by_seq(set(dirty))
        assert [eg.seq(cid) for cid in dirty] == sorted(
            eg.seq(cid) for cid in dirty)

    def test_class_ids_seq_sorted(self):
        eg = EGraph()
        ids = [eg.var(name) for name in "dcba"]
        eg.union(ids[0], ids[3])
        eg.rebuild()
        listed = eg.class_ids()
        assert [eg.seq(cid) for cid in listed] == sorted(
            eg.seq(cid) for cid in listed)


class TestBackoffScheduler:
    def _comm_graph(self, pairs=4):
        eg = EGraph()
        for i in range(pairs):
            eg.add_expr(("&", f"a{i}", f"b{i}"))
        return eg

    def test_exceeding_budget_bans_and_drops_all_matches(self):
        eg = self._comm_graph()
        rule = Rewrite.parse("comm", "(& ?x ?y)", "(& ?y ?x)")
        scheduler = BackoffScheduler(match_limit=2, ban_length=3)
        stats = apply_rules(eg, [rule], scheduler=scheduler)
        assert stats["comm"].capped
        assert stats["comm"].matches == 0        # dropped wholesale
        assert stats["comm"].applications == 0   # nothing applied
        assert scheduler.is_banned("comm")
        assert scheduler.stats() == {"comm": 1}

    def test_banned_rule_is_skipped_then_retries_with_grown_budget(self):
        eg = self._comm_graph(pairs=3)
        rule = Rewrite.parse("comm", "(& ?x ?y)", "(& ?y ?x)")
        scheduler = BackoffScheduler(match_limit=2, ban_length=1)
        stats = apply_rules(eg, [rule], scheduler=scheduler)  # 3 > 2: banned
        assert stats["comm"].capped
        stats = apply_rules(eg, [rule], scheduler=scheduler)  # ban active
        assert stats["comm"].banned
        assert stats["comm"].matches == 0
        # Ban expired; budget doubled to 4, the 3 matches now fit.
        stats = apply_rules(eg, [rule], scheduler=scheduler)
        assert not stats["comm"].banned
        assert stats["comm"].matches == 3

    def test_flat_scheduler_short_bans_but_growing_budget(self):
        scheduler = BackoffScheduler.flat(5)
        assert scheduler.budget("r") == 5
        scheduler.begin_iteration()                   # iteration 0
        scheduler.ban("r", searched=None)
        # The budget must keep growing even in flat mode: a constant budget
        # would starve any rule whose match count stays above the cap.
        assert scheduler.budget("r") == 10
        assert scheduler.has_debt("r")                # owes a full rescan
        scheduler.begin_iteration()                   # iteration 1: banned
        assert scheduler.is_banned("r")
        scheduler.begin_iteration()                   # iteration 2: free
        assert not scheduler.is_banned("r")
        # Ban windows stay at one iteration (no exponential growth).
        scheduler.ban("r", searched=None)
        scheduler.begin_iteration()
        assert scheduler.is_banned("r")
        scheduler.begin_iteration()
        assert not scheduler.is_banned("r")

    def test_debt_accumulates_while_banned_and_clears_after_search(self):
        eg = EGraph()
        a, b = eg.var("a"), eg.var("b")
        scheduler = BackoffScheduler(match_limit=10, ban_length=2)
        scheduler.begin_iteration()
        scheduler.ban("r", searched=[a])
        scheduler.defer("r", [b])
        frontier = scheduler.frontier_for("r", {b})
        assert frontier == {a, b}
        scheduler.clear_debt("r")
        assert not scheduler.has_debt("r")
        assert scheduler.frontier_for("r", {b}) == {b}

    def test_full_scan_debt_dominates(self):
        scheduler = BackoffScheduler(match_limit=10, ban_length=2)
        scheduler.begin_iteration()
        scheduler.ban("r", searched=None)       # missed a full-scan round
        assert scheduler.frontier_for("r", {1, 2}) is None

    def test_delta_matching_recovers_matches_missed_while_banned(self):
        """The core soundness property replacing the full-rescan fallback:
        classes changed during a ban are re-searched when the ban lifts."""
        eg = EGraph()
        eg.add_expr(("~", ("~", "a")))
        eg.add_expr(("~", ("~", "b")))
        eg.add_expr(("~", ("~", "c")))
        rule = Rewrite.parse("nn", "(~ (~ ?x))", "?x")
        scheduler = BackoffScheduler(match_limit=2, ban_length=1)
        eg.rebuild()
        eg.take_dirty()
        # Full-scan round: 3 matches > budget 2 -> banned, full-rescan debt.
        stats = apply_rules(eg, [rule], scheduler=scheduler)
        assert stats["nn"].capped
        # While banned, a new double negation appears in a class the rule
        # will never see dirty again.
        fresh = eg.add_expr(("~", ("~", "d")))
        dirty = eg.take_dirty()
        stats = apply_rules(eg, [rule], dirty=dirty, scheduler=scheduler)
        assert stats["nn"].banned
        # Ban lifts; the rule's debt forces the wider (here: full) rescan
        # with the doubled budget of 4, catching all four matches at once.
        stats = apply_rules(eg, [rule], dirty=eg.take_dirty(),
                            scheduler=scheduler)
        assert stats["nn"].matches == 4
        assert eg.find(fresh) == eg.find(eg.var("d"))
        for name in "abc":
            double = eg.add_expr(("~", ("~", name)))
            assert eg.find(double) == eg.find(eg.var(name))


class TestRunnerBackoffAccounting:
    def _explosive(self):
        return [Rewrite.parse("assoc", "(& (& ?a ?b) ?c)",
                              "(& ?a (& ?b ?c))", bidirectional=True),
                Rewrite.parse("comm", "(& ?a ?b)", "(& ?b ?a)")]

    def _chain(self, eg, depth=4):
        expr = "x0"
        for i in range(1, depth + 1):
            expr = ("&", expr, f"x{i}")
        return eg.add_expr(expr)

    def test_not_saturated_while_rules_banned(self):
        """A run that goes quiet only because rules are banned must not
        report saturation."""
        eg = self._comm_pairs(6)
        rule = Rewrite.parse("comm", "(& ?x ?y)", "(& ?y ?x)")
        limits = RunnerLimits(max_iterations=1, match_limit=2, ban_length=5)
        report = Runner(limits).run(eg, [rule])
        assert report.stop_reason == StopReason.RULES_BANNED
        assert not report.saturated
        assert report.scheduler_stats == {"comm": 1}
        assert report.iterations[0].banned_rules == ["comm"]

    def test_unban_and_continue_reaches_saturation(self):
        """With iterations to spare the runner lifts bans, retries with a
        grown budget, and genuinely saturates."""
        eg = self._comm_pairs(6)
        rule = Rewrite.parse("comm", "(& ?x ?y)", "(& ?y ?x)")
        limits = RunnerLimits(max_iterations=12, match_limit=2, ban_length=1)
        report = Runner(limits).run(eg, [rule])
        assert report.stop_reason == StopReason.SATURATED
        assert report.total_bans() >= 1

    def test_no_full_rescan_after_banned_iteration(self):
        """Banned iterations must not force full-scan fallbacks: every
        iteration after the first reports a (possibly widened) frontier."""
        eg = self._comm_pairs(6)
        rule = Rewrite.parse("comm", "(& ?x ?y)", "(& ?y ?x)")
        limits = RunnerLimits(max_iterations=12, match_limit=2, ban_length=1)
        report = Runner(limits).run(eg, [rule])
        assert all(it.frontier_size is not None
                   for it in report.iterations[1:])

    def test_deprecated_flat_cap_builds_flat_scheduler(self):
        with pytest.warns(DeprecationWarning):
            limits = RunnerLimits(max_matches_per_rule=7)
        scheduler = limits.build_scheduler()
        assert scheduler.budget("any") == 7
        scheduler.begin_iteration()
        scheduler.ban("any", searched=None)
        assert scheduler.budget("any") == 14    # doubles: no starvation

    def test_legacy_cap_and_scheduler_are_mutually_exclusive(self):
        eg = self._comm_pairs(2)
        rule = Rewrite.parse("comm", "(& ?x ?y)", "(& ?y ?x)")
        with pytest.raises(ValueError):
            apply_rules(eg, [rule], max_matches_per_rule=1,
                        scheduler=BackoffScheduler(10))

    def test_match_limit_none_disables_backoff(self):
        assert RunnerLimits(match_limit=None).build_scheduler() is None

    def _comm_pairs(self, pairs):
        eg = EGraph()
        for i in range(pairs):
            eg.add_expr(("&", f"a{i}", f"b{i}"))
        return eg


class TestDeprecatedAliasCoverage:
    """The deprecated ``max_matches_per_rule`` alias: it must warn loudly,
    refuse to coexist with an explicit scheduler configuration, and still
    work (flat compatibility scheduler) in both the Runner and the
    BoolEOptions paths."""

    def test_runner_limits_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="max_matches_per_rule"):
            limits = RunnerLimits(max_matches_per_rule=5)
        assert limits.build_scheduler().budget("any") == 5

    def test_runner_limits_alias_with_explicit_match_limit_raises(self):
        with pytest.raises(ValueError, match="match_limit"):
            RunnerLimits(match_limit=5_000, max_matches_per_rule=5)

    def test_runner_limits_alias_with_disabled_backoff_allowed(self):
        """``match_limit=None`` is not an explicit scheduler config — the
        alias may override it (the bench flat-cap series relies on this)."""
        with pytest.warns(DeprecationWarning):
            limits = RunnerLimits(match_limit=None, max_matches_per_rule=5)
        scheduler = limits.build_scheduler()
        assert scheduler is not None
        assert scheduler.ban_growth == 1  # flat: windows never grow

    def test_boole_options_alias_warns(self):
        from repro.core import BoolEOptions

        with pytest.warns(DeprecationWarning, match="max_matches_per_rule"):
            options = BoolEOptions(max_matches_per_rule=5)
        assert options.max_matches_per_rule == 5

    def test_boole_options_alias_with_explicit_match_limit_raises(self):
        from repro.core import BoolEOptions

        with pytest.raises(ValueError, match="match_limit"):
            BoolEOptions(match_limit=50, max_matches_per_rule=5)

    def test_pipeline_runs_flat_scheduler_through_alias(self):
        """End-to-end: the alias drives a flat scheduler inside the
        pipeline without re-warning per phase, and the run completes."""
        from repro.core import BoolEOptions, BoolEPipeline

        with pytest.warns(DeprecationWarning):
            options = BoolEOptions(r1_iterations=4, r2_iterations=1,
                                   match_limit=None, max_matches_per_rule=4,
                                   extract=False, count_npn=False)
        aig = AIG(name="tiny")
        a, b, c = (aig.add_input(name) for name in "abc")
        aig.add_output(aig.and_(aig.and_(a, b), c), "f")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = BoolEPipeline(options).run(aig)
        assert result.r1_report.num_iterations >= 1

    def test_apply_rules_alias_with_explicit_scheduler_raises(self):
        eg = EGraph()
        eg.add_expr(("&", "a", "b"))
        rule = Rewrite.parse("comm", "(& ?x ?y)", "(& ?y ?x)")
        with pytest.raises(ValueError, match="scheduler"):
            apply_rules(eg, [rule], max_matches_per_rule=1,
                        scheduler=BackoffScheduler(10))


@st.composite
def random_aigs(draw):
    """A small random AIG: a DAG of AND gates over negated fanins."""
    num_inputs = draw(st.integers(min_value=2, max_value=4))
    num_gates = draw(st.integers(min_value=1, max_value=12))
    aig = AIG(name="rand")
    literals = [aig.add_input(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_gates):
        a = literals[draw(st.integers(0, len(literals) - 1))]
        b = literals[draw(st.integers(0, len(literals) - 1))]
        if draw(st.booleans()):
            a = lit_not(a)
        if draw(st.booleans()):
            b = lit_not(b)
        literals.append(aig.and_(a, b))
    aig.add_output(literals[-1], "f")
    return aig


def _partition(construction):
    egraph = construction.egraph
    groups = {}
    for var, class_id in construction.class_of_var.items():
        groups.setdefault(egraph.find(class_id), set()).add(var)
    return {frozenset(group) for group in groups.values()}


class TestBackoffDeltaEquivalence:
    @given(random_aigs())
    @settings(max_examples=15, deadline=None)
    def test_backoff_delta_equals_uncapped_full_scan(self, aig):
        """Saturating with a tiny budget (many bans) through the delta
        engine reaches the same e-graph as an uncapped full-scan run, and
        the scheduler-aware debug cross-check stays silent."""
        reference = aig_to_egraph(aig)
        Runner(RunnerLimits(max_iterations=24, match_limit=None),
               incremental=False).run(reference.egraph, basic_rules())

        constrained = aig_to_egraph(aig)
        limits = RunnerLimits(max_iterations=24, match_limit=4, ban_length=1)
        report = Runner(limits, incremental=True,
                        debug_check_full=True).run(constrained.egraph,
                                                   basic_rules())
        assert report.stop_reason == StopReason.SATURATED
        assert reference.egraph.num_classes == constrained.egraph.num_classes
        # Raw num_nodes can differ by stale duplicates from the different
        # merge histories; the canonical node count must agree exactly.
        assert (reference.egraph.num_canonical_nodes()
                == constrained.egraph.num_canonical_nodes())
        assert _partition(reference) == _partition(constrained)
