"""Cross-engine A/B properties: the dense SoA engine vs the reference.

The dense struct-of-arrays engine (:mod:`repro.egraph.dense`) promises
*bit identity* with the reference object-graph engine: same wire bytes,
same fingerprints, same extraction choices — only faster.  These tests
enforce that contract from three directions:

* in-process state round-trips (``export_state``/``from_state`` across
  engines is a byte-preserving bijection),
* Hypothesis property runs with the reference engine as oracle
  (identical mutation sequences => identical wire bytes),
* full-pipeline subprocess runs across ``PYTHONHASHSEED`` values, both
  schedulers, and cross-engine checkpoint resume — a checkpoint written
  under one engine resumed under the other must land on the same bytes
  as an uninterrupted run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, lit_not
from repro.core import BoolEOptions, BoolEPipeline
from repro.core.construct import aig_to_egraph
from repro.core.fa_structure import insert_fa_structures
from repro.core.rules_basic import basic_rules
from repro.egraph import (
    DEFAULT_ENGINE,
    ENGINES,
    DenseEGraph,
    EGraph,
    Runner,
    RunnerLimits,
    as_engine,
)
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow
from repro.service import JobService, ServiceWorker
from repro.store.codec import egraph_to_wire

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _wire_bytes(egraph) -> bytes:
    return json.dumps(egraph_to_wire(egraph), sort_keys=True).encode()


def _mapped_csa3():
    return post_mapping_flow(csa_multiplier(3).aig)


def _subprocess_env(hash_seed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


# ----------------------------------------------------------------------
# Engine registry basics
# ----------------------------------------------------------------------
class TestEngineRegistry:
    def test_dense_is_the_default(self):
        assert DEFAULT_ENGINE == "dense"
        assert BoolEOptions().engine == "dense"
        assert set(ENGINES) == {"dense", "python"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            BoolEOptions(engine="fortran")
        with pytest.raises(ValueError, match="engine"):
            as_engine(EGraph(), "fortran")

    def test_as_engine_is_identity_on_matching_engine(self):
        egraph = EGraph()
        egraph.var("a")
        assert as_engine(egraph, "python") is egraph
        dense = as_engine(egraph, "dense")
        assert isinstance(dense, DenseEGraph)
        assert as_engine(dense, "dense") is dense


# ----------------------------------------------------------------------
# State round-trips
# ----------------------------------------------------------------------
class TestStateRoundTrip:
    def _saturated_reference(self):
        construction = aig_to_egraph(_mapped_csa3())
        limits = RunnerLimits(max_iterations=6, match_limit=60, ban_length=1)
        Runner(limits).run(construction.egraph, basic_rules())
        return construction.egraph

    def test_python_to_dense_preserves_bytes(self):
        reference = self._saturated_reference()
        dense = DenseEGraph.from_state(reference.export_state())
        assert _wire_bytes(dense) == _wire_bytes(reference)
        assert dense.num_classes == reference.num_classes
        assert (dense.num_canonical_nodes()
                == reference.num_canonical_nodes())

    def test_dense_to_python_round_trip_is_bijective(self):
        reference = self._saturated_reference()
        dense = DenseEGraph.from_state(reference.export_state())
        back = EGraph.from_state(dense.export_state())
        assert _wire_bytes(back) == _wire_bytes(reference)

    def test_class_handouts_match(self):
        reference = self._saturated_reference()
        dense = DenseEGraph.from_state(reference.export_state())
        ref_ids = [eclass.id for eclass in reference.classes()]
        assert [eclass.id for eclass in dense.classes()] == ref_ids
        for class_id in ref_ids:
            assert (dense.enodes(class_id)
                    == reference.enodes(class_id)), class_id
            assert dense.seq(class_id) == reference.seq(class_id)


# ----------------------------------------------------------------------
# Reference engine as property-test oracle
# ----------------------------------------------------------------------
@st.composite
def random_aigs(draw):
    """A small random AIG: a DAG of AND gates over negated fanins."""
    num_inputs = draw(st.integers(min_value=2, max_value=4))
    num_gates = draw(st.integers(min_value=1, max_value=12))
    aig = AIG(name="rand")
    literals = [aig.add_input(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_gates):
        a = literals[draw(st.integers(0, len(literals) - 1))]
        b = literals[draw(st.integers(0, len(literals) - 1))]
        if draw(st.booleans()):
            a = lit_not(a)
        if draw(st.booleans()):
            b = lit_not(b)
        literals.append(aig.and_(a, b))
    aig.add_output(literals[-1], "f")
    return aig


class TestDenseOracleEquivalence:
    @given(random_aigs())
    @settings(max_examples=12, deadline=None)
    def test_saturation_bit_identical_to_reference(self, aig):
        """Identical inputs through both engines => identical wire bytes
        after saturation, pruning and FA structuring."""
        reference = aig_to_egraph(aig).egraph
        dense = DenseEGraph.from_state(reference.export_state())
        limits = RunnerLimits(max_iterations=10, match_limit=12,
                              ban_length=1)
        ref_report = Runner(limits).run(reference, basic_rules())
        dense_report = Runner(limits).run(dense, basic_rules())
        assert _wire_bytes(dense) == _wire_bytes(reference)
        assert dense_report.stop_reason == ref_report.stop_reason
        assert dense_report.num_iterations == ref_report.num_iterations
        insert_fa_structures(reference)
        insert_fa_structures(dense)
        assert _wire_bytes(dense) == _wire_bytes(reference)

    @given(random_aigs())
    @settings(max_examples=8, deadline=None)
    def test_full_scan_engine_agrees_too(self, aig):
        reference = aig_to_egraph(aig).egraph
        dense = DenseEGraph.from_state(reference.export_state())
        limits = RunnerLimits(max_iterations=8, match_limit=12,
                              ban_length=1)
        Runner(limits, incremental=False).run(reference, basic_rules())
        Runner(limits, incremental=False).run(dense, basic_rules())
        assert _wire_bytes(dense) == _wire_bytes(reference)


# ----------------------------------------------------------------------
# Full pipeline across engines, hash seeds and schedulers (subprocess)
# ----------------------------------------------------------------------
_ENGINE_PIPELINE_SCRIPT = """
import hashlib
import json
from repro.core import BoolEOptions, BoolEPipeline
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow
from repro.store.codec import egraph_to_wire

mapped = post_mapping_flow(csa_multiplier(3).aig)
options = BoolEOptions(r1_iterations=30, r2_iterations=40, match_limit=60,
                       ban_length=1, incremental={incremental},
                       engine={engine!r})
result = BoolEPipeline(options).run(mapped)
egraph = result.construction.egraph
wire = json.dumps(egraph_to_wire(egraph), sort_keys=True).encode()
stats = result.saturation_stats()
print(json.dumps({{
    "wire_sha": hashlib.sha256(wire).hexdigest(),
    "exact_fas": result.num_exact_fas,
    "npn_fas": result.num_npn_fas,
    "classes": egraph.num_classes,
    "nodes": egraph.num_canonical_nodes(),
    "total_bans": (result.r1_report.total_bans()
                   + result.r2_report.total_bans()),
    "r1_stop": result.r1_report.stop_reason,
    "r2_stop": result.r2_report.stop_reason,
    "engine_reported": stats["engine"],
    "counted_ops": stats["ematch_ops"] > 0,
}}))
"""


def _run_engine_pipeline(engine: str, hash_seed: int,
                         incremental: bool = True) -> dict:
    script = _ENGINE_PIPELINE_SCRIPT.format(engine=engine,
                                            incremental=incremental)
    proc = subprocess.run([sys.executable, "-c", script],
                          env=_subprocess_env(hash_seed),
                          capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _strip_telemetry(row: dict) -> dict:
    return {key: value for key, value in row.items()
            if key not in ("engine_reported", "counted_ops")}


class TestPipelineEngineEquivalence:
    def test_bit_identical_across_engines_and_hash_seeds(self):
        """dense(seed A), dense(seed B) and python(seed C) all produce the
        same saturated artifact bytes, ban schedule included."""
        dense_a = _run_engine_pipeline("dense", hash_seed=0)
        dense_b = _run_engine_pipeline("dense", hash_seed=98765)
        python_c = _run_engine_pipeline("python", hash_seed=31337)
        assert dense_a["total_bans"] > 0, "budget never exceeded; vacuous"
        assert dense_a["engine_reported"] == "dense"
        assert python_c["engine_reported"] == "python"
        assert dense_a["counted_ops"] and python_c["counted_ops"]
        assert _strip_telemetry(dense_a) == _strip_telemetry(dense_b)
        assert _strip_telemetry(dense_a) == _strip_telemetry(python_c)

    def test_full_scan_scheduler_agrees_across_engines(self):
        dense = _run_engine_pipeline("dense", hash_seed=1,
                                     incremental=False)
        python = _run_engine_pipeline("python", hash_seed=2,
                                      incremental=False)
        assert _strip_telemetry(dense) == _strip_telemetry(python)


# ----------------------------------------------------------------------
# Cross-engine checkpoint resume (subprocess)
# ----------------------------------------------------------------------
_CHECKPOINT_SCRIPT = """
import hashlib
import json
import sys
from repro.core.construct import aig_to_egraph
from repro.core.rules_basic import basic_rules
from repro.core.rules_xor_maj import identification_rules
from repro.egraph import Runner, RunnerLimits, as_engine
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow
from repro.store import load_checkpoint, save_checkpoint
from repro.store.codec import egraph_to_wire

mode, path, engine = sys.argv[1], sys.argv[2], sys.argv[3]
aig = post_mapping_flow(csa_multiplier(3).aig)
rules = basic_rules() + identification_rules(True)
limits = RunnerLimits(max_iterations=12, match_limit=60, ban_length=1)

def signature(egraph):
    wire = json.dumps(egraph_to_wire(egraph), sort_keys=True).encode()
    return hashlib.sha256(wire).hexdigest()

if mode == "full":
    egraph = as_engine(aig_to_egraph(aig).egraph, engine)
    Runner(limits).run(egraph, rules)
    print(signature(egraph))
elif mode == "checkpoint":
    egraph = as_engine(aig_to_egraph(aig).egraph, engine)
    saved = []
    def on_checkpoint(cp):
        if not saved:
            save_checkpoint(path, egraph, cp)
            saved.append(cp.iteration)
    Runner(limits).run(egraph, rules, checkpoint_every=3,
                       on_checkpoint=on_checkpoint)
    print(saved[0] if saved else -1)
else:
    egraph, cp = load_checkpoint(path)
    egraph = as_engine(egraph, engine)
    Runner.from_checkpoint(cp).run(egraph, rules, resume_from=cp)
    print(signature(egraph))
"""


def _checkpoint_subprocess(mode: str, path: str, engine: str,
                           hash_seed: int) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", _CHECKPOINT_SCRIPT, mode, path, engine],
        env=_subprocess_env(hash_seed), capture_output=True, text=True,
        timeout=600)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestCrossEngineCheckpointResume:
    @pytest.mark.parametrize("writer,resumer", [("dense", "python"),
                                                ("python", "dense")])
    def test_checkpoint_written_by_one_engine_resumes_under_other(
            self, writer, resumer, tmp_path):
        """Kill/resume across the engine boundary: the wire state is
        engine-neutral, so a mid-saturation checkpoint taken under one
        engine must resume under the other to the exact same bytes as an
        uninterrupted reference run."""
        path = str(tmp_path / "checkpoint.json.gz")
        reference = _checkpoint_subprocess("full", path, "python",
                                           hash_seed=0)
        first = _checkpoint_subprocess("checkpoint", path, writer,
                                       hash_seed=31337)
        assert int(first) > 0, "no checkpoint was written"
        resumed = _checkpoint_subprocess("resume", path, resumer,
                                         hash_seed=98765)
        assert resumed == reference


# ----------------------------------------------------------------------
# Telemetry surfacing: RunnerReport and service stats
# ----------------------------------------------------------------------
FAST = {"r1_iterations": 2, "r2_iterations": 2, "count_npn": False}


class TestTelemetrySurfacing:
    def test_report_carries_engine_and_ops(self):
        result = BoolEPipeline(BoolEOptions(**FAST)).run(_mapped_csa3())
        assert result.r1_report.engine == "dense"
        assert result.r2_report.engine == "dense"
        assert result.r1_report.ematch_ops > 0
        assert result.r1_report.ematch_ops_per_second() >= 0.0
        stats = result.saturation_stats()
        assert stats["engine"] == "dense"
        assert stats["ematch_ops"] > 0
        assert stats["saturation_seconds"] >= 0.0

    def test_python_engine_still_selectable(self):
        result = BoolEPipeline(
            BoolEOptions(engine="python", **FAST)).run(_mapped_csa3())
        assert result.r1_report.engine == "python"
        assert result.saturation_stats()["engine"] == "python"

    def test_summary_unchanged_by_telemetry(self):
        """The warm/cold summary-equality contract: telemetry must live
        in saturation_stats(), never in summary()."""
        result = BoolEPipeline(BoolEOptions(**FAST)).run(_mapped_csa3())
        assert "engine" not in result.summary()
        assert "ematch_ops" not in result.summary()

    def test_service_stats_aggregate_engine_throughput(self, tmp_path):
        service = JobService(tmp_path / "store")
        request = {"arch": "csa", "width": 3, "options": dict(FAST)}
        queued = service.submit(request)
        worker = ServiceWorker(service.store, poll_interval=0.01)
        assert worker.run_once() == queued["job_id"]
        saturation = service.stats()["saturation"]
        assert saturation["runs"] == 1
        assert saturation["ematch_ops"] > 0
        assert saturation["ematch_ops_per_s"] >= 0.0
        assert "dense" in saturation["engines"]
