"""Tests for cut enumeration and NPN classification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, MAJ3_TABLE, XOR3_TABLE, XOR2_TABLE, lit_var
from repro.cuts import (
    MAJ3_NPN_CANON,
    XOR3_NPN_CANON,
    Cut,
    cut_function,
    enumerate_cuts,
    npn_canonical,
    npn_equivalent,
)


def _xor3_maj3_aig():
    aig = AIG()
    a, b, c = (aig.add_input(name) for name in "abc")
    s, carry = aig.full_adder(a, b, c)
    aig.add_output(s, "sum")
    aig.add_output(carry, "carry")
    return aig, (a, b, c), s, carry


class TestCutEnumeration:
    def test_inputs_have_trivial_cut(self):
        aig, (a, b, c), _, _ = _xor3_maj3_aig()
        cuts = enumerate_cuts(aig, k=3)
        assert cuts[lit_var(a)][0].leaves == frozenset({lit_var(a)})

    def test_fa_sum_has_three_leaf_cut(self):
        aig, (a, b, c), s, _ = _xor3_maj3_aig()
        cuts = enumerate_cuts(aig, k=3)
        leaves = frozenset(lit_var(x) for x in (a, b, c))
        sum_cuts = {cut.leaves for cut in cuts[lit_var(s)]}
        assert leaves in sum_cuts

    def test_cut_size_limit_respected(self):
        aig, _, s, carry = _xor3_maj3_aig()
        cuts = enumerate_cuts(aig, k=3)
        for node_cuts in cuts.values():
            for cut in node_cuts:
                assert cut.size <= 3

    def test_priority_limit_bounds_cut_count(self):
        aig, _, _, _ = _xor3_maj3_aig()
        cuts = enumerate_cuts(aig, k=3, max_cuts_per_node=2)
        for node_cuts in cuts.values():
            # +1 for the always-included trivial cut
            assert len(node_cuts) <= 3

    def test_cut_function_of_sum_is_xor3(self):
        aig, (a, b, c), s, carry = _xor3_maj3_aig()
        leaves = tuple(sorted(lit_var(x) for x in (a, b, c)))
        cut = Cut(lit_var(s), frozenset(leaves))
        table = cut_function(aig, cut)
        # The positive node of the sum literal is XNOR3 (xor_ returns the
        # complemented edge); either phase is in the XOR3 NPN class.
        assert npn_canonical(table, 3) == XOR3_NPN_CANON

    def test_cut_function_of_carry_is_maj(self):
        aig, (a, b, c), s, carry = _xor3_maj3_aig()
        leaves = tuple(sorted(lit_var(x) for x in (a, b, c)))
        table = cut_function(aig, Cut(lit_var(carry), frozenset(leaves)))
        assert npn_canonical(table, 3) == MAJ3_NPN_CANON


class TestNPN:
    def test_xor3_and_xnor3_equivalent(self):
        assert npn_equivalent(XOR3_TABLE, ~XOR3_TABLE & 0xFF, 3)

    def test_maj_and_minority_equivalent(self):
        assert npn_equivalent(MAJ3_TABLE, ~MAJ3_TABLE & 0xFF, 3)

    def test_xor3_not_equivalent_to_maj(self):
        assert not npn_equivalent(XOR3_TABLE, MAJ3_TABLE, 3)

    def test_and_or_same_class(self):
        and2 = 0b1000
        or2 = 0b1110
        assert npn_equivalent(and2, or2, 2)

    def test_xor2_not_in_and_class(self):
        assert not npn_equivalent(XOR2_TABLE, 0b1000, 2)

    def test_canonical_is_idempotent(self):
        canon = npn_canonical(MAJ3_TABLE, 3)
        assert npn_canonical(canon, 3) == canon

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_input_negation_preserves_class(self, table, mask):
        from repro.cuts import apply_input_negation
        negated = apply_input_negation(table, mask, 3)
        assert npn_canonical(table, 3) == npn_canonical(negated, 3)

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_output_negation_preserves_class(self, table):
        assert npn_canonical(table, 3) == npn_canonical(~table & 0xFF, 3)

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_permutation_preserves_class(self, table):
        from repro.cuts import apply_permutation
        permuted = apply_permutation(table, (2, 0, 1), 3)
        assert npn_canonical(table, 3) == npn_canonical(permuted, 3)
