"""Phase-graph executor: restore/resume scheduling, kill/resume property.

Unit tests drive :class:`~repro.core.phases.PhaseGraph` with synthetic
phases to pin the executor's scheduling contract (deepest-artifact
restore, checkpoint resume, persistence, checkpoint cleanup, corrupt
artifacts degrading to recomputes).  The integration tests hold the
ISSUE acceptance property end-to-end: a ``BoolEPipeline.run`` hard-killed
mid-R2 resumes from its ``kind="checkpoint"`` artifact and finishes
bit-identical to an uninterrupted run (width 3 in tier-1; the width-16
variant is nightly-gated via ``REPRO_NIGHTLY``).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import (
    BoolEOptions,
    BoolEPipeline,
    Phase,
    PhaseContext,
    PhaseGraph,
)
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow
from repro.store import KIND_CHECKPOINT, ArtifactStore, phase_checkpoint_key

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

NIGHTLY = os.environ.get("REPRO_NIGHTLY") == "1"


# ----------------------------------------------------------------------
# Synthetic phases for executor unit tests
# ----------------------------------------------------------------------
class RecordingPhase(Phase):
    """A phase that appends its name to a log and sets one state field."""

    kind = "egraph"  # reuse an existing kind; payload shape is ours

    def __init__(self, name, log, *, cacheable=False, requires=()):
        self.name = name
        self.log = log
        self.cacheable = cacheable
        self.requires = tuple(requires)

    def cache_key(self, ctx):
        # Upfront-computable (like the saturated boundary key): the
        # executor may probe it before any prefix phase has run.
        if not self.cacheable:
            return None
        return ("ab" * 16) + format(
            sum(ord(ch) for ch in self.name) & 0xFFFF, "04x")

    def run(self, ctx, resume=None):
        self.log.append(self.name)
        ctx[self.name] = f"computed-{self.name}"

    def to_wire(self, ctx):
        return {"value": ctx[self.name]}

    def from_wire(self, ctx, payload):
        # Cumulative: a boundary artifact covers everything before it.
        for field in self.requires:
            ctx[field] = f"restored-{field}"
        ctx[self.name] = payload["value"]


class TestPhaseGraphExecutor:
    def test_duplicate_names_rejected(self):
        log = []
        with pytest.raises(ValueError):
            PhaseGraph([RecordingPhase("a", log), RecordingPhase("a", log)])

    def test_runs_in_order_without_store(self):
        log = []
        graph = PhaseGraph([RecordingPhase("a", log), RecordingPhase("b", log),
                            RecordingPhase("c", log)])
        ctx = PhaseContext(store=None)
        graph.execute(ctx)
        assert log == ["a", "b", "c"]
        assert ctx["b"] == "computed-b"

    def test_disabled_phase_skipped(self):
        log = []

        class Disabled(RecordingPhase):
            def enabled(self, ctx):
                return False

        graph = PhaseGraph([RecordingPhase("a", log), Disabled("b", log)])
        ctx = PhaseContext()
        graph.execute(ctx)
        assert log == ["a"]
        assert "b" not in ctx

    def test_deepest_artifact_restores_and_skips_prefix(self, tmp_path):
        store = ArtifactStore(tmp_path)
        log = []
        a = RecordingPhase("a", log)
        b = RecordingPhase("b", log, cacheable=True, requires=("a",))
        c = RecordingPhase("c", log)
        graph = PhaseGraph([a, b, c])

        cold = PhaseContext(store=store)
        graph.execute(cold)
        assert log == ["a", "b", "c"]
        assert store.contains(b.cache_key(cold))

        log.clear()
        warm = PhaseContext(store=store)
        graph.execute(warm)
        # a and b are covered by b's boundary artifact; only c runs.
        assert log == ["c"]
        assert warm["a"] == "restored-a"
        assert warm["b"] == "computed-b"
        assert warm.artifact_hits == {"b": True}

    def test_corrupt_artifact_degrades_to_recompute(self, tmp_path):
        store = ArtifactStore(tmp_path)
        log = []
        b = RecordingPhase("b", log, cacheable=True)
        graph = PhaseGraph([b])
        cold = PhaseContext(store=store)
        graph.execute(cold)
        store.path_for(b.cache_key(cold)).write_bytes(b"garbage")

        log.clear()
        healed = PhaseContext(store=store)
        graph.execute(healed)
        assert log == ["b"]              # recomputed, not crashed
        assert healed.artifact_hits == {}

        log.clear()
        warm = PhaseContext(store=store)
        graph.execute(warm)
        assert log == []                 # the recompute overwrote it
        assert warm.artifact_hits == {"b": True}


# ----------------------------------------------------------------------
# Pipeline integration: phases, checkpoints, kill/resume
# ----------------------------------------------------------------------
OPTIONS = dict(r1_iterations=3, r2_iterations=3)


def _mapped(width=3):
    return post_mapping_flow(csa_multiplier(width).aig)


class TestPipelinePhases:
    def test_pipeline_reports_six_phases(self):
        assert BoolEPipeline().phases == [
            "construct", "saturate-r1", "saturate-r2", "insert-fa",
            "extract", "reconstruct"]

    def test_checkpoints_written_and_cleared(self, tmp_path):
        """With checkpoint_every set, saturation phases write checkpoint
        artifacts while running and delete them once the phase completes:
        a finished run leaves only the two boundary artifacts."""
        store = ArtifactStore(tmp_path)
        pipeline = BoolEPipeline(
            BoolEOptions(checkpoint_every=1, **OPTIONS), store=store)
        result = pipeline.run(_mapped())
        assert result.resumed_phase is None
        kinds = sorted(entry.kind for entry in store.entries())
        assert kinds == ["extraction", "saturated-pipeline"]

    def test_checkpoint_every_validated(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            BoolEOptions(checkpoint_every=0)
        BoolEOptions(checkpoint_every=None)   # disabled is fine
        BoolEOptions(checkpoint_every=1)

    def test_checkpoint_cadence_excluded_from_cache_key(self):
        aig = _mapped()
        with_checkpoints = BoolEPipeline(
            BoolEOptions(checkpoint_every=2, **OPTIONS))
        without = BoolEPipeline(BoolEOptions(**OPTIONS))
        assert with_checkpoints.cache_key(aig) == without.cache_key(aig)

    def test_partially_corrupt_artifact_leaves_no_half_restored_state(
            self, tmp_path):
        """A saturated artifact whose e-graph decodes but whose report
        tail is malformed must degrade to a *clean* recompute — not leave
        the already-saturated graph in the context for the fresh phases
        to saturate again."""
        store = ArtifactStore(tmp_path)
        aig = _mapped()
        pipeline = BoolEPipeline(BoolEOptions(**OPTIONS), store=store)
        cold = pipeline.run(aig)
        key = pipeline.cache_key(aig)
        payload = store.get(key)
        payload["r1_report"] = {"bogus": True}   # malformed tail
        store.put(key, payload, kind="saturated-pipeline")

        healed = pipeline.run(aig)
        assert not healed.cache_hit
        assert healed.fa_blocks == cold.fa_blocks
        assert healed.summary()["egraph_nodes"] \
            == cold.summary()["egraph_nodes"]
        assert pipeline.run(aig).cache_hit     # the recompute overwrote it

    def test_resume_from_checkpoint_artifact(self, tmp_path):
        """Seed the store with only a mid-R2 checkpoint (as a killed run
        would leave behind); the next run resumes it — construct and R1
        never re-run — and matches an uninterrupted reference exactly."""
        aig = _mapped()
        options = BoolEOptions(checkpoint_every=1, **OPTIONS)

        reference = BoolEPipeline(BoolEOptions(**OPTIONS)).run(aig)

        store = ArtifactStore(tmp_path)
        checkpoint_key = phase_checkpoint_key(
            BoolEPipeline(options).cache_key(aig), "saturate-r2")
        captured = {}
        original_put = ArtifactStore.put

        def capturing_put(self, key, payload, *, kind, meta=None):
            path = original_put(self, key, payload, kind=kind, meta=meta)
            if kind == KIND_CHECKPOINT and key not in captured:
                captured[key] = (payload, meta)
            return path

        ArtifactStore.put = capturing_put
        try:
            BoolEPipeline(options, store=store).run(aig)
        finally:
            ArtifactStore.put = original_put
        assert checkpoint_key in captured, "no mid-R2 checkpoint was taken"

        # Fresh store holding only the checkpoint — the killed-run state.
        resume_store = ArtifactStore(tmp_path / "killed")
        payload, meta = captured[checkpoint_key]
        resume_store.put(checkpoint_key, payload, kind=KIND_CHECKPOINT,
                         meta=meta)

        resumed = BoolEPipeline(options, store=resume_store).run(aig)
        assert resumed.resumed_phase == "saturate-r2"
        assert resumed.r2_report.resumed_at == meta["iteration"]
        assert "construct" not in resumed.timings
        assert "r1" not in resumed.timings
        assert resumed.fa_blocks == reference.fa_blocks
        assert resumed.extracted_aig.gates == reference.extracted_aig.gates
        assert (resumed.summary()["egraph_nodes"]
                == reference.summary()["egraph_nodes"])
        # The completed phase cleared its checkpoint; the boundary
        # artifacts are in place for the next run to hit.
        assert not resume_store.contains(checkpoint_key)
        warm = BoolEPipeline(options, store=resume_store).run(aig)
        assert warm.cache_hit and warm.extraction_cache_hit


_KILL_SCRIPT = """
import os, sys
from repro.core import BoolEOptions, BoolEPipeline
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow
from repro.store import KIND_CHECKPOINT, ArtifactStore

root, width = sys.argv[1], int(sys.argv[2])
aig = post_mapping_flow(csa_multiplier(width).aig)
options = BoolEOptions(r1_iterations=3, r2_iterations=3, checkpoint_every=1)

original_put = ArtifactStore.put
def put(self, key, payload, *, kind, meta=None):
    path = original_put(self, key, payload, kind=kind, meta=meta)
    if (kind == KIND_CHECKPOINT and meta
            and meta.get("phase") == "saturate-r2"):
        os._exit(9)   # hard kill, mid-R2, checkpoint durable on disk
    return path
ArtifactStore.put = put
BoolEPipeline(options, store=ArtifactStore(root)).run(aig)
raise SystemExit("run finished before a mid-R2 checkpoint; widen the budget")
"""

_FINISH_SCRIPT = """
import json, sys
from repro.core import BoolEOptions, BoolEPipeline
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow

root, width = sys.argv[1], int(sys.argv[2])
aig = post_mapping_flow(csa_multiplier(width).aig)
options = BoolEOptions(r1_iterations=3, r2_iterations=3, checkpoint_every=1)
result = BoolEPipeline(options, store=root).run(aig)
summary = {k: v for k, v in result.summary().items() if k != "runtime"}
print(json.dumps({
    "resumed_phase": result.resumed_phase,
    "resumed_at": result.r2_report.resumed_at,
    "summary": summary,
    "fa_blocks": [[list(b.inputs), b.sum_lit, b.carry_lit]
                  for b in result.fa_blocks],
}, sort_keys=True))
"""


def _phase_subprocess(script: str, root: str, width: int,
                      hash_seed: int, expect_exit=0) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", script, root, str(width)],
        env=env, capture_output=True, text=True, timeout=1800)
    assert proc.returncode == expect_exit, proc.stderr
    return proc.stdout.strip()


class TestKillAndResume:
    """The acceptance property: kill mid-R2, resume, finish identically."""

    def _run(self, tmp_path, width: int):
        killed_root = str(tmp_path / "killed-store")
        _phase_subprocess(_KILL_SCRIPT, killed_root, width,
                          hash_seed=31337, expect_exit=9)
        killed = ArtifactStore(killed_root)
        kinds = sorted(entry.kind for entry in killed.entries())
        assert "checkpoint" in kinds, "the kill left no checkpoint behind"

        resumed = json.loads(_phase_subprocess(
            _FINISH_SCRIPT, killed_root, width, hash_seed=98765))
        reference = json.loads(_phase_subprocess(
            _FINISH_SCRIPT, str(tmp_path / "fresh-store"), width,
            hash_seed=0))

        assert resumed["resumed_phase"] == "saturate-r2"
        assert resumed["resumed_at"] is not None
        assert reference["resumed_phase"] is None
        assert resumed["summary"] == reference["summary"]
        assert resumed["fa_blocks"] == reference["fa_blocks"]

    def test_killed_mid_r2_resumes_bit_identical(self, tmp_path):
        self._run(tmp_path, width=3)

    @pytest.mark.skipif(not NIGHTLY,
                        reason="width-16 kill/resume runs on nightly "
                               "(REPRO_NIGHTLY=1)")
    def test_killed_mid_r2_resumes_bit_identical_width16(self, tmp_path):
        self._run(tmp_path, width=16)
