"""repro.store: snapshot codec, artifact store, resumable saturation.

The headline property (ISSUE acceptance): checkpoint a saturation run at
iteration *k*, serialize to disk, restore, continue — the final e-graph
and its extraction are bit-identical to an uninterrupted run, for both
the back-off scheduler and the deprecated flat alias, and across
``PYTHONHASHSEED`` values (subprocess cases).  Everything else pins the
codec (round trips, versioning, atomicity guarantees), the
content-addressed store semantics (put/get, index, verify, GC) and the
pipeline/batch cache integration.
"""

import gzip
import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import BatchJob, BatchPipeline, BoolEOptions, BoolEPipeline, run_boole
from repro.core.construct import aig_to_egraph
from repro.core.extraction import BoolEExtractor
from repro.core.fa_structure import insert_fa_structures
from repro.core.rules_basic import basic_rules
from repro.core.rules_xor_maj import identification_rules
from repro.egraph import (
    BackoffScheduler,
    EGraph,
    ENode,
    Op,
    Runner,
    RunnerLimits,
)
from repro.generators import csa_multiplier, ripple_carry_adder
from repro.opt import post_mapping_flow
from repro.store import (
    ArtifactStore,
    SnapshotError,
    SnapshotVersionError,
    egraph_from_wire,
    egraph_to_wire,
    fingerprint_aig,
    fingerprint_options,
    fingerprint_ruleset,
    load_checkpoint,
    load_egraph,
    read_snapshot,
    save_checkpoint,
    save_egraph,
    scheduler_from_wire,
    scheduler_to_wire,
    write_snapshot,
)

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _mapped_csa3():
    return post_mapping_flow(csa_multiplier(3).aig)


def _saturated_egraph():
    """A small but non-trivial e-graph: saturated width-2 CSA multiplier."""
    construction = aig_to_egraph(post_mapping_flow(csa_multiplier(2).aig))
    Runner(RunnerLimits(max_iterations=4)).run(construction.egraph,
                                               basic_rules())
    return construction.egraph


def _wire_bytes(egraph: EGraph) -> str:
    return json.dumps(egraph_to_wire(egraph), sort_keys=True)


def _extraction_signature(egraph: EGraph) -> str:
    """Digest of the complete extraction choice set (order-independent)."""
    insert_fa_structures(egraph)
    extraction = BoolEExtractor().extract(egraph)
    entries = sorted((class_id, entry.size, len(entry.fa_classes),
                      str(entry.node))
                     for class_id, entry in extraction.entries.items())
    blob = json.dumps([egraph.num_classes, egraph.num_canonical_nodes(),
                       entries])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TestEGraphRoundTrip:
    def test_wire_round_trip_is_byte_identical(self):
        egraph = _saturated_egraph()
        first = _wire_bytes(egraph)
        restored = egraph_from_wire(json.loads(first))
        assert _wire_bytes(restored) == first

    def test_round_trip_preserves_queries(self):
        egraph = _saturated_egraph()
        restored = egraph_from_wire(egraph_to_wire(egraph))
        assert restored.class_ids() == egraph.class_ids()
        assert restored.num_canonical_nodes() == egraph.num_canonical_nodes()
        assert restored.peek_dirty() == egraph.peek_dirty()
        for class_id in egraph.class_ids():
            assert restored.enodes(class_id) == egraph.enodes(class_id)
            assert restored.seq(class_id) == egraph.seq(class_id)
            for node in egraph.enodes(class_id):
                assert restored.lookup(node) == egraph.lookup(node)

    def test_op_index_rebuilt_on_load(self):
        egraph = _saturated_egraph()
        restored = egraph_from_wire(egraph_to_wire(egraph))
        for op in (Op.AND, Op.NOT, Op.VAR):
            wanted = {class_id for class_id in egraph.class_ids()
                      if any(node.op == op
                             for node in egraph.enodes(class_id))}
            assert wanted <= restored.candidate_classes(op)

    def test_restored_graph_saturates_identically(self):
        """Mutating a restored snapshot behaves exactly like the original:
        continuing saturation with a second ruleset converges to the same
        e-graph."""
        original = _saturated_egraph()
        restored = egraph_from_wire(egraph_to_wire(original))
        rules = identification_rules(include_variants=True)
        Runner(RunnerLimits(max_iterations=4)).run(original, rules)
        Runner(RunnerLimits(max_iterations=4)).run(restored, rules)
        assert _wire_bytes(restored) == _wire_bytes(original)

    def test_unsupported_payload_rejected(self):
        egraph = EGraph()
        egraph.add(ENode("weird", (), payload=(1, 2)))
        with pytest.raises(SnapshotError, match="payload"):
            egraph_to_wire(egraph)


class TestSnapshotFiles:
    def test_save_load_egraph(self, tmp_path):
        egraph = _saturated_egraph()
        path = save_egraph(tmp_path / "graph.json.gz", egraph,
                           meta={"width": 2})
        assert _wire_bytes(load_egraph(path)) == _wire_bytes(egraph)
        document = read_snapshot(path)
        assert document["meta"] == {"width": 2}

    def test_identical_state_writes_identical_bytes(self, tmp_path):
        egraph = _saturated_egraph()
        first = save_egraph(tmp_path / "a.json.gz", egraph)
        second = save_egraph(tmp_path / "b.json.gz", egraph)
        assert first.read_bytes() == second.read_bytes()

    def test_version_mismatch_raises(self, tmp_path):
        path = save_egraph(tmp_path / "graph.json.gz", EGraph())
        document = json.loads(gzip.decompress(path.read_bytes()))
        document["codec_version"] = 999
        path.write_bytes(gzip.compress(
            json.dumps(document).encode("utf-8")))
        with pytest.raises(SnapshotVersionError):
            load_egraph(path)

    def test_kind_mismatch_raises(self, tmp_path):
        path = write_snapshot(tmp_path / "x.json.gz", "something-else", {})
        with pytest.raises(SnapshotError, match="kind|expected"):
            load_egraph(path)

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "garbage.json.gz"
        path.write_bytes(b"definitely not gzip json")
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_no_temp_files_left_behind(self, tmp_path):
        save_egraph(tmp_path / "graph.json.gz", EGraph())
        leftovers = [p for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []


class TestSchedulerRoundTrip:
    def test_bans_budgets_and_debt_survive(self):
        scheduler = BackoffScheduler(match_limit=4, ban_length=2)
        scheduler.begin_iteration()
        scheduler.ban("boom", searched=[3, 1, 2])
        scheduler.defer("boom", [7])
        scheduler.ban("flood", searched=None)
        restored = scheduler_from_wire(scheduler_to_wire(scheduler))
        assert restored.iteration == scheduler.iteration
        for name in ("boom", "flood", "never-banned"):
            assert restored.is_banned(name) == scheduler.is_banned(name)
            assert restored.budget(name) == scheduler.budget(name)
            assert restored.has_debt(name) == scheduler.has_debt(name)
        assert restored.frontier_for("boom", {9}) == {1, 2, 3, 7, 9}
        assert restored.frontier_for("flood", {9}) is None
        assert restored.export_state() == scheduler.export_state()

    def test_none_scheduler_passes_through(self):
        assert scheduler_to_wire(None) is None
        assert scheduler_from_wire(None) is None


def _run_limits(flavor: str) -> RunnerLimits:
    if flavor == "backoff":
        return RunnerLimits(max_iterations=12, match_limit=60, ban_length=1)
    with pytest.warns(DeprecationWarning):
        return RunnerLimits(max_iterations=12, match_limit=None,
                            max_matches_per_rule=60)


class TestCheckpointResume:
    @pytest.mark.parametrize("flavor", ["backoff", "flat-alias"])
    def test_resume_bit_identical_to_uninterrupted(self, flavor, tmp_path):
        """Checkpoint at iteration k -> save -> load -> continue == one
        uninterrupted run, down to the serialized e-graph bytes and the
        extraction choices."""
        aig = _mapped_csa3()
        rules = basic_rules() + identification_rules(True)

        reference = aig_to_egraph(aig)
        ref_report = Runner(_run_limits(flavor)).run(reference.egraph, rules)

        checkpointed = aig_to_egraph(aig)
        paths = []

        def on_checkpoint(checkpoint):
            path = tmp_path / f"cp{checkpoint.iteration}.json.gz"
            save_checkpoint(path, checkpointed.egraph, checkpoint)
            paths.append(path)

        Runner(_run_limits(flavor)).run(checkpointed.egraph, rules,
                                        checkpoint_every=3,
                                        on_checkpoint=on_checkpoint)
        assert paths, "run finished before the first checkpoint; " \
                      "tighten the budget"

        for path in paths:
            restored, checkpoint = load_checkpoint(path)
            report = Runner.from_checkpoint(checkpoint).run(
                restored, rules, resume_from=checkpoint)
            assert report.stop_reason == ref_report.stop_reason
            assert report.num_iterations == ref_report.num_iterations
            assert _wire_bytes(restored) == _wire_bytes(reference.egraph)
        assert (_extraction_signature(restored)
                == _extraction_signature(reference.egraph))

    def test_checkpoint_cadence_and_shape(self, tmp_path):
        egraph = aig_to_egraph(_mapped_csa3()).egraph
        rules = basic_rules()
        seen = []
        # Checkpoints alias live state, so record the interesting facts at
        # callback time (the report keeps growing after the callback).
        Runner(RunnerLimits(max_iterations=6, match_limit=60,
                            ban_length=1)).run(
            egraph, rules, checkpoint_every=2,
            on_checkpoint=lambda cp: seen.append(
                (cp.iteration, len(cp.report.iterations))))
        assert seen, "no checkpoints taken"
        for iteration, completed in seen:
            assert iteration % 2 == 0
            assert iteration == completed
            assert iteration < 6  # never after a stop decision

    def test_resume_without_callback_is_plain_run(self):
        """checkpoint_every without on_checkpoint is inert."""
        aig = _mapped_csa3()
        plain = aig_to_egraph(aig)
        Runner(RunnerLimits(max_iterations=4)).run(plain.egraph,
                                                   basic_rules())
        silent = aig_to_egraph(aig)
        Runner(RunnerLimits(max_iterations=4)).run(
            silent.egraph, basic_rules(), checkpoint_every=1)
        assert _wire_bytes(silent.egraph) == _wire_bytes(plain.egraph)


_SUBPROCESS_SCRIPT = """
import sys, json, hashlib, warnings
from repro.core.construct import aig_to_egraph
from repro.core.extraction import BoolEExtractor
from repro.core.fa_structure import insert_fa_structures
from repro.core.rules_basic import basic_rules
from repro.core.rules_xor_maj import identification_rules
from repro.egraph import Runner, RunnerLimits
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow
from repro.store import save_checkpoint, load_checkpoint

mode, path, flavor = sys.argv[1], sys.argv[2], sys.argv[3]
aig = post_mapping_flow(csa_multiplier(3).aig)
rules = basic_rules() + identification_rules(True)
with warnings.catch_warnings():
    warnings.simplefilter("ignore", DeprecationWarning)
    if flavor == "backoff":
        limits = RunnerLimits(max_iterations=12, match_limit=60, ban_length=1)
    else:
        limits = RunnerLimits(max_iterations=12, match_limit=None,
                              max_matches_per_rule=60)

def signature(egraph):
    insert_fa_structures(egraph)
    extraction = BoolEExtractor().extract(egraph)
    entries = sorted((cid, e.size, len(e.fa_classes), str(e.node))
                     for cid, e in extraction.entries.items())
    blob = json.dumps([egraph.num_classes, egraph.num_canonical_nodes(),
                       entries])
    return hashlib.sha256(blob.encode()).hexdigest()

if mode == "full":
    con = aig_to_egraph(aig)
    Runner(limits).run(con.egraph, rules)
    print(signature(con.egraph))
elif mode == "checkpoint":
    con = aig_to_egraph(aig)
    saved = []
    def on_checkpoint(cp):
        if not saved:
            save_checkpoint(path, con.egraph, cp)
            saved.append(cp.iteration)
    Runner(limits).run(con.egraph, rules, checkpoint_every=3,
                       on_checkpoint=on_checkpoint)
    print(saved[0] if saved else -1)
else:
    egraph, cp = load_checkpoint(path)
    Runner.from_checkpoint(cp).run(egraph, rules, resume_from=cp)
    print(signature(egraph))
"""


def _subprocess(mode: str, path: str, flavor: str, hash_seed: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT, mode, path, flavor],
        env=env, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestCheckpointResumeAcrossHashSeeds:
    @pytest.mark.parametrize("flavor", ["backoff", "flat-alias"])
    def test_three_processes_three_seeds_one_result(self, flavor, tmp_path):
        """Uninterrupted (seed A), checkpoint writer (seed B) and resumer
        (seed C) all land on the same saturated e-graph + extraction."""
        path = str(tmp_path / "checkpoint.json.gz")
        reference = _subprocess("full", path, flavor, hash_seed=0)
        first_checkpoint = _subprocess("checkpoint", path, flavor,
                                       hash_seed=31337)
        assert int(first_checkpoint) > 0, "no checkpoint was written"
        resumed = _subprocess("resume", path, flavor, hash_seed=98765)
        assert resumed == reference


class TestArtifactStore:
    def test_put_get_contains(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = "ab" * 20
        assert not store.contains(key)
        assert store.get(key) is None
        store.put(key, {"hello": [1, 2]}, kind="egraph",
                  meta={"width": 4})
        assert store.contains(key)
        assert store.get(key) == {"hello": [1, 2]}
        header = store.describe(key)
        assert header["kind"] == "egraph"
        assert header["meta"] == {"width": 4}

    def test_invalid_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.put("../escape", {}, kind="egraph")
        with pytest.raises(ValueError):
            store.contains("UPPERCASE-NOT-HEX")

    def test_index_lists_newest_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("aa" * 20, {}, kind="one")
        store.put("bb" * 20, {}, kind="two")
        entries = store.entries()
        assert [entry.kind for entry in entries] == ["two", "one"]
        assert store.total_bytes() > 0

    def test_verify_adopts_orphans_and_drops_ghosts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        kept, lost = "aa" * 20, "bb" * 20
        store.put(kept, {}, kind="egraph")
        store.put(lost, {}, kind="egraph")
        (tmp_path / "index.json").unlink()          # orphan both objects
        store.path_for(lost).unlink()               # ...and lose one
        report = store.verify()
        assert report["adopted"] == [kept]
        assert report["dropped"] == []
        assert [entry.key for entry in store.entries()] == [kept]

    def test_gc_unreadable_and_age(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fresh, stale = "aa" * 20, "bb" * 20
        store.put(fresh, {}, kind="egraph")
        store.put(stale, {}, kind="egraph")
        corrupt = store.path_for("cc" * 20)
        corrupt.parent.mkdir(parents=True, exist_ok=True)
        corrupt.write_bytes(b"junk")
        old = store.path_for(stale)
        os.utime(old, (1.0, 1.0))
        would = store.gc(max_age_seconds=3600, dry_run=True)
        assert set(would) == {"cc" * 20, stale}
        assert store.contains(stale)                # dry run removed nothing
        removed = store.gc(max_age_seconds=3600)
        assert set(removed) == {"cc" * 20, stale}
        assert store.contains(fresh)
        assert not store.contains(stale)
        assert [entry.key for entry in store.entries()] == [fresh]

    def test_concurrent_instances_lose_no_index_entries(self, tmp_path):
        # Two store instances over one root (a server and a worker of the
        # service layer, or two processes on a shared mount) interleave
        # index read-modify-writes; without cross-instance locking one
        # writer's entry vanishes and e.g. a queued job becomes invisible
        # to the fleet.  Every key written by either side must be indexed.
        import threading

        first = ArtifactStore(tmp_path)
        second = ArtifactStore(tmp_path)
        keys = [f"{i:08x}" for i in range(120)]

        def writer(store, shard):
            for key in shard:
                store.put(key, {"key": key}, kind="egraph")

        threads = [
            threading.Thread(target=writer, args=(first, keys[::2])),
            threading.Thread(target=writer, args=(second, keys[1::2])),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(first.kinds()) == set(keys)

    def test_gc_size_budget_evicts_lru(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first, second = "aa" * 20, "bb" * 20
        store.put(first, {"blob": "x" * 512}, kind="egraph")
        store.put(second, {"blob": "y" * 512}, kind="egraph")
        os.utime(store.path_for(first), (1.0, 1.0))   # least recently used
        removed = store.gc(max_total_bytes=store.path_for(second)
                           .stat().st_size)
        assert removed == [first]
        assert store.contains(second)


class TestPipelineStoreCache:
    OPTIONS = dict(r1_iterations=2, r2_iterations=2)

    def test_miss_then_hit_bit_identical(self, tmp_path):
        store = ArtifactStore(tmp_path)
        aig = _mapped_csa3()
        pipeline = BoolEPipeline(BoolEOptions(**self.OPTIONS), store=store)
        cold = pipeline.run(aig)
        warm = pipeline.run(aig)
        assert not cold.cache_hit and warm.cache_hit
        assert "cache_store" in cold.timings
        assert "cache_load" in warm.timings and "r1" not in warm.timings
        assert warm.summary() == {**cold.summary(),
                                  "runtime": warm.summary()["runtime"]}
        assert warm.extracted_aig.gates == cold.extracted_aig.gates
        assert warm.fa_blocks == cold.fa_blocks
        assert warm.num_npn_fas == cold.num_npn_fas
        assert warm.r1_report.stop_reason == cold.r1_report.stop_reason
        assert (warm.r2_report.scheduler_stats
                == cold.r2_report.scheduler_stats)
        # The cold run persists both cache levels: the saturated snapshot
        # and the extraction artifact.
        assert (sorted(entry.kind for entry in store.entries())
                == ["extraction", "saturated-pipeline"])

    def test_display_name_does_not_split_cache(self, tmp_path):
        aig = _mapped_csa3()
        renamed = aig.copy()
        renamed.name = "same-circuit-other-name"
        store = ArtifactStore(tmp_path)
        options = BoolEOptions(**self.OPTIONS)
        first = BoolEPipeline(options, store=store).run(aig)
        second = BoolEPipeline(options, store=store).run(renamed)
        assert not first.cache_hit and second.cache_hit

    def test_option_change_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        aig = _mapped_csa3()
        BoolEPipeline(BoolEOptions(**self.OPTIONS), store=store).run(aig)
        other = BoolEPipeline(BoolEOptions(r1_iterations=3, r2_iterations=2),
                              store=store)
        assert not other.run(aig).cache_hit
        # Two (saturated, extraction) artifact pairs: one per option set.
        assert len(store.entries()) == 4

    def test_corrupt_artifact_degrades_to_miss_and_heals(self, tmp_path):
        """A damaged object file at a live key must not poison the circuit:
        the run recomputes (miss), overwrites the artifact, and the next
        run hits again."""
        store = ArtifactStore(tmp_path)
        aig = _mapped_csa3()
        pipeline = BoolEPipeline(BoolEOptions(**self.OPTIONS), store=store)
        cold = pipeline.run(aig)
        path = store.path_for(pipeline.cache_key(aig))
        path.write_bytes(b"corrupted mid-copy")
        healed = pipeline.run(aig)
        assert not healed.cache_hit
        assert healed.fa_blocks == cold.fa_blocks
        warm = pipeline.run(aig)
        assert warm.cache_hit

    def test_run_boole_accepts_store_path(self, tmp_path):
        aig = _mapped_csa3()
        options = BoolEOptions(**self.OPTIONS)
        run_boole(aig, options, store=str(tmp_path))
        warm = run_boole(aig, options, store=str(tmp_path))
        assert warm.cache_hit


class TestBatchStoreIntegration:
    def test_second_sweep_served_from_cache(self, tmp_path):
        jobs = [BatchJob(f"rca{width}", ripple_carry_adder(width)[0])
                for width in (3, 4)]
        options = BoolEOptions(r1_iterations=2, r2_iterations=1)
        cold = BatchPipeline(options, max_workers=2,
                             store=tmp_path / "store").run(jobs)
        assert cold.num_failed == 0 and cold.num_cached == 0
        warm = BatchPipeline(options, max_workers=2,
                             store=tmp_path / "store").run(jobs)
        assert warm.num_failed == 0
        assert warm.num_cached == len(jobs)
        for cold_item, warm_item in zip(cold.items, warm.items):
            assert warm_item.cached
            assert warm_item.summary == {
                **cold_item.summary, "runtime": warm_item.summary["runtime"]}

    def test_store_disabled_keeps_legacy_behavior(self):
        jobs = [ripple_carry_adder(3)[0]]
        report = BatchPipeline(BoolEOptions(r1_iterations=1,
                                            r2_iterations=1,
                                            extract=False,
                                            count_npn=False)).run(jobs)
        assert report.num_cached == 0


class TestFingerprints:
    def test_aig_fingerprint_ignores_display_name_only(self):
        aig = csa_multiplier(2).aig
        renamed = aig.copy()
        renamed.name = "other"
        assert fingerprint_aig(renamed) == fingerprint_aig(aig)
        grown = aig.copy()
        lit = grown.add_input("extra")
        grown.add_output(lit, "extra_out")
        assert fingerprint_aig(grown) != fingerprint_aig(aig)

    def test_options_fingerprint_ignores_extract_only(self):
        base = BoolEOptions()
        assert (fingerprint_options(BoolEOptions(extract=False))
                == fingerprint_options(base))
        assert (fingerprint_options(BoolEOptions(r1_iterations=9))
                != fingerprint_options(base))
        assert (fingerprint_options(BoolEOptions(match_limit=None))
                != fingerprint_options(base))

    def test_ruleset_fingerprint_sensitivity(self):
        light = basic_rules(lightweight=True)
        full = basic_rules(lightweight=False)
        assert fingerprint_ruleset(light) != fingerprint_ruleset(full)
        assert (fingerprint_ruleset(light, revision="v2")
                != fingerprint_ruleset(light))
        assert fingerprint_ruleset(light) == fingerprint_ruleset(
            basic_rules(lightweight=True))


class TestCommandLine:
    def _cli(self, root, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.run(
            [sys.executable, "-m", "repro.store", "--root", str(root), *args],
            env=env, capture_output=True, text=True, timeout=300)

    def test_list_inspect_verify_gc(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "cd" * 20
        store.put(key, {"x": 1}, kind="egraph", meta={"width": 3})
        listed = self._cli(tmp_path, "list")
        assert listed.returncode == 0, listed.stderr
        assert key[:16] in listed.stdout

        inspected = self._cli(tmp_path, "inspect", key)
        assert inspected.returncode == 0
        assert json.loads(inspected.stdout)["meta"] == {"width": 3}

        verified = self._cli(tmp_path, "verify")
        assert verified.returncode == 0

        collected = self._cli(tmp_path, "gc", "--max-age-days", "0",
                              "--dry-run")
        assert collected.returncode == 0
        assert key in collected.stdout

    def test_missing_key_inspect_fails(self, tmp_path):
        result = self._cli(tmp_path, "inspect", "ef" * 20)
        assert result.returncode == 1


class TestPinsAndCostAwareGC:
    def test_pin_unpin_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ab" * 20
        with pytest.raises(KeyError):
            store.pin(key)            # pinning nothing is an error
        store.put(key, {}, kind="egraph")
        assert not store.is_pinned(key)
        store.pin(key)
        assert store.is_pinned(key)
        assert store.describe(key)["pinned"]
        assert [entry.pinned for entry in store.entries()] == [True]
        assert store.unpin(key)
        assert not store.is_pinned(key)
        assert not store.unpin(key)   # idempotent

    def test_pinned_artifacts_survive_age_and_size_gc(self, tmp_path):
        store = ArtifactStore(tmp_path)
        pinned, loose = "aa" * 20, "bb" * 20
        store.put(pinned, {"blob": "x" * 512}, kind="egraph")
        store.put(loose, {"blob": "y" * 512}, kind="egraph")
        store.pin(pinned)
        os.utime(store.path_for(pinned), (1.0, 1.0))
        os.utime(store.path_for(loose), (1.0, 1.0))
        removed = store.gc(max_age_seconds=3600, max_total_bytes=1)
        assert removed == [loose]
        assert store.contains(pinned)

    def test_gc_removes_unreadable_even_when_pinned(self, tmp_path):
        """A pinned object from an old codec can never be read again;
        keeping it would wedge the store after a version bump."""
        store = ArtifactStore(tmp_path)
        key = "cc" * 20
        store.put(key, {}, kind="egraph")
        store.pin(key)
        store.path_for(key).write_bytes(b"junk from an old codec")
        assert store.gc() == [key]
        assert not store.contains(key)
        assert not store.is_pinned(key)   # the sidecar went with it

    def test_size_gc_evicts_cheapest_rebuild_first(self, tmp_path):
        """--max-bytes orders by the saturation_seconds recorded in meta:
        the artifact that took 90s to saturate outlives the one that took
        2s, even when the expensive one is older and less recently used."""
        store = ArtifactStore(tmp_path)
        cheap, dear = "aa" * 20, "bb" * 20
        store.put(dear, {"blob": "x" * 512}, kind="saturated-pipeline",
                  meta={"saturation_seconds": 90.0})
        store.put(cheap, {"blob": "y" * 512}, kind="saturated-pipeline",
                  meta={"saturation_seconds": 2.0})
        # Make the expensive artifact the LRU one: pure-LRU would evict it.
        os.utime(store.path_for(dear), (1.0, 1.0))
        budget = store.path_for(dear).stat().st_size
        removed = store.gc(max_total_bytes=budget)
        assert removed == [cheap]
        assert store.contains(dear)

    def test_delete_removes_object_index_and_pin(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "dd" * 20
        store.put(key, {}, kind="egraph")
        store.pin(key)
        assert store.delete(key)
        assert not store.contains(key)
        assert not store.is_pinned(key)
        assert store.entries() == []
        assert not store.delete(key)   # second delete is a no-op

    def test_saturated_artifacts_record_rebuild_cost(self, tmp_path):
        """The pipeline stamps saturation_seconds into both artifact
        levels so the cost-aware GC has something to order by."""
        store = ArtifactStore(tmp_path)
        pipeline = BoolEPipeline(BoolEOptions(r1_iterations=2,
                                              r2_iterations=2), store=store)
        pipeline.run(_mapped_csa3())
        for entry in store.entries():
            assert "saturation_seconds" in entry.meta
            assert entry.meta["saturation_seconds"] >= 0.0


class TestPinCommandLine:
    def _cli(self, root, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.run(
            [sys.executable, "-m", "repro.store", "--root", str(root), *args],
            env=env, capture_output=True, text=True, timeout=300)

    def test_pin_unpin_and_gc_respect(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ee" * 20
        store.put(key, {}, kind="egraph")
        pinned = self._cli(tmp_path, "pin", key)
        assert pinned.returncode == 0, pinned.stderr
        assert store.is_pinned(key)
        listed = self._cli(tmp_path, "list")
        assert "1 pinned" in listed.stdout

        collected = self._cli(tmp_path, "gc", "--max-age-days", "0")
        assert collected.returncode == 0
        assert store.contains(key)       # pin held against age eviction

        unpinned = self._cli(tmp_path, "unpin", key)
        assert unpinned.returncode == 0
        collected = self._cli(tmp_path, "gc", "--max-age-days", "0")
        assert not store.contains(key)

    def test_pin_missing_key_fails(self, tmp_path):
        result = self._cli(tmp_path, "pin", "ff" * 20)
        assert result.returncode == 1


class TestPlanAndKeyCommandLine:
    """CLI surface of the planner: ``plan`` (warm/cold frontier, executes
    nothing) and ``key --kind`` parity with the artifacts execution
    actually stores."""

    _CLI_OPTIONS = dict(r1_iterations=2, r2_iterations=2,
                        match_limit=100_000, ban_length=2)
    _CLI_ARGS = ("--arch", "csa", "--width", "2",
                 "--r1-iterations", "2", "--r2-iterations", "2")

    def _cli(self, root, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.run(
            [sys.executable, "-m", "repro.store", "--root", str(root), *args],
            env=env, capture_output=True, text=True, timeout=300)

    def test_plan_cold_then_warm(self, tmp_path):
        from repro.core import BatchJob, BatchPipeline

        plan_args = ("plan", "--arch", "csa", "--widths", "2",
                     "--refine-rounds", "0,1",
                     "--r1-iterations", "2", "--r2-iterations", "2")
        cold = self._cli(tmp_path, *plan_args, "--json")
        assert cold.returncode == 0, cold.stderr
        payload = json.loads(cold.stdout)
        assert payload["summary"]["jobs"] == 2
        assert payload["summary"]["warm"] == 0
        # The two refine_rounds values share the width's saturated prefix.
        assert payload["summary"]["saturations"] == 1
        assert payload["summary"]["prefix_shared"] == 1
        assert payload["jobs"][1]["schedule"] == "after:csa2-rr0"

        # Execute the same sweep in-process, then the frontier is warm.
        mapped = post_mapping_flow(csa_multiplier(2).aig)
        jobs = [BatchJob(f"rr{refine}", mapped,
                         options=BoolEOptions(refine_rounds=refine,
                                              **self._CLI_OPTIONS))
                for refine in (0, 1)]
        report = BatchPipeline(executor="serial", store=str(tmp_path)).run(jobs)
        assert report.num_failed == 0

        warm = self._cli(tmp_path, *plan_args)
        assert warm.returncode == 0, warm.stderr
        assert "WARM_BOUNDARY" in warm.stdout
        assert "COLD" not in warm.stdout
        assert "warm: 2" in warm.stdout
        assert "saturations: 0" in warm.stdout
        assert "planned in" in warm.stdout

    def test_plan_rejects_bad_widths(self, tmp_path):
        result = self._cli(tmp_path, "plan", "--widths", "4,banana")
        assert result.returncode == 2
        assert "comma-separated" in result.stderr

    def test_key_kinds_match_stored_artifacts(self, tmp_path):
        """``key --kind`` prints, for every artifact kind, exactly the key
        the executing pipeline stores (or would store) the artifact under."""
        from repro.store import phase_checkpoint_key

        saturated = self._cli(tmp_path, "key", *self._CLI_ARGS)
        extraction = self._cli(tmp_path, "key", *self._CLI_ARGS,
                               "--kind", "extraction")
        checkpoint = self._cli(tmp_path, "key", *self._CLI_ARGS,
                               "--kind", "checkpoint", "--phase",
                               "saturate-r1")
        for result in (saturated, extraction, checkpoint):
            assert result.returncode == 0, result.stderr

        mapped = post_mapping_flow(csa_multiplier(2).aig)
        pipeline = BoolEPipeline(BoolEOptions(**self._CLI_OPTIONS),
                                 store=tmp_path)
        base_key = pipeline.cache_key(mapped)
        assert saturated.stdout.strip() == base_key
        assert (checkpoint.stdout.strip()
                == phase_checkpoint_key(base_key, "saturate-r1"))

        pipeline.run(mapped)
        store = ArtifactStore(tmp_path)
        assert store.contains(saturated.stdout.strip())
        assert store.contains(extraction.stdout.strip())
        roots = aig_to_egraph(mapped).output_classes
        assert (extraction.stdout.strip()
                == pipeline.extraction_key(base_key, roots))

    def test_key_unknown_phase_fails(self, tmp_path):
        result = self._cli(tmp_path, "key", *self._CLI_ARGS,
                           "--kind", "checkpoint", "--phase", "nope")
        assert result.returncode == 1
        assert "unknown phase" in result.stderr
