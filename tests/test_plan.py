"""Hash-propagated planner: plan-vs-execution agreement, batch folding.

The planner (``BoolEPipeline.plan`` / ``BatchPipeline.plan``) must mirror
the executor's restore/resume/run decision procedure exactly while doing
none of the work: no phase body runs, no e-graph is built (construction
ids come from the dry construction) and the store is only probed
read-only.  These tests pin that contract per store state (empty /
snapshot-only / two-level / extraction-only / checkpoint-only /
stale-checkpoint), pin the batch layer's dedup and prefix-sharing
semantics (a shared saturated prefix is saturated exactly once per
sweep), and hold the whole thing as a randomized subprocess property
across ``PYTHONHASHSEED`` values.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import (
    PLAN_COLD,
    PLAN_SKIPPED,
    PLAN_WARM_BOUNDARY,
    PLAN_WARM_CHECKPOINT,
    BatchJob,
    BatchPipeline,
    BoolEOptions,
    BoolEPipeline,
    aig_to_egraph,
    planned_construction,
)
from repro.generators import (
    booth_multiplier,
    csa_multiplier,
    ripple_carry_adder,
)
from repro.opt import post_mapping_flow
from repro.store import KIND_CHECKPOINT, ArtifactStore, phase_checkpoint_key

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

OPTIONS = dict(r1_iterations=2, r2_iterations=2, count_npn=False)


def _mapped(width=3):
    return post_mapping_flow(csa_multiplier(width).aig)


def _store_snapshot(root):
    """Byte- and mtime-exact fingerprint of every file under ``root``.

    ``ArtifactStore.get`` bumps object mtimes (LRU bookkeeping), so a
    planning pass that accidentally *got* instead of *probed* shows up
    here even though the bytes are unchanged.
    """
    snapshot = {}
    for path in sorted(Path(root).rglob("*")):
        if path.is_file():
            stat = path.stat()
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            snapshot[str(path)] = (stat.st_mtime_ns, digest)
    return snapshot


def _capture_checkpoint(options, aig, store):
    """Run ``aig`` with checkpointing, returning the first mid-R2
    checkpoint ``(key, payload, meta)`` the run wrote (the completed run
    deletes it from the store again)."""
    checkpoint_key = phase_checkpoint_key(
        BoolEPipeline(options).cache_key(aig), "saturate-r2")
    captured = {}
    original_put = ArtifactStore.put

    def capturing_put(self, key, payload, *, kind, meta=None):
        path = original_put(self, key, payload, kind=kind, meta=meta)
        if kind == KIND_CHECKPOINT and key not in captured:
            captured[key] = (payload, meta)
        return path

    ArtifactStore.put = capturing_put
    try:
        BoolEPipeline(options, store=store).run(aig)
    finally:
        ArtifactStore.put = original_put
    assert checkpoint_key in captured, "no mid-R2 checkpoint was taken"
    payload, meta = captured[checkpoint_key]
    return checkpoint_key, payload, meta


class TestPlannedConstruction:
    @pytest.mark.parametrize("make", [
        lambda: ripple_carry_adder(3)[0],
        lambda: ripple_carry_adder(6)[0],
        lambda: csa_multiplier(2).aig,
        lambda: post_mapping_flow(csa_multiplier(3).aig),
        lambda: post_mapping_flow(booth_multiplier(2).aig),
    ])
    def test_matches_real_construction(self, make):
        """The dry construction predicts the real construction's output
        class ids (and class count) exactly — construction performs no
        unions, so hashcons + sequential ids is the whole story."""
        aig = make()
        real = aig_to_egraph(aig)
        planned = planned_construction(aig)
        assert planned.output_classes == real.output_classes
        assert planned.num_classes == real.egraph.num_classes


class TestPipelinePlan:
    def test_without_store_all_cold_but_keys_computed(self):
        aig = _mapped()
        pipeline = BoolEPipeline(BoolEOptions(**OPTIONS))
        plan = pipeline.plan(aig)
        assert [p.classification for p in plan.phases] == [PLAN_COLD] * 6
        assert plan.base_key == pipeline.cache_key(aig)
        assert plan.extraction_key == pipeline.extraction_key(
            plan.base_key, aig_to_egraph(aig).output_classes)
        assert plan.final_key == plan.extraction_key
        assert not plan.predicts_cache_hit
        assert plan.planned_writes == []  # nowhere to write

    def test_empty_store_then_warm_cycle(self, tmp_path):
        aig = _mapped()
        pipeline = BoolEPipeline(BoolEOptions(**OPTIONS), store=tmp_path)
        cold = pipeline.plan(aig)
        assert cold.cold_phases == ["construct", "saturate-r1",
                                    "saturate-r2", "insert-fa", "extract",
                                    "reconstruct"]
        assert cold.planned_writes == [cold.base_key, cold.extraction_key]
        result = pipeline.run(aig)
        assert not result.cache_hit

        warm = pipeline.plan(aig)
        assert warm.is_fully_warm
        assert warm.predicts_cache_hit
        assert warm.predicts_extraction_cache_hit
        assert warm.restore_phase == "reconstruct"
        assert warm.phase("insert-fa").covered_by == "insert-fa"
        assert warm.phase("extract").covered_by == "reconstruct"
        rerun = pipeline.run(aig)
        assert rerun.cache_hit and rerun.extraction_cache_hit

    def test_snapshot_only_predicts_extraction_cold(self, tmp_path):
        aig = _mapped()
        pipeline = BoolEPipeline(BoolEOptions(**OPTIONS), store=tmp_path)
        pipeline.run(aig)
        store = ArtifactStore(tmp_path)
        full = pipeline.plan(aig)
        store.delete(full.extraction_key)

        plan = pipeline.plan(aig)
        assert plan.predicts_cache_hit
        assert not plan.predicts_extraction_cache_hit
        assert plan.restore_phase == "insert-fa"
        assert plan.classification_of("reconstruct") == PLAN_COLD
        assert plan.planned_writes == [plan.extraction_key]
        result = pipeline.run(aig)
        assert result.cache_hit and not result.extraction_cache_hit

    def test_extraction_only_predicts_resaturation(self, tmp_path):
        """Snapshot GC'd but extraction artifact alive: saturation re-runs
        cold, extraction restores — plan must predict the split."""
        aig = _mapped()
        pipeline = BoolEPipeline(BoolEOptions(**OPTIONS), store=tmp_path)
        pipeline.run(aig)
        store = ArtifactStore(tmp_path)
        store.delete(pipeline.plan(aig).base_key)

        plan = pipeline.plan(aig)
        assert not plan.predicts_cache_hit
        assert plan.predicts_extraction_cache_hit
        assert plan.classification_of("insert-fa") == PLAN_COLD
        assert plan.classification_of("reconstruct") == PLAN_WARM_BOUNDARY
        result = pipeline.run(aig)
        assert not result.cache_hit
        assert result.extraction_cache_hit

    def test_checkpoint_only_predicts_resume(self, tmp_path):
        aig = _mapped()
        options = BoolEOptions(checkpoint_every=1, **OPTIONS)
        key, payload, meta = _capture_checkpoint(
            options, aig, ArtifactStore(tmp_path / "scratch"))
        store = ArtifactStore(tmp_path / "killed")
        store.put(key, payload, kind=KIND_CHECKPOINT, meta=meta)

        pipeline = BoolEPipeline(options, store=store)
        plan = pipeline.plan(aig)
        assert plan.resume_phase == "saturate-r2"
        assert plan.classification_of("construct") == PLAN_WARM_CHECKPOINT
        assert plan.phase("construct").covered_by == "saturate-r2"
        assert plan.classification_of("saturate-r2") == PLAN_WARM_CHECKPOINT
        assert plan.classification_of("insert-fa") == PLAN_COLD
        assert not plan.predicts_cache_hit
        assert key in plan.planned_deletes

        result = pipeline.run(aig)
        assert result.resumed_phase == "saturate-r2"
        assert not result.cache_hit
        assert not store.contains(key)  # the planned delete happened

    def test_stale_checkpoint_superseded_by_boundary(self, tmp_path):
        """Boundary artifacts *and* an orphaned checkpoint: execution
        restores the deepest boundary and clears the checkpoint; the plan
        predicts both (no resume!)."""
        aig = _mapped()
        options = BoolEOptions(checkpoint_every=1, **OPTIONS)
        store = ArtifactStore(tmp_path)
        key, payload, meta = _capture_checkpoint(options, aig, store)
        store.put(key, payload, kind=KIND_CHECKPOINT, meta=meta)

        pipeline = BoolEPipeline(options, store=store)
        plan = pipeline.plan(aig)
        assert plan.is_fully_warm
        assert plan.resume_phase is None
        assert plan.restore_phase == "reconstruct"
        assert key in plan.planned_deletes

        result = pipeline.run(aig)
        assert result.cache_hit and result.extraction_cache_hit
        assert result.resumed_phase is None
        assert not store.contains(key)

    def test_extract_disabled_phases_skipped(self, tmp_path):
        aig = _mapped()
        options = BoolEOptions(extract=False, **OPTIONS)
        pipeline = BoolEPipeline(options, store=tmp_path)
        plan = pipeline.plan(aig)
        assert plan.classification_of("extract") == PLAN_SKIPPED
        assert plan.classification_of("reconstruct") == PLAN_SKIPPED
        assert plan.extraction_key is None
        assert plan.final_key == plan.base_key

    def test_plan_constructs_no_egraph(self, tmp_path, monkeypatch):
        """The acceptance property: planning executes no phase and builds
        no e-graph — poison both entry points and plan cold, warm and a
        whole batch."""
        aig = _mapped()
        pipeline = BoolEPipeline(BoolEOptions(**OPTIONS), store=tmp_path)
        pipeline.run(aig)  # warm the store first (real e-graphs allowed)

        def forbidden(*_args, **_kwargs):
            raise AssertionError("planning touched an e-graph")

        monkeypatch.setattr("repro.egraph.egraph.EGraph.__init__", forbidden)
        monkeypatch.setattr("repro.core.construct.EGraph", forbidden)
        monkeypatch.setattr("repro.core.phases.aig_to_egraph", forbidden)

        warm = pipeline.plan(aig)
        assert warm.is_fully_warm
        cold = BoolEPipeline(BoolEOptions(r1_iterations=3, r2_iterations=2,
                                          count_npn=False),
                             store=tmp_path).plan(aig)
        assert not cold.predicts_cache_hit
        batch_plan = BatchPipeline(store=str(tmp_path)).plan(
            [BatchJob("warm", aig, options=BoolEOptions(**OPTIONS)),
             BatchJob("cold", _mapped(2), options=BoolEOptions(**OPTIONS))])
        assert batch_plan.item("warm").inline
        assert not batch_plan.item("cold").inline

    def test_plan_mutates_nothing(self, tmp_path):
        """Planning leaves the store byte- and mtime-identical — it must
        never call ``get`` (mtime bump) or write/delete anything."""
        aig = _mapped()
        options = BoolEOptions(checkpoint_every=1, **OPTIONS)
        store = ArtifactStore(tmp_path)
        key, payload, meta = _capture_checkpoint(options, aig, store)
        store.put(key, payload, kind=KIND_CHECKPOINT, meta=meta)

        before = _store_snapshot(tmp_path)
        pipeline = BoolEPipeline(options, store=store)
        pipeline.plan(aig)
        pipeline.plan(_mapped(2))  # a cold circuit probes and misses
        BatchPipeline(store=str(tmp_path)).plan(
            [BatchJob("a", aig, options=options),
             BatchJob("b", _mapped(2), options=options)])
        assert _store_snapshot(tmp_path) == before


class TestBatchPlanFolding:
    def test_non_semantic_twins_dedup_to_one_execution(self, tmp_path,
                                                       monkeypatch):
        """Two jobs identical up to the non-semantic option fields
        (checkpoint cadence here) collapse onto one final key: exactly one
        executes — even on an empty store — and both items carry the
        shared result."""
        aig = ripple_carry_adder(3)[0]
        twin_a = BoolEOptions(**OPTIONS)
        twin_b = BoolEOptions(checkpoint_every=50, **OPTIONS)
        jobs = [BatchJob("a", aig, options=twin_a),
                BatchJob("b", aig, options=twin_b)]

        constructions = []
        real = aig_to_egraph

        def counting(aig_in):
            constructions.append(aig_in.name)
            return real(aig_in)

        monkeypatch.setattr("repro.core.phases.aig_to_egraph", counting)
        batch = BatchPipeline(executor="serial", store=str(tmp_path))
        plan = batch.plan(jobs)
        assert plan.item("b").duplicate_of == "a"
        assert plan.item("b").schedule == "duplicate:a"
        assert plan.num_deduped == 1

        report = batch.run(jobs)
        assert len(constructions) == 1  # one execution total
        assert report.num_failed == 0
        assert report.num_deduped == 1
        item_a, item_b = report.item("a"), report.item("b")
        assert item_b.deduped_from == "a"
        assert item_b.result is item_a.result  # shared, by contract
        assert item_b.summary == item_a.summary

    def test_dedup_without_store(self):
        """Final keys exist even store-less, so identical jobs dedup."""
        aig = ripple_carry_adder(3)[0]
        jobs = [BatchJob("a", aig, options=BoolEOptions(**OPTIONS)),
                BatchJob("b", aig, options=BoolEOptions(checkpoint_every=9,
                                                        **OPTIONS))]
        report = BatchPipeline(executor="serial").run(jobs)
        assert report.num_failed == 0
        assert report.item("b").deduped_from == "a"

    def test_shared_prefix_saturates_exactly_once(self, tmp_path,
                                                  monkeypatch):
        """The acceptance property: same saturation, three refine_rounds
        values — the prefix is saturated once, the dependents restore it
        and do extraction-only work."""
        aig = _mapped()
        jobs = [BatchJob(f"rr{refine}", aig,
                         options=BoolEOptions(refine_rounds=refine,
                                              **OPTIONS))
                for refine in (0, 1, 2)]

        constructions = []
        real = aig_to_egraph

        def counting(aig_in):
            constructions.append(aig_in.name)
            return real(aig_in)

        monkeypatch.setattr("repro.core.phases.aig_to_egraph", counting)
        batch = BatchPipeline(executor="serial", store=str(tmp_path))
        plan = batch.plan(jobs)
        assert plan.item("rr0").schedule == "pool"
        assert plan.item("rr1").schedule == "after:rr0"
        assert plan.item("rr2").schedule == "after:rr0"
        assert plan.num_saturations == 1
        assert plan.num_prefix_shared == 2

        report = batch.run(jobs)
        assert report.num_failed == 0
        assert len(constructions) == 1  # the prefix saturated once
        assert not report.item("rr0").cached
        for name in ("rr1", "rr2"):
            item = report.item(name)
            assert item.cached  # saturation served from the leader's write
            assert item.prefix_shared
        assert report.num_prefix_shared == 2
        store = ArtifactStore(tmp_path)
        kinds = sorted(entry.kind for entry in store.entries())
        assert kinds == ["extraction", "extraction", "extraction",
                        "saturated-pipeline"]

    def test_shared_prefix_on_process_backend(self, tmp_path):
        """Wave ordering holds under the process pool: dependents only
        dispatch after their leader persisted the prefix, so they report
        cache hits; results match a serial reference bit-exactly."""
        aig = _mapped()
        jobs = [BatchJob(f"rr{refine}", aig,
                         options=BoolEOptions(refine_rounds=refine,
                                              **OPTIONS))
                for refine in (0, 1)]
        report = BatchPipeline(executor="process", max_workers=2,
                               store=str(tmp_path / "proc")).run(jobs)
        assert report.num_failed == 0
        assert report.item("rr1").cached
        assert report.item("rr1").prefix_shared
        serial = BatchPipeline(executor="serial",
                               store=str(tmp_path / "serial")).run(jobs)
        assert (report.deterministic_aggregate()
                == serial.deterministic_aggregate())

    def test_plan_failure_stays_isolated(self, tmp_path):
        """A job whose options break pipeline construction gets an error
        slot in the plan, is scheduled cold, and fails alone at run time
        with the same error class as before."""
        bad = BoolEOptions()
        bad.refine_rounds = -1
        jobs = [BatchJob("bad-options", ripple_carry_adder(3)[0],
                         options=bad),
                BatchJob("rca3", ripple_carry_adder(3)[0],
                         options=BoolEOptions(**OPTIONS))]
        batch = BatchPipeline(executor="serial", store=str(tmp_path))
        plan = batch.plan(jobs)
        assert plan.item("bad-options").schedule == "error"
        assert "refine_rounds" in plan.item("bad-options").error
        report = batch.run(jobs)
        assert report.num_failed == 1
        (name, error), = report.failures()
        assert name == "bad-options" and "refine_rounds" in error
        assert report.item("rca3").ok

    def test_plan_json_round_trips(self, tmp_path):
        aig = ripple_carry_adder(3)[0]
        plan = BatchPipeline(store=str(tmp_path)).plan(
            [BatchJob("a", aig, options=BoolEOptions(**OPTIONS))])
        payload = json.loads(json.dumps(plan.to_json()))
        assert payload["summary"]["jobs"] == 1
        assert payload["jobs"][0]["schedule"] == "pool"
        phases = payload["jobs"][0]["plan"]["phases"]
        assert [p["name"] for p in phases] == [
            "construct", "saturate-r1", "saturate-r2", "insert-fa",
            "extract", "reconstruct"]


_PROPERTY_SCRIPT = """
import hashlib, json, random, sys
from pathlib import Path

from repro.core import BatchJob, BatchPipeline, BoolEOptions, BoolEPipeline
from repro.generators import csa_multiplier, ripple_carry_adder
from repro.opt import post_mapping_flow
from repro.store import KIND_CHECKPOINT, ArtifactStore, phase_checkpoint_key

root = Path(sys.argv[1])
rng = random.Random(int(sys.argv[2]))

def options(**kw):
    base = dict(r1_iterations=2, r2_iterations=2, count_npn=False)
    base.update(kw)
    return BoolEOptions(**base)

circuits = {
    "rca3": ripple_carry_adder(3)[0],
    "rca4": ripple_carry_adder(4)[0],
    "csa2": post_mapping_flow(csa_multiplier(2).aig),
}
store_root = root / "store"
store = ArtifactStore(store_root)

# Seed a randomized store state per circuit.
states = {}
for name in sorted(circuits):
    aig = circuits[name]
    state = rng.choice(["empty", "snapshot-only", "two-level",
                        "checkpoint-only", "stale-checkpoint"])
    states[name] = state
    if state == "empty":
        continue
    opts = options(checkpoint_every=1)
    keys = BoolEPipeline(opts, store=store).plan(aig)
    checkpoint_key = phase_checkpoint_key(keys.base_key, "saturate-r2")
    captured = {}
    original_put = ArtifactStore.put
    def capturing_put(self, key, payload, *, kind, meta=None,
                      _captured=captured, _original=original_put):
        path = _original(self, key, payload, kind=kind, meta=meta)
        if kind == KIND_CHECKPOINT and key not in _captured:
            _captured[key] = (payload, meta)
        return path
    ArtifactStore.put = capturing_put
    try:
        BoolEPipeline(opts, store=store).run(aig)
    finally:
        ArtifactStore.put = original_put
    if state == "snapshot-only":
        store.delete(keys.extraction_key)
    elif state == "checkpoint-only":
        store.delete(keys.base_key)
        store.delete(keys.extraction_key)
        payload, meta = captured[checkpoint_key]
        store.put(checkpoint_key, payload, kind=KIND_CHECKPOINT, meta=meta)
    elif state == "stale-checkpoint":
        payload, meta = captured[checkpoint_key]
        store.put(checkpoint_key, payload, kind=KIND_CHECKPOINT, meta=meta)

# A randomized sweep over circuits x non-semantic/extraction options.
jobs = []
for index in range(rng.randint(6, 9)):
    name = rng.choice(sorted(circuits))
    jobs.append(BatchJob(f"job{index}-{name}", circuits[name],
                         options=options(
                             refine_rounds=rng.choice([0, 1]),
                             extract=rng.random() < 0.9,
                             checkpoint_every=rng.choice([None, 50]))))

def snapshot():
    result = {}
    for path in sorted(store_root.rglob("*")):
        if path.is_file():
            stat = path.stat()
            result[str(path)] = (
                stat.st_mtime_ns,
                hashlib.sha256(path.read_bytes()).hexdigest())
    return result

batch = BatchPipeline(executor="serial", store=str(store_root))
before = snapshot()
plan = batch.plan(jobs)
assert snapshot() == before, "planning mutated the store"

report = batch.run(jobs)
lines = []
for item_plan, item in zip(plan.items, report.items):
    assert item.ok, (item.name, item.error)
    if item_plan.duplicate_of is not None:
        canonical = report.item(item_plan.duplicate_of)
        assert item.deduped_from == item_plan.duplicate_of, item.name
        assert item.summary == canonical.summary, item.name
        lines.append({"name": item.name,
                      "schedule": item_plan.schedule})
        continue
    predicted = item_plan.plan
    assert item.cached == predicted.predicts_cache_hit, item.name
    assert (item.extraction_cached
            == predicted.predicts_extraction_cache_hit), item.name
    assert item.resumed_phase == predicted.predicts_resumed_phase, item.name
    lines.append({"name": item.name,
                  "schedule": item_plan.schedule,
                  "final": predicted.final_key,
                  "cached": item.cached,
                  "extraction_cached": item.extraction_cached,
                  "resumed": item.resumed_phase})
print(json.dumps({"states": states, "items": lines,
                  "aggregate": report.deterministic_aggregate()},
                 sort_keys=True))
"""


def _property_subprocess(tmp_path, rng_seed, hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    workdir = tmp_path / f"rng{rng_seed}-hash{hash_seed}"
    workdir.mkdir()
    proc = subprocess.run(
        [sys.executable, "-c", _PROPERTY_SCRIPT, str(workdir),
         str(rng_seed)],
        env=env, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestPlanExecutionAgreementProperty:
    def test_randomized_sweeps_across_hash_seeds(self, tmp_path):
        """For randomized sweeps over circuits × options × store states,
        every plan classification matches execution's observed behavior,
        planning mutates nothing (asserted in-subprocess), and the whole
        plan+run transcript is identical across ``PYTHONHASHSEED``."""
        first = _property_subprocess(tmp_path, rng_seed=7, hash_seed=0)
        second = _property_subprocess(tmp_path, rng_seed=7, hash_seed=31337)
        assert first == second
        payload = json.loads(first)
        assert payload["items"], payload
        # A different random universe, one seed: still self-consistent.
        other = json.loads(_property_subprocess(tmp_path, rng_seed=11,
                                                hash_seed=1))
        assert other["items"], other
