"""The bitmask/worklist extraction rewrite and the extraction cache (ISSUE 4).

Three properties are pinned here:

* **Achievability.**  Every stored (mask, size) is exactly what the
  chosen node materialises (the value-repair pass), so
  ``num_exact_fas`` always equals the reconstructed FA block count.  The
  frozen pre-rewrite reference (:mod:`repro.core.extraction_reference`)
  violates this on wide circuits — a child refresh could shrink the FA
  set a parent's stored entry was computed from, and the
  accept-only-improvements rule then kept the stale, unachievable key
  forever (at width 16 it claimed 267 root FAs over a 161-FA netlist).
  Where the reference *is* self-consistent the two agree entry for
  entry; where it is not, the rewrite must stay within 5% of its
  materialised FA count (measured: better at widths 4/8, 155 vs 161 at
  width 16 — the reference's count there is a scheduling-lottery
  artifact of hash-set iteration order).
* **Determinism.**  Setup tables, the dependency index and the worklist
  are built in seq/structural order only, so extraction is bit-identical
  across ``PYTHONHASHSEED`` values (subprocess property test).
* **Caching.**  ``kind="extraction"`` artifacts hit/miss/invalidate
  correctly and corrupt artifacts degrade to a recompute (mirrors the
  PR 3 snapshot hardening).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, aig_equivalent, lit_not
from repro.core import BoolEOptions, BoolEPipeline
from repro.core.construct import aig_to_egraph
from repro.core.extraction import (
    BoolEExtraction,
    BoolEExtractor,
    CostEntry,
    _SIZE_CAP,
    reconstruct_aig,
)
from repro.core.extraction_reference import (
    ReferenceBoolEExtractor,
    reference_tree_extract,
)
from repro.core.rules_basic import basic_rules
from repro.egraph import ENode, Op, Runner, RunnerLimits, TreeCostExtractor
from repro.store import (
    KIND_EXTRACTION,
    ArtifactStore,
    extraction_cache_key,
)
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

#: Options shared with ``python -m repro.store warm`` so the nightly run of
#: the wide widths can reuse the shared artifact store.
PIPELINE_OPTIONS = dict(r1_iterations=3, r2_iterations=3)

#: Widths for the expensive end-to-end properties: 3 on every run, the
#: ISSUE acceptance widths 8 and 16 on the nightly cron (REPRO_NIGHTLY=1).
WIDE_WIDTHS = [8, 16] if os.environ.get("REPRO_NIGHTLY") else []


def _mapped(width):
    return post_mapping_flow(csa_multiplier(width).aig)


def _pipeline_result(width, store=None):
    if store is None:
        # The nightly cron points REPRO_STORE_DIR at its warmed store so
        # the acceptance widths skip re-saturation.
        store = os.environ.get("REPRO_STORE_DIR")
    return BoolEPipeline(BoolEOptions(**PIPELINE_OPTIONS),
                         store=store).run(_mapped(width))


def _functionally_equal(left, right, seed=7):
    """Equivalence check that scales past the exhaustive truth-table cap."""
    if left.num_inputs <= 16:
        return aig_equivalent(left, right)
    import random

    rng = random.Random(seed)
    mask = (1 << 256) - 1
    for _round in range(8):
        words = {var: rng.getrandbits(256) for var in left.inputs}
        left_values = left.simulate(dict(words), mask=mask)
        right_words = {var: words[old_var]
                       for var, old_var in zip(right.inputs, left.inputs)}
        right_values = right.simulate(right_words, mask=mask)
        if (left.output_words(left_values, mask)
                != right.output_words(right_values, mask)):
            return False
    return True


def _recompute_candidate(egraph, extractor, fa_bit, entries, class_id, node):
    """Candidate (mask, size) of ``node`` from the final entries, or None."""
    mask = 0
    size = extractor.node_cost.get(node.op, 1)
    for child in node.children:
        entry = entries.get(egraph.find(child))
        if entry is None:
            return None
        mask |= entry.fa_mask
        size += entry.size
    if node.op == Op.FA:
        mask |= fa_bit[class_id]
    return mask, min(size, _SIZE_CAP)


def _assert_achievable_entries(egraph, extraction, extractor=None):
    """Every stored (mask, size) is exactly what its chosen node yields.

    This is the invariant the pre-rewrite extractor violated (stale
    optimistic values made ``num_exact_fas`` overcount the reconstructed
    netlist).  Choice-level *local optimality* against the repaired values
    is deliberately NOT asserted: the greedy propagation picks nodes under
    intermediate values, so better-looking candidates can exist afterwards
    (true of the old extractor too, hidden behind its stale bookkeeping —
    closing that gap is a ROADMAP refinement item).
    """
    extractor = extractor or BoolEExtractor()
    entries = extraction.entries
    fa_bit = {class_id: 1 << position
              for position, class_id in enumerate(extraction.fa_index)}
    for class_id in egraph.class_ids():
        class_id = egraph.find(class_id)
        best = entries.get(class_id)
        if best is None:
            assert all(
                _recompute_candidate(egraph, extractor, fa_bit, entries,
                                     class_id, node) is None
                for node in egraph.enodes(class_id)), \
                f"feasible node but no entry at class {class_id}"
            continue
        recomputed = _recompute_candidate(egraph, extractor, fa_bit,
                                          entries, class_id, best.node)
        assert recomputed == (best.fa_mask, best.size), \
            f"stale entry at class {class_id}"


def _reference_is_consistent(egraph, extractor, reference_entries):
    for class_id, entry in reference_entries.items():
        mask_set = set()
        size = extractor.node_cost.get(entry.node.op, 1)
        feasible = True
        for child in entry.node.children:
            child_entry = reference_entries.get(egraph.find(child))
            if child_entry is None:
                feasible = False
                break
            mask_set |= set(child_entry.fa_classes)
            size += child_entry.size
        if not feasible:
            return False
        if entry.node.op == Op.FA:
            mask_set.add(class_id)
        if (mask_set != set(entry.fa_classes)
                or min(size, _SIZE_CAP) != entry.size):
            return False
    return True


class TestCostEntryBitmask:
    def test_fa_classes_decodes_mask(self):
        node = ENode(Op.VAR, (), "x")
        entry = CostEntry(fa_mask=0b101, size=3, node=node,
                          fa_index=(10, 20, 30))
        assert entry.fa_classes == frozenset({10, 30})
        assert entry.key() == (-2, 3)

    def test_empty_mask(self):
        entry = CostEntry(fa_mask=0, size=7, node=ENode(Op.VAR, (), "x"))
        assert entry.fa_classes == frozenset()
        assert entry.key() == (0, 7)

    def test_wide_mask_beyond_machine_word(self):
        index = tuple(range(100, 200))
        entry = CostEntry(fa_mask=(1 << 99) | (1 << 64) | 1, size=0,
                          node=ENode(Op.VAR, (), "x"), fa_index=index)
        assert entry.fa_classes == frozenset({100, 164, 199})
        assert entry.key() == (-3, 0)

    def test_num_exact_fas_counts_shared_fas_once(self):
        aig = AIG()
        a, b, c = (aig.add_input(name) for name in "abc")
        sum_lit, carry_lit = aig.full_adder(a, b, c)
        aig.add_output(sum_lit, "s")
        aig.add_output(carry_lit, "c")
        result = BoolEPipeline(BoolEOptions(r1_iterations=2,
                                            r2_iterations=2)).run(aig)
        roots = [result.construction.egraph.find(class_id)
                 for class_id in result.construction.output_classes]
        # Both outputs project the same FA tuple: counted once.
        assert result.extraction.num_exact_fas(roots) == 1
        assert result.num_exact_fas == 1

    def test_raw_entry_skips_find(self):
        result = _pipeline_result(2)
        extraction = result.extraction
        egraph = result.construction.egraph
        for class_id in result.construction.output_classes:
            canonical = egraph.find(class_id)
            assert (extraction.raw_entry(canonical)
                    is extraction.entry(class_id))


class TestReferenceEquivalence:
    @pytest.mark.parametrize("width", [2, 3] + WIDE_WIDTHS)
    def test_pipeline_extraction_vs_reference(self, width):
        """The production extractor is a consistent fixpoint; the reference
        agrees wherever it is self-consistent, and never reconstructs more
        exact FAs."""
        result = _pipeline_result(width)
        construction = result.construction
        egraph = construction.egraph
        extractor = BoolEExtractor()
        extraction = result.extraction

        _assert_achievable_entries(egraph, extraction, extractor)
        roots = [egraph.find(class_id)
                 for class_id in construction.output_classes]
        # The old implementation violated this: stale masks made
        # num_exact_fas overcount the materialised blocks (267 vs 161 on
        # the 16-bit CSA).
        assert extraction.num_exact_fas(roots) == len(result.fa_blocks)

        reference = ReferenceBoolEExtractor().extract(egraph)
        assert set(reference) == set(extraction.entries)
        if _reference_is_consistent(egraph, extractor, reference):
            for class_id, entry in extraction.entries.items():
                ref = reference[class_id]
                assert entry.node == ref.node
                assert entry.size == ref.size
                assert entry.fa_classes == ref.fa_classes

        shim = BoolEExtraction(egraph=egraph)
        for class_id, ref in reference.items():
            shim.entries[class_id] = CostEntry(fa_mask=0, size=ref.size,
                                               node=ref.node)
        ref_aig, ref_blocks = reconstruct_aig(construction, shim)
        # Quality floor: the reference's stale optimism is a scheduling
        # lottery (its materialised count swings with iteration order —
        # docs/performance.md records 7/40/161 vs the rewrite's 8/43/155
        # at widths 4/8/16), so the consistent extractor must stay within
        # 5% of it and usually beats it.
        assert len(result.fa_blocks) * 20 >= len(ref_blocks) * 19
        assert _functionally_equal(result.source, result.extracted_aig)

    def test_tree_extractor_matches_reference(self):
        result = _pipeline_result(3)
        egraph = result.construction.egraph
        new = TreeCostExtractor().extract(egraph)
        reference = reference_tree_extract(egraph)
        assert set(new.choices) == set(reference)
        for class_id, choice in new.choices.items():
            cost, node = reference[class_id]
            assert choice.node == node
            assert abs(choice.cost - cost) < 1e-9


@st.composite
def random_aigs(draw):
    num_inputs = draw(st.integers(min_value=2, max_value=4))
    num_gates = draw(st.integers(min_value=1, max_value=10))
    aig = AIG(name="rand")
    literals = [aig.add_input(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_gates):
        a = literals[draw(st.integers(0, len(literals) - 1))]
        b = literals[draw(st.integers(0, len(literals) - 1))]
        if draw(st.booleans()):
            a = lit_not(a)
        if draw(st.booleans()):
            b = lit_not(b)
        literals.append(aig.and_(a, b))
    aig.add_output(literals[-1], "f")
    return aig


class TestRandomGraphEquivalence:
    @given(random_aigs())
    @settings(max_examples=20, deadline=None)
    def test_boole_extractor_identical_on_fa_free_graphs(self, aig):
        """Without FA nodes the cost system is confluent, so the worklist
        must reproduce the reference entry-for-entry (including on the
        cyclic classes saturation creates)."""
        construction = aig_to_egraph(aig)
        egraph = construction.egraph
        Runner(RunnerLimits(max_iterations=6)).run(egraph, basic_rules())
        extraction = BoolEExtractor().extract(egraph)
        reference = ReferenceBoolEExtractor().extract(egraph)
        assert set(reference) == set(extraction.entries)
        for class_id, entry in extraction.entries.items():
            ref = reference[class_id]
            assert entry.node == ref.node
            assert entry.size == ref.size
            assert entry.fa_mask == 0 and not ref.fa_classes

    @given(random_aigs())
    @settings(max_examples=20, deadline=None)
    def test_tree_extractor_identical(self, aig):
        construction = aig_to_egraph(aig)
        egraph = construction.egraph
        Runner(RunnerLimits(max_iterations=6)).run(egraph, basic_rules())
        new = TreeCostExtractor().extract(egraph)
        reference = reference_tree_extract(egraph)
        assert set(new.choices) == set(reference)
        for class_id, choice in new.choices.items():
            cost, node = reference[class_id]
            assert choice.node == node
            assert abs(choice.cost - cost) < 1e-9


_HASHSEED_SCRIPT = """
import hashlib, json, sys
from repro.core import BoolEOptions, BoolEPipeline
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow
from repro.store import ArtifactStore

width, store_root = int(sys.argv[1]), sys.argv[2]
mapped = post_mapping_flow(csa_multiplier(width).aig)
options = BoolEOptions(r1_iterations=3, r2_iterations=3)
result = BoolEPipeline(options).run(mapped, store=ArtifactStore(store_root))
assert result.cache_hit, "saturated artifact missing; test setup broken"
assert not result.extraction_cache_hit, "extraction unexpectedly cached"
entries = sorted((class_id, entry.size, sorted(entry.fa_classes),
                  str(entry.node))
                 for class_id, entry in result.extraction.entries.items())
blob = json.dumps([
    result.num_exact_fas,
    [[gate.out_var, gate.fanin0, gate.fanin1]
     for gate in result.extracted_aig.gates],
    list(result.extracted_aig.outputs),
    [[list(block.inputs), block.sum_lit, block.carry_lit]
     for block in result.fa_blocks],
    entries,
])
print(hashlib.sha256(blob.encode()).hexdigest())
"""


def _extraction_digest_subprocess(width, store_root, hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_SCRIPT, str(width), str(store_root)],
        env=env, capture_output=True, text=True, timeout=1200)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestHashSeedInvariance:
    """Satellite: the node-level dependency index is insertion-ordered, so
    extraction (entries, reconstructed AIG, FA blocks) is bit-identical
    across hash seeds.  Runs at width 3 always; the ISSUE acceptance widths
    8 and 16 join on the nightly cron."""

    @pytest.mark.parametrize("width", [3] + WIDE_WIDTHS)
    def test_extraction_bit_identical_across_seeds(self, width,
                                                   tmp_path_factory):
        store_root = os.environ.get("REPRO_STORE_DIR")
        if store_root is None:
            store_root = tmp_path_factory.mktemp("extraction-store")
        store = ArtifactStore(store_root)
        pipeline = BoolEPipeline(BoolEOptions(**PIPELINE_OPTIONS),
                                 store=store)
        mapped = _mapped(width)
        cold = pipeline.run(mapped)  # warms the saturated artifact
        ext_key = extraction_cache_key(
            pipeline.cache_key(mapped), pipeline.extractor.node_cost,
            cold.construction.output_classes)
        digests = []
        for seed in (0, 31337):
            # Each subprocess must *recompute* extraction, not load it.
            store.path_for(ext_key).unlink(missing_ok=True)
            digests.append(_extraction_digest_subprocess(width, store_root,
                                                         seed))
        assert digests[0] == digests[1]


class TestExtractionCache:
    OPTIONS = dict(r1_iterations=2, r2_iterations=2)

    def _pipeline(self, store, **overrides):
        return BoolEPipeline(BoolEOptions(**{**self.OPTIONS, **overrides}),
                             store=store)

    def _ext_key(self, pipeline, aig, result):
        return extraction_cache_key(pipeline.cache_key(aig),
                                    pipeline.extractor.node_cost,
                                    result.construction.output_classes)

    def test_second_run_hits_and_skips_propagation(self, tmp_path):
        store = ArtifactStore(tmp_path)
        aig = _mapped(3)
        pipeline = self._pipeline(store)
        cold = pipeline.run(aig)
        assert not cold.extraction_cache_hit
        assert "extraction_cache_store" in cold.timings
        warm = pipeline.run(aig)
        assert warm.cache_hit and warm.extraction_cache_hit
        # Cost propagation + reconstruction were skipped entirely.
        assert "extract" not in warm.timings
        assert "reconstruct" not in warm.timings
        assert "extraction_cache_load" in warm.timings
        assert warm.extracted_aig.gates == cold.extracted_aig.gates
        assert warm.extracted_aig.outputs == cold.extracted_aig.outputs
        assert warm.fa_blocks == cold.fa_blocks
        assert warm.num_exact_fas == cold.num_exact_fas
        # The cached extraction is a live object over the loaded e-graph.
        roots = [warm.construction.egraph.find(class_id)
                 for class_id in warm.construction.output_classes]
        assert (warm.extraction.num_exact_fas(roots)
                == cold.extraction.num_exact_fas(roots))
        for class_id, entry in cold.extraction.entries.items():
            loaded = warm.extraction.entries[class_id]
            assert loaded.node == entry.node
            assert loaded.size == entry.size
            assert loaded.fa_mask == entry.fa_mask
        assert warm.extraction.fa_index == cold.extraction.fa_index

    def test_node_cost_change_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        aig = _mapped(3)
        default = self._pipeline(store)
        cold = default.run(aig)
        assert default.run(aig).extraction_cache_hit
        costly = BoolEExtractor()
        costly.node_cost = dict(costly.node_cost)
        costly.node_cost[Op.XOR] = 5
        custom = BoolEPipeline(BoolEOptions(**self.OPTIONS), store=store,
                               extractor=costly)
        other = custom.run(aig)
        assert other.cache_hit            # saturation is shared
        assert not other.extraction_cache_hit
        # ... and the custom-cost artifact is stored under its own key.
        assert custom.run(aig).extraction_cache_hit
        assert (self._ext_key(custom, aig, other)
                != self._ext_key(default, aig, cold))

    def test_roots_change_changes_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        aig = _mapped(3)
        pipeline = self._pipeline(store)
        result = pipeline.run(aig)
        key = pipeline.cache_key(aig)
        node_cost = pipeline.extractor.node_cost
        roots = list(result.construction.output_classes)
        assert (extraction_cache_key(key, node_cost, roots)
                != extraction_cache_key(key, node_cost, roots[:-1]))
        assert (extraction_cache_key(key, node_cost, roots)
                != extraction_cache_key(key, node_cost,
                                        list(reversed(roots))))

    def test_codec_bump_changes_key(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        aig = _mapped(3)
        pipeline = self._pipeline(store)
        result = pipeline.run(aig)
        key = pipeline.cache_key(aig)
        roots = list(result.construction.output_classes)
        before = extraction_cache_key(key, pipeline.extractor.node_cost,
                                      roots)
        import repro.store.fingerprint as fingerprint

        monkeypatch.setattr(fingerprint, "CODEC_VERSION",
                            fingerprint.CODEC_VERSION + 1)
        after = extraction_cache_key(key, pipeline.extractor.node_cost,
                                     roots)
        assert before != after
        # A bumped build would probe the new key: a miss, then overwrite.
        assert store.contains(before)
        assert not store.contains(after)

    def test_corrupt_extraction_artifact_degrades_and_heals(self, tmp_path):
        store = ArtifactStore(tmp_path)
        aig = _mapped(3)
        pipeline = self._pipeline(store)
        cold = pipeline.run(aig)
        ext_key = self._ext_key(pipeline, aig, cold)
        store.path_for(ext_key).write_bytes(b"corrupted mid-copy")
        healed = pipeline.run(aig)
        assert healed.cache_hit
        assert not healed.extraction_cache_hit
        assert healed.fa_blocks == cold.fa_blocks
        assert healed.extracted_aig.gates == cold.extracted_aig.gates
        warm = pipeline.run(aig)
        assert warm.extraction_cache_hit

    def test_wrong_kind_and_malformed_payload_degrade(self, tmp_path):
        store = ArtifactStore(tmp_path)
        aig = _mapped(3)
        pipeline = self._pipeline(store)
        cold = pipeline.run(aig)
        ext_key = self._ext_key(pipeline, aig, cold)
        # A foreign kind at the extraction key is a miss, not a crash.
        store.put(ext_key, {"egraph": {}}, kind="egraph")
        rerun = pipeline.run(aig)
        assert not rerun.extraction_cache_hit
        assert rerun.fa_blocks == cold.fa_blocks
        # A well-formed snapshot with a garbage payload is also a miss.
        store.put(ext_key, {"nonsense": True}, kind=KIND_EXTRACTION)
        rerun = pipeline.run(aig)
        assert not rerun.extraction_cache_hit
        assert rerun.fa_blocks == cold.fa_blocks
        assert pipeline.run(aig).extraction_cache_hit

    def test_extraction_hit_survives_snapshot_eviction(self, tmp_path):
        """The extraction artifact is keyed on content, not on the snapshot
        file: if the (much larger) snapshot is GC'd the pipeline
        re-saturates but still skips cost propagation."""
        store = ArtifactStore(tmp_path)
        aig = _mapped(3)
        pipeline = self._pipeline(store)
        cold = pipeline.run(aig)
        store.path_for(pipeline.cache_key(aig)).unlink()
        rerun = pipeline.run(aig)
        assert not rerun.cache_hit
        assert rerun.extraction_cache_hit
        assert rerun.fa_blocks == cold.fa_blocks
        assert rerun.extracted_aig.gates == cold.extracted_aig.gates

    def test_wire_round_trip_preserves_fa_blocks(self, tmp_path):
        store = ArtifactStore(tmp_path)
        aig = _mapped(3)
        cold = self._pipeline(store).run(aig)
        warm = self._pipeline(store).run(aig)
        assert warm.extraction_cache_hit
        assert json.dumps([[list(b.inputs), b.sum_lit, b.carry_lit]
                           for b in warm.fa_blocks]) \
            == json.dumps([[list(b.inputs), b.sum_lit, b.carry_lit]
                           for b in cold.fa_blocks])


class TestRefinementRounds:
    """``BoolEExtractor(refine_rounds=N)``: bounded choose→repair passes.

    The refined extraction must stay achievable (values == what the chosen
    DAG materialises), reconstructible and deterministic, never lose FAs
    against the single-pass extractor at the extraction roots, and key its
    cache entries separately so refined and unrefined artifacts cannot
    shadow each other.
    """

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            BoolEExtractor(refine_rounds=-1)
        with pytest.raises(ValueError):
            BoolEOptions(refine_rounds=-1)   # caught at options level too

    def _saturated(self, width=3):
        result = BoolEPipeline(BoolEOptions(**PIPELINE_OPTIONS)).run(
            _mapped(width))
        return result.construction

    def test_refined_extraction_is_achievable_and_no_worse(self):
        construction = self._saturated()
        roots = construction.output_classes
        single = BoolEExtractor().extract(construction.egraph, roots=roots)
        refined = BoolEExtractor(refine_rounds=3).extract(
            construction.egraph, roots=roots)
        _assert_achievable_entries(construction.egraph, refined)
        assert (refined.num_exact_fas(roots)
                >= single.num_exact_fas(roots))

    def test_refined_pipeline_reconstructs_equivalent_netlist(self):
        options = BoolEOptions(refine_rounds=2, **PIPELINE_OPTIONS)
        result = BoolEPipeline(options).run(_mapped(3))
        assert result.num_exact_fas == len(result.fa_blocks)
        assert _functionally_equal(result.source, result.extracted_aig)

    def test_refinement_deterministic(self):
        construction = self._saturated()
        roots = construction.output_classes
        first = BoolEExtractor(refine_rounds=2).extract(
            construction.egraph, roots=roots)
        second = BoolEExtractor(refine_rounds=2).extract(
            construction.egraph, roots=roots)
        assert sorted((cid, e.size, e.fa_mask, str(e.node))
                      for cid, e in first.entries.items()) \
            == sorted((cid, e.size, e.fa_mask, str(e.node))
                      for cid, e in second.entries.items())

    def test_refine_rounds_key_separation(self, tmp_path):
        """refine_rounds joins the extraction key but not the saturated
        key: a refined run shares the snapshot yet never hits the
        unrefined extraction artifact (or vice versa)."""
        store = ArtifactStore(tmp_path)
        aig = _mapped(3)
        plain_options = BoolEOptions(**PIPELINE_OPTIONS)
        refined_options = BoolEOptions(refine_rounds=2, **PIPELINE_OPTIONS)
        plain = BoolEPipeline(plain_options, store=store)
        refined = BoolEPipeline(refined_options, store=store)
        assert plain.cache_key(aig) == refined.cache_key(aig)

        cold = plain.run(aig)
        assert not cold.cache_hit
        second = refined.run(aig)
        assert second.cache_hit            # shared saturated snapshot
        assert not second.extraction_cache_hit  # but its own extraction key
        assert refined.run(aig).extraction_cache_hit
        assert plain.run(aig).extraction_cache_hit
