"""Integration tests for the BoolE core pipeline."""


from repro.aig import AIG, aig_equivalent
from repro.core import (
    BoolEExtractor,
    BoolEOptions,
    BoolEPipeline,
    aig_to_egraph,
    count_npn_fa_pairs,
    insert_fa_structures,
    reconstruct_aig,
    run_boole,
)
from repro.egraph import ENode, Op
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow

FAST = BoolEOptions(r1_iterations=2, r2_iterations=2)


def _single_fa_aig() -> AIG:
    aig = AIG()
    a, b, c = (aig.add_input(name) for name in "abc")
    s, carry = aig.full_adder(a, b, c)
    aig.add_output(s, "sum")
    aig.add_output(carry, "carry")
    return aig


class TestConstruction:
    def test_class_per_gate_and_input(self):
        aig = _single_fa_aig()
        construction = aig_to_egraph(aig)
        assert construction.egraph.num_classes >= aig.num_gates + aig.num_inputs

    def test_output_classes_recorded(self):
        aig = _single_fa_aig()
        construction = aig_to_egraph(aig)
        assert len(construction.output_classes) == aig.num_outputs

    def test_literal_roundtrip(self):
        aig = _single_fa_aig()
        construction = aig_to_egraph(aig)
        for lit in aig.outputs:
            class_id = construction.class_of_literal(lit)
            assert construction.literal_of_class(class_id) is not None

    def test_shared_structure_is_hash_consed(self):
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        aig.add_output(aig.and_(a, b))
        aig.add_output(aig.and_(a, b))
        construction = aig_to_egraph(aig)
        assert construction.output_classes[0] == construction.output_classes[1]


class TestFAStructure:
    def test_manual_pairing(self):
        from repro.egraph import EGraph
        egraph = EGraph()
        a, b, c = egraph.var("a"), egraph.var("b"), egraph.var("c")
        key = tuple(sorted((a, b, c)))
        xor3 = egraph.add(ENode(Op.XOR3, key))
        maj = egraph.add(ENode(Op.MAJ, key))
        report = insert_fa_structures(egraph)
        assert report.num_exact_fas == 1
        pair = report.pairs[0]
        assert egraph.find(pair.sum_class) == egraph.find(xor3)
        assert egraph.find(pair.carry_class) == egraph.find(maj)

    def test_no_pairing_without_partner(self):
        from repro.egraph import EGraph
        egraph = EGraph()
        a, b, c = egraph.var("a"), egraph.var("b"), egraph.var("c")
        egraph.add(ENode(Op.XOR3, tuple(sorted((a, b, c)))))
        report = insert_fa_structures(egraph)
        assert report.num_exact_fas == 0

    def test_npn_pairing_counts_complemented_inputs(self):
        from repro.egraph import EGraph
        egraph = EGraph()
        a, b, c = egraph.var("a"), egraph.var("b"), egraph.var("c")
        not_c = egraph.add(ENode(Op.NOT, (c,)))
        egraph.add(ENode(Op.XOR3, tuple(sorted((a, b, c)))))
        egraph.add(ENode(Op.MAJ, tuple(sorted((a, b, not_c)))))
        assert count_npn_fa_pairs(egraph) == 1


class TestPipelineOnSingleFA:
    def test_recovers_the_full_adder(self):
        aig = _single_fa_aig()
        result = BoolEPipeline(FAST).run(aig)
        assert result.num_exact_fas == 1
        assert result.num_npn_fas >= 1

    def test_extracted_netlist_is_equivalent(self):
        aig = _single_fa_aig()
        result = BoolEPipeline(FAST).run(aig)
        assert aig_equivalent(aig, result.extracted_aig)

    def test_fa_block_signals_are_consistent(self):
        aig = _single_fa_aig()
        result = BoolEPipeline(FAST).run(aig)
        block = result.fa_blocks[0]
        check = AIG()
        inputs = [check.add_input(f"x{i}") for i in range(3)]
        # Rebuild sum/carry from the recorded literals by mapping input order.
        assert len(block.inputs) == 3

    def test_summary_keys(self):
        aig = _single_fa_aig()
        result = run_boole(aig, FAST)
        summary = result.summary()
        for key in ("aig_nodes", "exact_fas", "npn_fas", "runtime"):
            assert key in summary


class TestPipelineOnMultipliers:
    def test_premapping_csa_reaches_bound(self):
        circuit = csa_multiplier(3)
        result = BoolEPipeline(BoolEOptions(r1_iterations=3, r2_iterations=3)).run(circuit.aig)
        assert result.num_npn_fas == circuit.num_full_adders
        assert result.num_exact_fas == circuit.num_full_adders
        assert aig_equivalent(circuit.aig, result.extracted_aig)

    def test_postmapping_recovery_beats_cut_enumeration(self):
        """The motivating example (Figure 1): BoolE recovers blocks that the
        cut-based detector misses on a mapped netlist."""
        from repro.baselines import detect_adder_tree
        circuit = csa_multiplier(4)
        mapped = post_mapping_flow(circuit.aig)
        abc = detect_adder_tree(mapped)
        result = BoolEPipeline(BoolEOptions(r1_iterations=3, r2_iterations=3)).run(mapped)
        assert result.num_exact_fas >= abc.num_exact_fas
        assert result.num_npn_fas >= abc.num_npn_fas
        assert aig_equivalent(mapped, result.extracted_aig)

    def test_rule_counts_exposed(self):
        pipeline = BoolEPipeline(FAST)
        counts = pipeline.num_rules
        assert counts["R1"] > 0
        assert counts["R2"] > counts["R1"]


class TestExtractor:
    def test_prefers_fa_over_gate_decomposition(self):
        aig = _single_fa_aig()
        result = BoolEPipeline(FAST).run(aig)
        extraction = result.extraction
        fa_total = extraction.num_exact_fas(
            [result.construction.egraph.find(c) for c in result.construction.output_classes])
        assert fa_total == 1

    def test_extraction_without_fa_structures(self):
        """The extractor degrades gracefully on netlists with no adders."""
        aig = AIG()
        a, b = aig.add_input(), aig.add_input()
        aig.add_output(aig.or_(a, b))
        construction = aig_to_egraph(aig)
        extraction = BoolEExtractor().extract(construction.egraph)
        extracted, blocks = reconstruct_aig(construction, extraction)
        assert not blocks
        assert aig_equivalent(aig, extracted)
