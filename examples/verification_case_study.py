#!/usr/bin/env python3
"""Table II case study: BoolE-assisted formal verification of multipliers.

Usage::

    python examples/verification_case_study.py [max_width]

For every bitwidth the script optimises a CSA multiplier with the dch-style
script (which destroys the exact adder blocks), then verifies it with the SCA
backward-rewriting engine in the two configurations of Table II:

* baseline — cut-enumeration block detection only (RevSCA-2.0 style), and
* BoolE — the netlist is rewritten by BoolE first and the reconstructed full
  adders drive block-level polynomial rewriting.

The baseline's maximum polynomial size explodes with the bitwidth while the
BoolE-assisted run stays small — the mechanism behind the paper's four orders
of magnitude verification speedup.
"""

import sys

from repro.core import BoolEOptions
from repro.generators import csa_multiplier
from repro.opt import dch_optimize
from repro.verify import MultiplierVerifier, verify_baseline, verify_with_boole


def main(max_width: int = 6) -> None:
    verifier = MultiplierVerifier(max_poly_size=50_000, time_limit=60.0)
    options = BoolEOptions(r1_iterations=3, r2_iterations=3)
    header = (f"{'width':>5} | {'cfg':>8} {'status':>10} {'exact FAs':>9} "
              f"{'max poly':>9} {'runtime s':>9}")
    print("== Verification of dch-optimised CSA multipliers ==")
    print(header)
    print("-" * len(header))
    for width in range(4, max_width + 1, 2):
        optimized = dch_optimize(csa_multiplier(width).aig)
        baseline = verify_baseline(optimized, width, width, verifier=verifier)
        print(f"{width:>5} | {'baseline':>8} {baseline.result.status:>10} "
              f"{baseline.num_exact_fas:>9} {baseline.result.max_poly_size:>9} "
              f"{baseline.end_to_end_runtime:>9.2f}")
        boole = verify_with_boole(optimized, width, width, options=options,
                                  verifier=verifier)
        print(f"{width:>5} | {'BoolE':>8} {boole.result.status:>10} "
              f"{boole.num_exact_fas:>9} {boole.result.max_poly_size:>9} "
              f"{boole.end_to_end_runtime:>9.2f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
