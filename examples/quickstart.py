#!/usr/bin/env python3
"""Quickstart: run BoolE on a small multiplier and inspect what it recovers.

Usage::

    python examples/quickstart.py [width]

The script builds a carry-save-array multiplier, destroys its adder-tree
structure with dch-style optimisation + technology mapping, and then runs the
BoolE pipeline to reconstruct the full adders, comparing against the
conventional cut-enumeration baseline (ABC-style).
"""

import sys

from repro.aig import aig_equivalent
from repro.baselines import detect_adder_tree
from repro.core import BoolEOptions, BoolEPipeline
from repro.generators import csa_multiplier, csa_upper_bound_fa
from repro.opt import post_mapping_flow


def main(width: int = 4) -> None:
    print(f"== BoolE quickstart on a {width}-bit CSA multiplier ==")
    circuit = csa_multiplier(width)
    print(f"generated netlist: {circuit.aig.num_gates} AND gates, "
          f"{circuit.num_full_adders} ground-truth full adders "
          f"(upper bound {csa_upper_bound_fa(width)})")

    mapped = post_mapping_flow(circuit.aig)
    print(f"after dch optimisation + technology mapping: {mapped.num_gates} AND gates")

    abc = detect_adder_tree(mapped)
    print(f"cut enumeration (ABC baseline): {abc.num_npn_fas} NPN FAs, "
          f"{abc.num_exact_fas} exact FAs")

    pipeline = BoolEPipeline(BoolEOptions(r1_iterations=3, r2_iterations=3))
    result = pipeline.run(mapped)
    print(f"BoolE: {result.num_npn_fas} NPN FAs, {result.num_exact_fas} exact FAs "
          f"(e-graph: {result.egraph_classes} classes / {result.egraph_nodes} nodes, "
          f"{result.total_runtime:.1f}s)")

    equivalent = aig_equivalent(mapped, result.extracted_aig)
    print(f"extracted netlist: {result.extracted_aig.num_gates} AND gates, "
          f"functionally equivalent to the input: {equivalent}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
