#!/usr/bin/env python3
"""Figure 4 style sweep: compare BoolE, ABC and Gamora across bitwidths.

Usage::

    python examples/reasoning_sweep.py [arch] [max_width]

``arch`` is ``csa`` (default) or ``booth``.  For every bitwidth the script
applies the post-mapping flow (dch optimisation + technology mapping) and
reports the NPN/exact full-adder counts of the three reasoning approaches
against the theoretical upper bound — the data behind Figure 4 of the paper.
"""

import sys

from repro.baselines import detect_adder_tree, predict_adder_tree
from repro.core import BoolEOptions, BoolEPipeline
from repro.generators import generate_multiplier
from repro.opt import post_mapping_flow


def main(arch: str = "csa", max_width: int = 5) -> None:
    widths = list(range(3, max_width + 1))
    header = (f"{'width':>5} {'bound':>6} | {'BoolE npn':>9} {'ABC npn':>8} "
              f"{'Gamora':>7} | {'BoolE ex':>8} {'ABC ex':>7}")
    print(f"== {arch.upper()} multipliers after dch + technology mapping ==")
    print(header)
    print("-" * len(header))
    pipeline = BoolEPipeline(BoolEOptions(r1_iterations=3, r2_iterations=3))
    for width in widths:
        circuit = generate_multiplier(arch, width)
        mapped = post_mapping_flow(circuit.aig)
        abc = detect_adder_tree(mapped)
        gamora = predict_adder_tree(mapped)
        boole = pipeline.run(mapped)
        print(f"{width:>5} {circuit.num_full_adders:>6} | {boole.num_npn_fas:>9} "
              f"{abc.num_npn_fas:>8} {gamora.num_npn_fas:>7} | "
              f"{boole.num_exact_fas:>8} {abc.num_exact_fas:>7}")


if __name__ == "__main__":
    arch = sys.argv[1] if len(sys.argv) > 1 else "csa"
    max_width = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(arch, max_width)
