"""Process-backend batch sweep against a shared artifact store.

Runs eight width-W circuits (adders plus pre- and post-mapping
multipliers) through :class:`~repro.core.BatchPipeline` on its default
``executor="process"`` backend.  The first run against a store saturates
everything in parallel worker processes and persists the phase artifacts;
the second run is served inline from the store and never spins the pool
up.  CI uses this script as the process-backend smoke test::

    python examples/batch_sweep.py 8 .ci-batch-store                # cold
    python examples/batch_sweep.py 8 .ci-batch-store --expect-warm  # warm

Note the ``if __name__ == "__main__"`` guard: the forkserver/spawn start
methods re-import the main module, so (as with any use of
``multiprocessing``) batch scripts must keep their work behind the guard.
"""

import sys
import time

from repro.core import BatchJob, BatchPipeline, BoolEOptions
from repro.generators import (
    booth_multiplier,
    csa_multiplier,
    ripple_carry_adder,
    wallace_multiplier,
)
from repro.opt import post_mapping_flow


def sweep_jobs(width: int):
    """Eight distinct circuits at the given width."""
    return [
        BatchJob(f"rca{width}", ripple_carry_adder(width)[0]),
        BatchJob(f"rca{width + 1}", ripple_carry_adder(width + 1)[0]),
        BatchJob(f"csa{width}-pre", csa_multiplier(width).aig),
        BatchJob(f"wallace{width}-pre", wallace_multiplier(width).aig),
        BatchJob(f"booth{width}-pre", booth_multiplier(width).aig),
        BatchJob(f"csa{width}-mapped",
                 post_mapping_flow(csa_multiplier(width).aig)),
        BatchJob(f"wallace{width}-mapped",
                 post_mapping_flow(wallace_multiplier(width).aig)),
        BatchJob(f"booth{width}-mapped",
                 post_mapping_flow(booth_multiplier(width).aig)),
    ]


def main(argv) -> int:
    width = int(argv[1]) if len(argv) > 1 else 8
    store = argv[2] if len(argv) > 2 else ".repro-store"
    expect_warm = "--expect-warm" in argv

    jobs = sweep_jobs(width)
    options = BoolEOptions(r1_iterations=3, r2_iterations=3)
    pipeline = BatchPipeline(options, executor="process", max_workers=4,
                             keep_results=False, store=store)
    started = time.perf_counter()
    report = pipeline.run(jobs)
    wall = time.perf_counter() - started

    for item in report.items:
        state = ("warm" if item.cached and item.extraction_cached
                 else "snapshot" if item.cached else "cold")
        status = "ok" if item.ok else f"FAILED: {item.error}"
        print(f"  {item.name:<18} {state:<8} {item.runtime:6.2f}s  "
              f"{int(item.summary.get('exact_fas', 0)):3d} exact FAs  "
              f"{status}")
    print(f"{len(jobs)} circuits in {wall:.2f}s "
          f"({report.num_cached} cached, "
          f"{report.num_extraction_cached} extraction-cached, "
          f"throughput {report.throughput:.2f}/s)")

    if report.num_failed:
        print("FAILURES:", report.failures())
        return 1
    if expect_warm and report.num_cached != len(jobs):
        print(f"expected all {len(jobs)} jobs cached, "
              f"got {report.num_cached}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
