#!/usr/bin/env python3
"""Warm-cache quickstart + snapshot round-trip smoke test.

Usage::

    python examples/store_cache.py [width] [store_dir]

Runs the BoolE pipeline twice against a content-addressed artifact store
(``repro.store``): the first run saturates the e-graph and persists it,
the second run loads the saturated graph and skips straight to
extraction.  A mid-saturation checkpoint is also saved, restored and
resumed to demonstrate bit-identical resumable saturation.  CI runs this
as the snapshot round-trip smoke step (exit code is non-zero on any
mismatch).
"""

import json
import sys
import tempfile

from repro.core import BoolEOptions, BoolEPipeline
from repro.core.construct import aig_to_egraph
from repro.core.rules_basic import basic_rules
from repro.egraph import Runner, RunnerLimits
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow
from repro.store import (
    ArtifactStore,
    egraph_to_wire,
    load_checkpoint,
    save_checkpoint,
)


def demo_pipeline_cache(mapped, store: ArtifactStore) -> None:
    pipeline = BoolEPipeline(
        BoolEOptions(r1_iterations=3, r2_iterations=3), store=store)
    print(f"cache key: {pipeline.cache_key(mapped)[:16]}…")

    cold = pipeline.run(mapped)
    saturation = cold.timings.get("r1", 0.0) + cold.timings.get("r2", 0.0)
    print(f"cold run : {'HIT' if cold.cache_hit else 'MISS'} — "
          f"saturated in {saturation:.2f}s, stored in "
          f"{cold.timings.get('cache_store', 0.0):.2f}s, "
          f"{cold.num_exact_fas} exact FAs")

    warm = pipeline.run(mapped)
    print(f"warm run : {'HIT' if warm.cache_hit else 'MISS'} — "
          f"loaded in {warm.timings.get('cache_load', 0.0):.2f}s, "
          f"extraction "
          f"{'HIT' if warm.extraction_cache_hit else 'MISS'} in "
          f"{warm.timings.get('extraction_cache_load', 0.0):.2f}s, "
          f"{warm.num_exact_fas} exact FAs, total "
          f"{warm.total_runtime:.2f}s")

    assert not cold.cache_hit and warm.cache_hit, "expected a miss then a hit"
    # Two-level hit: the warm run loads the snapshot *and* the extraction
    # artifact, skipping cost propagation entirely.
    assert warm.extraction_cache_hit, "expected an extraction cache hit"
    assert "extract" not in warm.timings
    assert warm.extracted_aig.gates == cold.extracted_aig.gates
    assert warm.fa_blocks == cold.fa_blocks
    assert warm.num_npn_fas == cold.num_npn_fas
    print("warm result is bit-identical to the cold run")


def demo_checkpoint_resume(mapped, store_dir: str) -> None:
    rules = basic_rules()
    limits = RunnerLimits(max_iterations=8, match_limit=60, ban_length=1)

    reference = aig_to_egraph(mapped)
    Runner(limits).run(reference.egraph, rules)

    checkpointed = aig_to_egraph(mapped)
    path_holder = []

    def on_checkpoint(checkpoint):
        if not path_holder:  # keep the first checkpoint only
            path = f"{store_dir}/checkpoint.json.gz"
            save_checkpoint(path, checkpointed.egraph, checkpoint)
            path_holder.append((path, checkpoint.iteration))

    Runner(limits).run(checkpointed.egraph, rules,
                       checkpoint_every=2, on_checkpoint=on_checkpoint)
    assert path_holder, "saturation finished before the first checkpoint"
    path, at_iteration = path_holder[0]

    restored, checkpoint = load_checkpoint(path)
    Runner.from_checkpoint(checkpoint).run(restored, rules,
                                           resume_from=checkpoint)
    reference_wire = json.dumps(egraph_to_wire(reference.egraph),
                                sort_keys=True)
    resumed_wire = json.dumps(egraph_to_wire(restored), sort_keys=True)
    assert resumed_wire == reference_wire, "resumed run diverged"
    print(f"checkpoint at iteration {at_iteration} → restore → continue "
          f"matches the uninterrupted run byte-for-byte "
          f"({len(resumed_wire)} wire bytes)")


def main(width: int = 4, store_dir: str = "") -> None:
    print(f"== repro.store quickstart on a {width}-bit CSA multiplier ==")
    mapped = post_mapping_flow(csa_multiplier(width).aig)
    print(f"post-mapping netlist: {mapped.num_gates} AND gates")

    if store_dir:
        demo_pipeline_cache(mapped, ArtifactStore(store_dir))
        demo_checkpoint_resume(mapped, store_dir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            demo_pipeline_cache(mapped, ArtifactStore(tmp))
            demo_checkpoint_resume(mapped, tmp)
    print("all round trips OK")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4,
         sys.argv[2] if len(sys.argv) > 2 else "")
