#!/usr/bin/env python3
"""Figure 1 motivating example: the 3-bit CSA multiplier.

Reproduces the paper's Section III walk-through: before mapping, the 3-bit
CSA multiplier contains 3 full adders and cut enumeration finds all of them;
after technology mapping, the cut-based detector loses part of the adder tree
while BoolE rewriting reconstructs additional exact FAs.  The script also
writes the pre-mapping, post-mapping and BoolE-extracted netlists to AIGER
files so they can be inspected with external tools.
"""

from pathlib import Path

from repro.aig import write_aag
from repro.baselines import detect_adder_tree
from repro.core import BoolEOptions, BoolEPipeline
from repro.generators import csa_multiplier
from repro.opt import post_mapping_flow


def main(output_dir: str = "motivating_example_out") -> None:
    out = Path(output_dir)
    out.mkdir(exist_ok=True)

    circuit = csa_multiplier(3)
    print("3-bit CSA multiplier:", circuit.aig.num_gates, "AND gates,",
          circuit.num_full_adders, "full adders,",
          circuit.num_half_adders, "half adders")
    write_aag(circuit.aig, out / "csa3_premapping.aag")

    pre = detect_adder_tree(circuit.aig)
    print(f"pre-mapping cut enumeration: {pre.num_npn_fas} NPN FAs, "
          f"{pre.num_npn_has} HAs")

    mapped = post_mapping_flow(circuit.aig)
    write_aag(mapped, out / "csa3_postmapping.aag")
    post = detect_adder_tree(mapped)
    print(f"post-mapping cut enumeration: {post.num_npn_fas} NPN FAs, "
          f"{post.num_exact_fas} exact FAs  <- structure lost by mapping")

    result = BoolEPipeline(BoolEOptions(r1_iterations=3, r2_iterations=3)).run(mapped)
    write_aag(result.extracted_aig, out / "csa3_boole_extracted.aag")
    print(f"BoolE on the mapped netlist: {result.num_npn_fas} NPN FAs, "
          f"{result.num_exact_fas} exact FAs reconstructed")
    for index, block in enumerate(result.fa_blocks):
        print(f"  exact FA {index}: inputs={block.inputs} "
              f"sum={block.sum_lit} carry={block.carry_lit}")
    print(f"netlists written to {out}/")


if __name__ == "__main__":
    main()
