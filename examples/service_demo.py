"""Saturation-as-a-service demo: server + worker + client in one script.

Starts the HTTP front door on an ephemeral port, spins up an in-process
fleet worker, drives a tiny sweep through :class:`~repro.service.ServiceClient`,
and prints each job's plan summary and per-phase progress events.  Run
it twice against the same store to watch the whole sweep get served warm
inline (zero queued jobs, zero saturations planned)::

    python examples/service_demo.py .demo-store            # cold: fleet runs
    python examples/service_demo.py .demo-store            # warm: inline
    python examples/service_demo.py .demo-store --expect-warm

The options are deliberately tiny (two iterations per saturation phase,
no NPN counting) so the cold pass takes seconds.
"""

import sys
import threading

from repro.service import ServiceClient, ServiceServer, ServiceWorker

FAST = {"r1_iterations": 2, "r2_iterations": 2, "count_npn": False}

SWEEP = [
    {"arch": "rca", "width": 4, "options": FAST},
    {"arch": "csa", "width": 3, "options": FAST},
    {"arch": "csa", "width": 4, "options": FAST},
]


def main(argv) -> int:
    store_root = argv[1] if len(argv) > 1 else ".demo-store"
    expect_warm = "--expect-warm" in argv

    server = ServiceServer(store_root, port=0)
    server.start_background()
    client = ServiceClient(server.host, server.port)
    print(f"server on {server.host}:{server.port}, store {store_root!r}")

    worker = ServiceWorker(store_root, poll_interval=0.05)
    fleet = threading.Thread(
        target=worker.run_forever, kwargs={"idle_timeout": 30.0},
        daemon=True)
    fleet.start()

    queued = 0
    responses = []
    for request in SWEEP:
        response = client.submit(request)
        responses.append(response)
        plan = response["plan"]
        queued += response["state"] == "queued"
        print(f"\n{plan['name']}: {response['state']}"
              f" (warm={response['warm']},"
              f" saturations planned={plan['saturations']},"
              f" cold phases={plan['cold_phases'] or '[]'})")

    finals = []
    for response in responses:
        job_id = response["job_id"]
        final = client.wait(job_id, timeout=300)
        finals.append(final)
        result = final.get("result", {})
        print(f"\n{final['spec']['name']} -> {final['state']}"
              f" (exact FAs: {result.get('exact_fas')},"
              f" paired: {result.get('paired_fas')})")
        for event in client.events(job_id):
            if event["event"] == "phase":
                print(f"  phase {event['name']:<12} "
                      f"{event['runtime']:8.3f}s"
                      + ("  (resumed)" if event.get("resumed") else ""))
            else:
                print(f"  {event['event']}")

    stats = client.stats()
    print(f"\nstats: jobs={stats['jobs']} "
          f"store={stats['store']['artifacts']} artifacts, "
          f"{stats['store']['total_bytes']} bytes")

    server.stop_background()
    if expect_warm and queued:
        print(f"expected an all-warm sweep but {queued} job(s) were queued")
        return 1
    failed = sum(1 for final in finals if final["state"] != "done")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
