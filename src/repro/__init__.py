"""repro: a reproduction of BoolE (DAC 2025).

BoolE is an exact symbolic-reasoning framework for Boolean netlists built on
equality saturation.  This package implements the complete stack described in
the paper: the AIG substrate, arithmetic benchmark generators, a technology
mapper and logic optimiser that destroy adder-tree structure, the ABC-style
cut-enumeration baseline and a Gamora-style learned baseline, a from-scratch
e-graph engine, the BoolE rewriting/extraction core, and an SCA-based formal
verification backend (RevSCA-2.0 style).

Typical usage::

    from repro import csa_multiplier
    from repro.core import BoolEPipeline

    circuit = csa_multiplier(8)
    result = BoolEPipeline().run(circuit.aig)
    print(result.num_exact_fas)
"""

from .aig import AIG, read_aag, write_aag
from .generators import (
    MultiplierCircuit,
    booth_multiplier,
    csa_multiplier,
    csa_upper_bound_fa,
    generate_multiplier,
    wallace_multiplier,
)

__version__ = "1.0.0"

__all__ = [
    "AIG",
    "read_aag",
    "write_aag",
    "MultiplierCircuit",
    "booth_multiplier",
    "csa_multiplier",
    "csa_upper_bound_fa",
    "generate_multiplier",
    "wallace_multiplier",
    "__version__",
]
