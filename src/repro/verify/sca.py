"""SCA backward-rewriting verification of multipliers (RevSCA-2.0 analogue).

The verifier checks that an AIG implements ``P = A * B`` by backward
rewriting: starting from the weighted sum of the output bits, every gate
variable is substituted (in reverse topological order) by the polynomial of
its gate function, until only primary inputs remain; the result must equal
the multiplier specification polynomial.

The complexity driver is the intermediate polynomial size.  Like RevSCA-2.0,
the verifier exploits detected half/full-adder blocks: when the sum and carry
signals of a block appear linearly with the 1:2 coefficient ratio of an adder
tree, both are eliminated at once using the arithmetic identity
``sum + 2*carry = x + y (+ z)``, which keeps the polynomial linear in size and
avoids the vanishing-monomial explosion.  Without (exact) blocks the verifier
falls back to plain gate substitution and blows up — that contrast is exactly
what Table II of the paper measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..aig import AIG, lit_is_compl, lit_var
from .polynomial import Polynomial

__all__ = ["AdderBlockSpec", "VerificationResult", "MultiplierVerifier"]


@dataclass(frozen=True)
class AdderBlockSpec:
    """An exact adder block usable by the verifier.

    All signals are AIG literals of the netlist being verified.

    Attributes:
        inputs: two (half adder) or three (full adder) input literals.
        sum_lit: literal of the sum output.
        carry_lit: literal of the carry output.
    """

    inputs: Tuple[int, ...]
    sum_lit: int
    carry_lit: int

    @property
    def is_full_adder(self) -> bool:
        """True for a three-input block."""
        return len(self.inputs) == 3


@dataclass
class VerificationResult:
    """Outcome of one verification run."""

    verified: bool
    status: str                      # "verified", "refuted", "timeout", "size_limit"
    runtime: float
    max_poly_size: int
    gate_substitutions: int
    block_rewrites: int
    remainder_monomials: int = 0

    @property
    def timed_out(self) -> bool:
        """True when the run hit the time or size limit."""
        return self.status in ("timeout", "size_limit")


def _literal_polynomial(lit: int) -> Polynomial:
    return Polynomial.from_literal(lit_var(lit), lit_is_compl(lit))


class MultiplierVerifier:
    """Backward-rewriting SCA verifier with adder-block rewriting."""

    def __init__(self, max_poly_size: int = 2_000_000,
                 time_limit: float = 600.0) -> None:
        self.max_poly_size = max_poly_size
        self.time_limit = time_limit

    # ------------------------------------------------------------------
    # Specification polynomials
    # ------------------------------------------------------------------
    @staticmethod
    def unsigned_spec(aig: AIG, width_a: int, width_b: int) -> Polynomial:
        """Spec polynomial ``sum_i 2^i a_i * sum_j 2^j b_j`` over the PIs."""
        poly_a = Polynomial.zero()
        poly_b = Polynomial.zero()
        for index in range(width_a):
            poly_a = poly_a + Polynomial.variable(aig.inputs[index]).scale(1 << index)
        for index in range(width_b):
            poly_b = poly_b + Polynomial.variable(aig.inputs[width_a + index]).scale(1 << index)
        return poly_a * poly_b

    @staticmethod
    def signed_spec(aig: AIG, width_a: int, width_b: int) -> Polynomial:
        """Two's-complement spec polynomial for a signed multiplier."""
        poly_a = Polynomial.zero()
        poly_b = Polynomial.zero()
        for index in range(width_a):
            weight = 1 << index
            if index == width_a - 1:
                weight = -weight
            poly_a = poly_a + Polynomial.variable(aig.inputs[index]).scale(weight)
        for index in range(width_b):
            weight = 1 << index
            if index == width_b - 1:
                weight = -weight
            poly_b = poly_b + Polynomial.variable(aig.inputs[width_a + index]).scale(weight)
        return poly_a * poly_b

    @staticmethod
    def output_signature(aig: AIG, signed: bool = False) -> Polynomial:
        """Weighted sum of the output bits (two's complement when signed)."""
        signature = Polynomial.zero()
        num_outputs = aig.num_outputs
        for index, lit in enumerate(aig.outputs):
            weight = 1 << index
            if signed and index == num_outputs - 1:
                weight = -weight
            signature = signature + _literal_polynomial(lit).scale(weight)
        return signature

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, aig: AIG, width_a: int, width_b: int,
               blocks: Sequence[AdderBlockSpec] = (),
               signed: bool = False) -> VerificationResult:
        """Verify that ``aig`` multiplies its two operands.

        Args:
            aig: the multiplier netlist (inputs ordered ``a`` then ``b``).
            width_a: bitwidth of operand A.
            width_b: bitwidth of operand B.
            blocks: exact adder blocks used for block-level rewriting.
            signed: two's-complement semantics (Booth multipliers).
        """
        start = time.perf_counter()
        signature = self.output_signature(aig, signed=signed)
        spec = (self.signed_spec(aig, width_a, width_b) if signed
                else self.unsigned_spec(aig, width_a, width_b))

        # Index blocks by the variable of their sum and carry signals.
        block_of_var: Dict[int, AdderBlockSpec] = {}
        for block in blocks:
            block_of_var.setdefault(lit_var(block.sum_lit), block)
            block_of_var.setdefault(lit_var(block.carry_lit), block)

        max_size = signature.num_monomials
        gate_substitutions = 0
        block_rewrites = 0
        remainder = signature

        for gate in reversed(aig.gates):
            var = gate.out_var
            if not remainder.contains_variable(var):
                continue
            if time.perf_counter() - start > self.time_limit:
                return VerificationResult(False, "timeout",
                                          time.perf_counter() - start, max_size,
                                          gate_substitutions, block_rewrites,
                                          remainder.num_monomials)
            block = block_of_var.get(var)
            rewritten = None
            if block is not None:
                rewritten = self._try_block_rewrite(remainder, block)
            if rewritten is not None:
                remainder = rewritten
                block_rewrites += 1
            else:
                replacement = (_literal_polynomial(gate.fanin0)
                               * _literal_polynomial(gate.fanin1))
                remainder = remainder.substitute(var, replacement)
                gate_substitutions += 1
            max_size = max(max_size, remainder.num_monomials)
            if remainder.num_monomials > self.max_poly_size:
                return VerificationResult(False, "size_limit",
                                          time.perf_counter() - start, max_size,
                                          gate_substitutions, block_rewrites,
                                          remainder.num_monomials)

        remainder = remainder - spec
        runtime = time.perf_counter() - start
        verified = remainder.is_zero()
        return VerificationResult(verified,
                                  "verified" if verified else "refuted",
                                  runtime, max_size, gate_substitutions,
                                  block_rewrites, remainder.num_monomials)

    # ------------------------------------------------------------------
    # Block rewriting
    # ------------------------------------------------------------------
    @staticmethod
    def _try_block_rewrite(poly: Polynomial,
                           block: AdderBlockSpec) -> Optional[Polynomial]:
        """Eliminate an adder block's sum and carry signals in one step.

        The rewrite applies when both signals occur purely linearly and their
        coefficients (after accounting for signal polarity) are in the exact
        1:2 ratio of an adder tree, which makes ``alpha*sum + beta*carry``
        collapse to ``alpha*(x + y [+ z])`` plus a constant.
        """
        sum_var = lit_var(block.sum_lit)
        carry_var = lit_var(block.carry_lit)
        if sum_var == carry_var:
            return None
        alpha = poly.linear_coefficient(sum_var)
        beta = poly.linear_coefficient(carry_var)
        if not alpha or not beta:
            return None
        # Express the polynomial in terms of the *signal* values.
        sum_sign = -1 if lit_is_compl(block.sum_lit) else 1
        carry_sign = -1 if lit_is_compl(block.carry_lit) else 1
        signal_alpha = alpha * sum_sign
        signal_beta = beta * carry_sign
        if signal_beta != 2 * signal_alpha:
            return None

        # alpha*v_s + beta*v_c  ==  const + signal_alpha*(sum + 2*carry)
        #                       ==  const + signal_alpha*(x + y [+ z])
        constant = 0
        if lit_is_compl(block.sum_lit):
            constant += alpha
        if lit_is_compl(block.carry_lit):
            constant += beta
        replacement = Polynomial.constant(constant)
        inputs_poly = Polynomial.zero()
        for lit in block.inputs:
            inputs_poly = inputs_poly + _literal_polynomial(lit)
        replacement = replacement + inputs_poly.scale(signal_alpha)

        without_sum = poly.substitute(sum_var, Polynomial.zero())
        without_both = without_sum.substitute(carry_var, Polynomial.zero())
        return without_both + replacement
