"""Formal verification backend: polynomial algebra and SCA backward rewriting."""

from .bridge import (
    VerificationRun,
    blocks_from_boole,
    blocks_from_cut_report,
    verify_baseline,
    verify_with_boole,
)
from .polynomial import Polynomial
from .sca import AdderBlockSpec, MultiplierVerifier, VerificationResult

__all__ = [
    "VerificationRun",
    "blocks_from_boole",
    "blocks_from_cut_report",
    "verify_baseline",
    "verify_with_boole",
    "Polynomial",
    "AdderBlockSpec",
    "MultiplierVerifier",
    "VerificationResult",
]
