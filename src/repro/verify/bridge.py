"""Bridges between symbolic-reasoning front-ends and the SCA verifier.

Two configurations from Table II of the paper are provided:

* **Baseline** — RevSCA-2.0 style: run cut-enumeration block detection on the
  netlist under verification and hand the (few) exact blocks it finds to the
  backward-rewriting engine.
* **BoolE** — run the BoolE pipeline first, verify the *extracted* netlist
  (functionally equivalent, with the reconstructed full adders exposed as
  explicit blocks), and hand every reconstructed FA to the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..aig import AIG, make_lit
from ..aig.truth_table import AND2_TABLE, MAJ3_TABLE, XOR2_TABLE, XOR3_TABLE, table_mask
from ..baselines import AdderTreeReport, detect_adder_tree
from ..core import BoolEOptions, BoolEPipeline, BoolEResult
from ..cuts import Cut, cut_function
from .sca import AdderBlockSpec, MultiplierVerifier, VerificationResult

__all__ = [
    "blocks_from_cut_report",
    "blocks_from_boole",
    "VerificationRun",
    "verify_baseline",
    "verify_with_boole",
]


def _phased_literal(aig: AIG, var: int, leaves: Tuple[int, ...], positive_table: int,
                    num_vars: int) -> Optional[int]:
    """Return the literal of ``var`` computing ``positive_table`` over leaves."""
    table = cut_function(aig, Cut(var, frozenset(leaves)))
    if table == positive_table:
        return make_lit(var)
    if table == (~positive_table & table_mask(num_vars)):
        return make_lit(var, True)
    return None


def blocks_from_cut_report(aig: AIG, report: AdderTreeReport,
                           include_half_adders: bool = True) -> List[AdderBlockSpec]:
    """Convert exact FA/HA matches of the cut-based detector into verifier blocks."""
    blocks: List[AdderBlockSpec] = []
    for fa in report.full_adders:
        if not fa.exact:
            continue
        sum_lit = _phased_literal(aig, fa.sum_var, fa.leaves, XOR3_TABLE, 3)
        carry_lit = _phased_literal(aig, fa.carry_var, fa.leaves, MAJ3_TABLE, 3)
        if sum_lit is None or carry_lit is None:
            continue
        inputs = tuple(make_lit(leaf) for leaf in fa.leaves)
        blocks.append(AdderBlockSpec(inputs=inputs, sum_lit=sum_lit,
                                     carry_lit=carry_lit))
    if include_half_adders:
        for ha in report.half_adders:
            if not ha.exact:
                continue
            sum_lit = _phased_literal(aig, ha.sum_var, ha.leaves, XOR2_TABLE, 2)
            carry_lit = _phased_literal(aig, ha.carry_var, ha.leaves, AND2_TABLE, 2)
            if sum_lit is None or carry_lit is None:
                continue
            inputs = tuple(make_lit(leaf) for leaf in ha.leaves)
            blocks.append(AdderBlockSpec(inputs=inputs, sum_lit=sum_lit,
                                         carry_lit=carry_lit))
    return blocks


def blocks_from_boole(result: BoolEResult) -> List[AdderBlockSpec]:
    """Convert the FA blocks of a BoolE extraction into verifier blocks."""
    blocks: List[AdderBlockSpec] = []
    for record in result.fa_blocks:
        blocks.append(AdderBlockSpec(inputs=record.inputs,
                                     sum_lit=record.sum_lit,
                                     carry_lit=record.carry_lit))
    return blocks


@dataclass
class VerificationRun:
    """One Table II row entry: verification result plus reasoning statistics."""

    result: VerificationResult
    num_exact_fas: int
    reasoning_runtime: float
    verified_aig_nodes: int

    @property
    def end_to_end_runtime(self) -> float:
        """Reasoning plus verification runtime (seconds)."""
        return self.reasoning_runtime + self.result.runtime


def verify_baseline(aig: AIG, width_a: int, width_b: int, signed: bool = False,
                    verifier: Optional[MultiplierVerifier] = None) -> VerificationRun:
    """Table II "Baseline": cut-based block detection + backward rewriting."""
    import time

    verifier = verifier or MultiplierVerifier()
    t0 = time.perf_counter()
    report = detect_adder_tree(aig)
    blocks = blocks_from_cut_report(aig, report)
    reasoning_runtime = time.perf_counter() - t0
    result = verifier.verify(aig, width_a, width_b, blocks=blocks, signed=signed)
    return VerificationRun(result=result,
                           num_exact_fas=report.num_exact_fas,
                           reasoning_runtime=reasoning_runtime,
                           verified_aig_nodes=aig.num_gates)


def verify_with_boole(aig: AIG, width_a: int, width_b: int, signed: bool = False,
                      options: Optional[BoolEOptions] = None,
                      verifier: Optional[MultiplierVerifier] = None,
                      boole_result: Optional[BoolEResult] = None) -> VerificationRun:
    """Table II "BoolE": rewrite with BoolE, verify the extracted netlist."""
    verifier = verifier or MultiplierVerifier()
    if boole_result is None:
        boole_result = BoolEPipeline(options).run(aig)
    extracted = boole_result.extracted_aig
    if extracted is None:
        raise ValueError("BoolE result does not contain an extracted netlist")
    blocks = blocks_from_boole(boole_result)
    result = verifier.verify(extracted, width_a, width_b, blocks=blocks,
                             signed=signed)
    return VerificationRun(result=result,
                           num_exact_fas=boole_result.num_exact_fas,
                           reasoning_runtime=boole_result.total_runtime,
                           verified_aig_nodes=extracted.num_gates)
