"""Sparse integer-coefficient polynomials over Boolean (0/1) variables.

This is the algebra underneath symbolic-computer-algebra (SCA) multiplier
verification: every circuit signal is modelled as a 0/1 integer variable, a
gate relates its output to its inputs by a polynomial identity (e.g.
``out = x * y`` for AND), and backward rewriting substitutes these identities
into the output signature until only primary inputs remain.

A polynomial is a mapping ``monomial -> coefficient`` where a monomial is a
frozenset of variable ids (Boolean variables are idempotent: x^2 = x, so
exponents are unnecessary).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

__all__ = ["Polynomial"]

Monomial = FrozenSet[int]
_EMPTY: Monomial = frozenset()


class Polynomial:
    """A sparse multilinear polynomial with integer coefficients."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Optional[Mapping[Monomial, int]] = None) -> None:
        self._terms: Dict[Monomial, int] = {}
        if terms:
            for monomial, coefficient in terms.items():
                if coefficient:
                    self._terms[frozenset(monomial)] = coefficient

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return cls()

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        """A constant polynomial."""
        return cls({_EMPTY: value}) if value else cls()

    @classmethod
    def variable(cls, var: int) -> "Polynomial":
        """The polynomial consisting of a single Boolean variable."""
        return cls({frozenset({var}): 1})

    @classmethod
    def from_literal(cls, var: int, negated: bool) -> "Polynomial":
        """The polynomial of a signal: ``v`` or ``1 - v`` when negated."""
        if negated:
            return cls({_EMPTY: 1, frozenset({var}): -1})
        return cls.variable(var)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_monomials(self) -> int:
        """Number of monomials with non-zero coefficients."""
        return len(self._terms)

    def is_zero(self) -> bool:
        """True if the polynomial is identically zero."""
        return not self._terms

    def coefficient(self, monomial: Iterable[int]) -> int:
        """Return the coefficient of ``monomial`` (0 if absent)."""
        return self._terms.get(frozenset(monomial), 0)

    def terms(self) -> Iterator[Tuple[Monomial, int]]:
        """Iterate over ``(monomial, coefficient)`` pairs."""
        return iter(self._terms.items())

    def variables(self) -> FrozenSet[int]:
        """Return the set of variables appearing in the polynomial."""
        result: set = set()
        for monomial in self._terms:
            result |= monomial
        return frozenset(result)

    def contains_variable(self, var: int) -> bool:
        """True if ``var`` occurs in any monomial."""
        return any(var in monomial for monomial in self._terms)

    def linear_coefficient(self, var: int) -> Optional[int]:
        """Coefficient of the singleton monomial ``{var}`` if ``var`` appears
        *only* linearly; None if ``var`` occurs inside larger monomials."""
        coefficient = 0
        for monomial, value in self._terms.items():
            if var in monomial:
                if len(monomial) != 1:
                    return None
                coefficient = value
        return coefficient

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Polynomial") -> "Polynomial":
        result = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            updated = result.get(monomial, 0) + coefficient
            if updated:
                result[monomial] = updated
            else:
                result.pop(monomial, None)
        return Polynomial(result)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + other.scale(-1)

    def scale(self, factor: int) -> "Polynomial":
        """Multiply every coefficient by ``factor``."""
        if factor == 0:
            return Polynomial()
        return Polynomial({monomial: coefficient * factor
                           for monomial, coefficient in self._terms.items()})

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        result: Dict[Monomial, int] = {}
        for mono_a, coeff_a in self._terms.items():
            for mono_b, coeff_b in other._terms.items():
                monomial = mono_a | mono_b  # Boolean idempotence: x*x = x
                updated = result.get(monomial, 0) + coeff_a * coeff_b
                if updated:
                    result[monomial] = updated
                else:
                    result.pop(monomial, None)
        return Polynomial(result)

    def substitute(self, var: int, replacement: "Polynomial") -> "Polynomial":
        """Replace every occurrence of ``var`` by ``replacement``."""
        untouched: Dict[Monomial, int] = {}
        rewritten = Polynomial()
        for monomial, coefficient in self._terms.items():
            if var not in monomial:
                untouched[monomial] = untouched.get(monomial, 0) + coefficient
                continue
            rest = Polynomial({monomial - {var}: coefficient})
            rewritten = rewritten + rest * replacement
        return Polynomial(untouched) + rewritten

    def evaluate(self, assignment: Mapping[int, int]) -> int:
        """Evaluate under a 0/1 assignment of every variable."""
        total = 0
        for monomial, coefficient in self._terms.items():
            product = coefficient
            for var in monomial:
                product *= assignment[var]
                if product == 0:
                    break
            total += product
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:  # pragma: no cover - polynomials rarely hashed
        return hash(frozenset(self._terms.items()))

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for monomial, coefficient in sorted(self._terms.items(),
                                            key=lambda item: (len(item[0]), sorted(item[0]))):
            names = "*".join(f"v{var}" for var in sorted(monomial)) or "1"
            parts.append(f"{coefficient}*{names}")
        return " + ".join(parts)
