"""AIG → e-graph construction (Algorithm 1 of the paper).

Nodes are inserted in topological order (leaves first) so that every child
e-class exists before its parent e-node, exactly as Algorithm 1 requires.
The construction records the correspondence between e-classes and original
netlist literals so downstream consumers (reports, the verification bridge)
can map recovered structures back to circuit signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..aig import AIG, lit_is_compl, lit_not, lit_var
from ..egraph import EGraph, ENode, Op

__all__ = ["ConstructionResult", "PlannedConstruction", "aig_to_egraph",
           "planned_construction"]


@dataclass
class ConstructionResult:
    """The e-graph built from an AIG plus signal bookkeeping.

    Attributes:
        egraph: the constructed e-graph.
        aig: the source netlist.
        class_of_var: map from AIG variable index to its e-class id (as
            created; call ``egraph.find`` before using after saturation).
        output_classes: e-class ids of the primary-output signals, in output
            order (complemented outputs get an explicit NOT class).
        literal_classes: map from AIG literal to the e-class created for it
            (positive literals always present; complemented ones when used).
    """

    egraph: EGraph
    aig: AIG
    class_of_var: Dict[int, int] = field(default_factory=dict)
    output_classes: List[int] = field(default_factory=list)
    literal_classes: Dict[int, int] = field(default_factory=dict)

    def class_of_literal(self, lit: int) -> int:
        """Return (creating if needed) the e-class of an AIG literal."""
        existing = self.literal_classes.get(lit)
        if existing is not None:
            return self.egraph.find(existing)
        var_class = self.egraph.find(self.class_of_var[lit_var(lit)])
        if not lit_is_compl(lit):
            return var_class
        not_class = self.egraph.add(ENode(Op.NOT, (var_class,)))
        self.literal_classes[lit] = not_class
        return not_class

    def literal_of_class(self, class_id: int) -> Optional[int]:
        """Return an original AIG literal equivalent to ``class_id``, if any."""
        target = self.egraph.find(class_id)
        for lit, recorded in self.literal_classes.items():
            if self.egraph.find(recorded) == target:
                return lit
        return None


def aig_to_egraph(aig: AIG) -> ConstructionResult:
    """Build an e-graph from an AIG (Algorithm 1).

    Every AND gate becomes an ``&`` e-node whose children are the fanin
    classes (with explicit ``~`` e-nodes for complemented fanin edges);
    primary inputs become variable leaves and the constant becomes a constant
    leaf.
    """
    egraph = EGraph()
    result = ConstructionResult(egraph=egraph, aig=aig)

    const_class = egraph.const(False)
    result.class_of_var[0] = const_class
    result.literal_classes[0] = const_class
    result.literal_classes[1] = egraph.add(ENode(Op.NOT, (const_class,)))

    for var in aig.inputs:
        class_id = egraph.var(aig.input_names[var])
        result.class_of_var[var] = class_id
        result.literal_classes[2 * var] = class_id

    def literal_class(lit: int) -> int:
        positive = 2 * lit_var(lit)
        base = result.literal_classes[positive]
        if not lit_is_compl(lit):
            return base
        key = lit_not(positive)
        existing = result.literal_classes.get(key)
        if existing is None:
            existing = egraph.add(ENode(Op.NOT, (base,)))
            result.literal_classes[key] = existing
        return existing

    # Insert gates from leaves to roots (creation order is topological).
    for gate in aig.topological_gates():
        child0 = literal_class(gate.fanin0)
        child1 = literal_class(gate.fanin1)
        class_id = egraph.add(ENode(Op.AND, (child0, child1)))
        result.class_of_var[gate.out_var] = class_id
        result.literal_classes[2 * gate.out_var] = class_id

    for lit in aig.outputs:
        result.output_classes.append(literal_class(lit))

    egraph.rebuild()
    return result


@dataclass
class PlannedConstruction:
    """Construction-time class ids predicted without building an e-graph.

    The planner needs ``output_classes`` (they participate in the
    extraction cache key) but must not pay for — or mutate — an actual
    e-graph.  Construction performs no unions, so ``EGraph.add`` degrades
    to a hashcons lookup plus a sequential id counter, which a plain dict
    reproduces exactly; see :func:`planned_construction`.
    """

    aig: AIG
    output_classes: List[int] = field(default_factory=list)
    #: Total number of e-classes construction would create.
    num_classes: int = 0


def planned_construction(aig: AIG) -> PlannedConstruction:
    """Predict :func:`aig_to_egraph`'s construction-time ids, e-graph-free.

    Mirrors the insertion order of :func:`aig_to_egraph` step for step
    (constant, inputs, gates in topological order, outputs) against a
    dict keyed on ``(op, children, payload)`` — the same identity the
    e-graph's hashcons uses before any union happens.  The returned
    ``output_classes`` are bit-identical to the real construction's, so
    extraction cache keys computed from a plan match execution's.
    """
    hashcons: Dict[tuple, int] = {}

    def add(op: str, children: tuple = (), payload=None) -> int:
        node = (op, children, payload)
        existing = hashcons.get(node)
        if existing is None:
            existing = hashcons[node] = len(hashcons)
        return existing

    class_of_positive: Dict[int, int] = {}
    literal_classes: Dict[int, int] = {}

    const_class = add(Op.CONST, payload=False)
    class_of_positive[0] = const_class
    literal_classes[0] = const_class
    literal_classes[1] = add(Op.NOT, (const_class,))

    for var in aig.inputs:
        class_id = add(Op.VAR, payload=aig.input_names[var])
        class_of_positive[var] = class_id
        literal_classes[2 * var] = class_id

    def literal_class(lit: int) -> int:
        positive = 2 * lit_var(lit)
        base = literal_classes[positive]
        if not lit_is_compl(lit):
            return base
        key = lit_not(positive)
        existing = literal_classes.get(key)
        if existing is None:
            existing = add(Op.NOT, (base,))
            literal_classes[key] = existing
        return existing

    for gate in aig.topological_gates():
        child0 = literal_class(gate.fanin0)
        child1 = literal_class(gate.fanin1)
        class_id = add(Op.AND, (child0, child1))
        class_of_positive[gate.out_var] = class_id
        literal_classes[2 * gate.out_var] = class_id

    planned = PlannedConstruction(aig=aig, num_classes=0)
    for lit in aig.outputs:
        planned.output_classes.append(literal_class(lit))
    planned.num_classes = len(hashcons)
    return planned
