"""AIG → e-graph construction (Algorithm 1 of the paper).

Nodes are inserted in topological order (leaves first) so that every child
e-class exists before its parent e-node, exactly as Algorithm 1 requires.
The construction records the correspondence between e-classes and original
netlist literals so downstream consumers (reports, the verification bridge)
can map recovered structures back to circuit signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..aig import AIG, lit_is_compl, lit_not, lit_var
from ..egraph import EGraph, ENode, Op

__all__ = ["ConstructionResult", "aig_to_egraph"]


@dataclass
class ConstructionResult:
    """The e-graph built from an AIG plus signal bookkeeping.

    Attributes:
        egraph: the constructed e-graph.
        aig: the source netlist.
        class_of_var: map from AIG variable index to its e-class id (as
            created; call ``egraph.find`` before using after saturation).
        output_classes: e-class ids of the primary-output signals, in output
            order (complemented outputs get an explicit NOT class).
        literal_classes: map from AIG literal to the e-class created for it
            (positive literals always present; complemented ones when used).
    """

    egraph: EGraph
    aig: AIG
    class_of_var: Dict[int, int] = field(default_factory=dict)
    output_classes: List[int] = field(default_factory=list)
    literal_classes: Dict[int, int] = field(default_factory=dict)

    def class_of_literal(self, lit: int) -> int:
        """Return (creating if needed) the e-class of an AIG literal."""
        existing = self.literal_classes.get(lit)
        if existing is not None:
            return self.egraph.find(existing)
        var_class = self.egraph.find(self.class_of_var[lit_var(lit)])
        if not lit_is_compl(lit):
            return var_class
        not_class = self.egraph.add(ENode(Op.NOT, (var_class,)))
        self.literal_classes[lit] = not_class
        return not_class

    def literal_of_class(self, class_id: int) -> Optional[int]:
        """Return an original AIG literal equivalent to ``class_id``, if any."""
        target = self.egraph.find(class_id)
        for lit, recorded in self.literal_classes.items():
            if self.egraph.find(recorded) == target:
                return lit
        return None


def aig_to_egraph(aig: AIG) -> ConstructionResult:
    """Build an e-graph from an AIG (Algorithm 1).

    Every AND gate becomes an ``&`` e-node whose children are the fanin
    classes (with explicit ``~`` e-nodes for complemented fanin edges);
    primary inputs become variable leaves and the constant becomes a constant
    leaf.
    """
    egraph = EGraph()
    result = ConstructionResult(egraph=egraph, aig=aig)

    const_class = egraph.const(False)
    result.class_of_var[0] = const_class
    result.literal_classes[0] = const_class
    result.literal_classes[1] = egraph.add(ENode(Op.NOT, (const_class,)))

    for var in aig.inputs:
        class_id = egraph.var(aig.input_names[var])
        result.class_of_var[var] = class_id
        result.literal_classes[2 * var] = class_id

    def literal_class(lit: int) -> int:
        positive = 2 * lit_var(lit)
        base = result.literal_classes[positive]
        if not lit_is_compl(lit):
            return base
        key = lit_not(positive)
        existing = result.literal_classes.get(key)
        if existing is None:
            existing = egraph.add(ENode(Op.NOT, (base,)))
            result.literal_classes[key] = existing
        return existing

    # Insert gates from leaves to roots (creation order is topological).
    for gate in aig.topological_gates():
        child0 = literal_class(gate.fanin0)
        child1 = literal_class(gate.fanin1)
        class_id = egraph.add(ENode(Op.AND, (child0, child1)))
        result.class_of_var[gate.out_var] = class_id
        result.literal_classes[2 * gate.out_var] = class_id

    for lit in aig.outputs:
        result.output_classes.append(literal_class(lit))

    egraph.rebuild()
    return result
