"""Frozen pre-bitmask reference implementation of Algorithm 2.

This module preserves, verbatim in behaviour, the extraction algorithm the
repo shipped before the bitmask/worklist rewrite of
:mod:`repro.core.extraction`: per-entry ``frozenset`` FA-class sets and a
seed-everything LIFO fixpoint over whole e-classes.  It exists for two
reasons and must not be "optimised":

* **correctness oracle** — ``tests/test_extraction.py`` property-tests the
  production extractor against it (same chosen node, size and FA set for
  every reachable class, across ``PYTHONHASHSEED`` values);
* **benchmark baseline** — ``benchmarks/bench_extraction.py`` measures the
  production extractor's speedup against it (the ISSUE 4 acceptance
  criterion is ≥3× on the 16-bit CSA).

A matching reference for the generic tree extractor
(:class:`repro.egraph.TreeCostExtractor`) lives here too, for the same
reasons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..egraph import EGraph, ENode, Op
from ..egraph.extract import CostFunction, default_cost, node_tiebreak_key

__all__ = ["ReferenceEntry", "ReferenceBoolEExtractor", "reference_tree_extract"]

_SIZE_CAP = 10**9


@dataclass
class ReferenceEntry:
    """Best known extraction choice for one e-class (frozenset form)."""

    fa_classes: FrozenSet[int]
    size: int
    node: ENode

    def key(self) -> Tuple[int, int]:
        return (-len(self.fa_classes), self.size)


class ReferenceBoolEExtractor:
    """The pre-rewrite DAG cost extractor (Algorithm 2), kept as an oracle."""

    def __init__(self, node_cost: Optional[Dict[str, int]] = None) -> None:
        self.node_cost = node_cost or {
            Op.VAR: 0, Op.CONST: 0, Op.FST: 0, Op.SND: 0,
            Op.NOT: 1, Op.AND: 1, Op.OR: 1, Op.XOR: 1, Op.XNOR: 1,
            Op.NAND: 1, Op.NOR: 1, Op.XOR3: 2, Op.MAJ: 2, Op.FA: 2, Op.HA: 1,
        }

    def extract(self, egraph: EGraph) -> Dict[int, ReferenceEntry]:
        """Seed-everything LIFO fixpoint; returns entries per canonical class."""
        egraph.rebuild()
        entries: Dict[int, ReferenceEntry] = {}

        parents: Dict[int, Set[int]] = {}
        class_nodes: Dict[int, List[ENode]] = {}
        tiebreak: Dict[ENode, Tuple] = {}
        for eclass in egraph.classes():
            class_id = egraph.find(eclass.id)
            nodes = egraph.enodes(class_id)
            class_nodes[class_id] = nodes
            for node in nodes:
                tiebreak[node] = node_tiebreak_key(egraph, node)
                for child in node.children:
                    parents.setdefault(egraph.find(child), set()).add(class_id)

        pending: Set[int] = set(class_nodes.keys())
        queue: List[int] = list(class_nodes.keys())
        while queue:
            class_id = queue.pop()
            pending.discard(class_id)
            best = entries.get(class_id)
            improved = False
            for node in class_nodes[class_id]:
                child_entries = []
                feasible = True
                for child in node.children:
                    child_entry = entries.get(egraph.find(child))
                    if child_entry is None:
                        feasible = False
                        break
                    child_entries.append(child_entry)
                if not feasible:
                    continue
                fa_classes: FrozenSet[int] = frozenset().union(
                    *[entry.fa_classes for entry in child_entries]) \
                    if child_entries else frozenset()
                if node.op == Op.FA:
                    fa_classes = fa_classes | {class_id}
                size = min(_SIZE_CAP, self.node_cost.get(node.op, 1)
                           + sum(entry.size for entry in child_entries))
                candidate = ReferenceEntry(fa_classes=fa_classes, size=size,
                                           node=node)
                if best is None:
                    better = True
                else:
                    candidate_key, best_key = candidate.key(), best.key()
                    if candidate_key < best_key:
                        better = True
                    elif candidate_key == best_key:
                        if node == best.node:
                            better = fa_classes != best.fa_classes
                        else:
                            better = tiebreak[node] < tiebreak[best.node]
                    else:
                        better = False
                if better:
                    best = candidate
                    improved = True
            if improved and best is not None:
                entries[class_id] = best
                for parent in sorted(parents.get(class_id, ())):
                    if parent not in pending:
                        pending.add(parent)
                        queue.append(parent)
        return entries


def reference_tree_extract(egraph: EGraph,
                           cost_function: Optional[CostFunction] = None
                           ) -> Dict[int, Tuple[float, ENode]]:
    """The pre-rewrite repeated-full-pass tree extractor, kept as an oracle.

    Returns ``{canonical class id: (cost, chosen node)}`` — the same
    fixpoint :class:`repro.egraph.TreeCostExtractor` must reach.
    """
    cost_function = cost_function or default_cost
    egraph.rebuild()
    choices: Dict[int, Tuple[float, ENode]] = {}

    changed = True
    while changed:
        changed = False
        for eclass in egraph.classes():
            class_id = egraph.find(eclass.id)
            best = choices.get(class_id)
            for node in egraph.enodes(class_id):
                child_costs = []
                feasible = True
                for child in node.children:
                    child_choice = choices.get(egraph.find(child))
                    if child_choice is None:
                        feasible = False
                        break
                    child_costs.append(child_choice[0])
                if not feasible:
                    continue
                cost = cost_function(node, child_costs)
                better = best is None or cost < best[0] - 1e-12
                if not better and best is not None and cost <= best[0]:
                    better = (node_tiebreak_key(egraph, node)
                              < node_tiebreak_key(egraph, best[1]))
                if better:
                    best = (cost, node)
                    choices[class_id] = best
                    changed = True
    return choices
