"""Ruleset R1: basic Boolean-algebra rewrite rules.

The paper's R1 contains 68 basic Boolean rules (commutativity, associativity,
De Morgan, identities, absorption, distributivity, consensus, ...) whose job
is to expand the e-graph with functionally equivalent forms before the
XOR/MAJ identification rules of R2 run.  BoolE also ships a *lightweight*
subset, pruned for scalability on large benchmarks (optimisation trick 1 in
Section IV-A2); the same split is provided here.
"""

from __future__ import annotations

from typing import List

from ..egraph import Rewrite

__all__ = ["basic_rules", "lightweight_basic_rules", "full_basic_rules"]


def _directed(name: str, lhs: str, rhs: str) -> List[Rewrite]:
    return [Rewrite.parse(name, lhs, rhs, group="R1")]


def _both(name: str, lhs: str, rhs: str) -> List[Rewrite]:
    return [Rewrite.parse(f"{name}-lr", lhs, rhs, group="R1"),
            Rewrite.parse(f"{name}-rl", rhs, lhs, group="R1")]


def _core_rules() -> List[Rewrite]:
    """Rules that are always active (lightweight subset).

    The lightweight profile keeps the e-graph growth roughly linear: De
    Morgan is applied in the direction that introduces OR views of the
    AND/NOT netlist (the form the R2 identification patterns use), and the
    explosive regrouping rules (AND/OR associativity, distributivity) are
    reserved for the full profile.
    """
    rules: List[Rewrite] = []
    # Commutativity.
    rules += _directed("and-comm", "(& ?a ?b)", "(& ?b ?a)")
    rules += _directed("or-comm", "(| ?a ?b)", "(| ?b ?a)")
    # Double negation.
    rules += _directed("not-not", "(~ (~ ?a))", "?a")
    # De Morgan, applied towards the OR view of the netlist.
    rules += _directed("demorgan-and", "(~ (& ?a ?b))", "(| (~ ?a) (~ ?b))")
    rules += _directed("or-intro", "(~ (& (~ ?a) (~ ?b)))", "(| ?a ?b)")
    rules += _directed("nor-intro", "(& (~ ?a) (~ ?b))", "(~ (| ?a ?b))")
    # Identity / annihilator.
    rules += _directed("and-true", "(& ?a 1)", "?a")
    rules += _directed("and-false", "(& ?a 0)", "0")
    rules += _directed("or-false", "(| ?a 0)", "?a")
    rules += _directed("or-true", "(| ?a 1)", "1")
    # Idempotence and complement.
    rules += _directed("and-idem", "(& ?a ?a)", "?a")
    rules += _directed("or-idem", "(| ?a ?a)", "?a")
    rules += _directed("and-compl", "(& ?a (~ ?a))", "0")
    rules += _directed("or-compl", "(| ?a (~ ?a))", "1")
    # Absorption.
    rules += _directed("and-absorb", "(& ?a (| ?a ?b))", "?a")
    rules += _directed("or-absorb", "(| ?a (& ?a ?b))", "?a")
    return rules


def _extended_rules() -> List[Rewrite]:
    """Rules only enabled in the full (non-lightweight) R1 configuration."""
    rules: List[Rewrite] = []
    # Reverse De Morgan directions.
    rules += _directed("demorgan-and-rl", "(| (~ ?a) (~ ?b))", "(~ (& ?a ?b))")
    rules += _both("demorgan-or", "(~ (| ?a ?b))", "(& (~ ?a) (~ ?b))")
    # Associativity (explosive: every regrouping of every AND/OR tree).
    rules += _both("and-assoc", "(& (& ?a ?b) ?c)", "(& ?a (& ?b ?c))")
    rules += _both("or-assoc", "(| (| ?a ?b) ?c)", "(| ?a (| ?b ?c))")
    rules += _directed("and-assoc-swap", "(& (& ?a ?b) ?c)", "(& (& ?a ?c) ?b)")
    rules += _directed("or-assoc-swap", "(| (| ?a ?b) ?c)", "(| (| ?a ?c) ?b)")
    # Distributivity (both directions; expensive, excluded from lightweight).
    rules += _both("and-over-or", "(& ?a (| ?b ?c))", "(| (& ?a ?b) (& ?a ?c))")
    rules += _both("or-over-and", "(| ?a (& ?b ?c))", "(& (| ?a ?b) (| ?a ?c))")
    # Absorption variants.
    rules += _directed("and-absorb-neg", "(& ?a (| (~ ?a) ?b))", "(& ?a ?b)")
    rules += _directed("or-absorb-neg", "(| ?a (& (~ ?a) ?b))", "(| ?a ?b)")
    # Consensus.
    rules += _directed("consensus",
                       "(| (| (& ?a ?b) (& (~ ?a) ?c)) (& ?b ?c))",
                       "(| (& ?a ?b) (& (~ ?a) ?c))")
    # Redundant literal removal.
    rules += _directed("and-or-same", "(& (| ?a ?b) (| ?a (~ ?b)))", "?a")
    rules += _directed("or-and-same", "(| (& ?a ?b) (& ?a (~ ?b)))", "?a")
    # Constant propagation through NOT.
    rules += _directed("not-true", "(~ 1)", "0")
    rules += _directed("not-false", "(~ 0)", "1")
    # NAND/NOR style regroupings that show up after technology mapping.
    rules += _directed("nand-nand", "(~ (& (~ (& ?a ?b)) (~ (& ?a ?c))))",
                       "(& ?a (| ?b ?c))")
    rules += _directed("nor-nor", "(~ (| (~ (| ?a ?b)) (~ (| ?a ?c))))",
                       "(| ?a (& ?b ?c))")
    return rules


def lightweight_basic_rules() -> List[Rewrite]:
    """The pruned R1 used by default on large benchmarks."""
    return _core_rules()


def full_basic_rules() -> List[Rewrite]:
    """The complete R1 ruleset."""
    return _core_rules() + _extended_rules()


def basic_rules(lightweight: bool = True) -> List[Rewrite]:
    """Return R1, either the lightweight subset or the full set."""
    return lightweight_basic_rules() if lightweight else full_basic_rules()
