"""The end-to-end BoolE pipeline (Figure 2 of the paper).

``BoolEPipeline.run`` takes a gate-level AIG and performs:

1. e-graph construction (Algorithm 1),
2. two-phase incremental saturation — R1 basic Boolean rules followed by R2
   XOR/MAJ identification rules (optimisation trick 2),
3. redundancy pruning of permuted XOR3/MAJ/FA e-nodes (trick 3),
4. multi-output FA structure insertion (Figure 3),
5. DAG-based exact extraction (Algorithm 2) and
6. reconstruction of the extracted netlist as an AIG exposing the recovered
   full adders.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..aig import AIG
from ..egraph import Op, Runner, RunnerLimits, RunnerReport
from .construct import ConstructionResult, aig_to_egraph
from .extraction import (
    BoolEExtraction,
    BoolEExtractor,
    FABlockRecord,
    reconstruct_aig,
)
from .fa_structure import FAInsertionReport, count_npn_fa_pairs, insert_fa_structures
from .rules_basic import basic_rules
from .rules_xor_maj import identification_rules

__all__ = ["BoolEOptions", "BoolEResult", "BoolEPipeline", "run_boole"]


@dataclass
class BoolEOptions:
    """Configuration of the BoolE pipeline.

    Attributes:
        r1_iterations: iteration budget for the basic-rule phase (the paper
            uses 10; smaller values already saturate the lightweight ruleset).
        r2_iterations: iteration budget for the identification phase (paper: 3).
        lightweight_rules: use the pruned R1 subset (paper trick 1).
        include_rule_variants: generate the input-negation variants of R2.
        max_nodes: e-graph node limit per phase.
        time_limit: wall-clock limit (seconds) per phase.
        match_limit: initial per-rule match budget per iteration for the
            back-off scheduler; rules exceeding it are banned for
            exponentially growing windows (see ``docs/performance.md``).
            ``None`` disables back-off.
        ban_length: initial back-off ban window, in iterations.
        max_matches_per_rule: **deprecated** — the old flat per-rule match
            cap.  When set it overrides ``match_limit`` with a
            compatibility scheduler (one-iteration bans, budget seeded by
            the cap and doubling on repeated bans) instead of silently
            dropping a nondeterministic match subset.
        prune_redundant: delete duplicate permuted XOR3/MAJ/FA e-nodes after
            saturation (paper trick 3).
        extract: run DAG extraction and netlist reconstruction.
        count_npn: count NPN FA pairs on the saturated e-graph.
        incremental: use delta e-matching after each phase's first iteration
            (see ``docs/performance.md``); disable to force full scans.
        debug_check_full: assert after every delta iteration that a full
            scan finds nothing more (very slow; debugging only).
    """

    r1_iterations: int = 6
    r2_iterations: int = 4
    lightweight_rules: bool = True
    include_rule_variants: bool = True
    max_nodes: int = 400_000
    time_limit: float = 120.0
    match_limit: Optional[int] = 100_000
    ban_length: int = 2
    max_matches_per_rule: Optional[int] = None
    prune_redundant: bool = True
    extract: bool = True
    count_npn: bool = True
    incremental: bool = True
    debug_check_full: bool = False


@dataclass
class BoolEResult:
    """Everything the pipeline produces for one input netlist."""

    source: AIG
    construction: ConstructionResult
    r1_report: RunnerReport
    r2_report: RunnerReport
    fa_report: FAInsertionReport
    extraction: Optional[BoolEExtraction] = None
    extracted_aig: Optional[AIG] = None
    fa_blocks: List[FABlockRecord] = field(default_factory=list)
    num_npn_fas: int = 0
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def num_exact_fas(self) -> int:
        """Exact FAs present in the extracted netlist (distinct FA blocks)."""
        return len(self.fa_blocks)

    @property
    def num_paired_fas(self) -> int:
        """Exact FA structures paired in the e-graph (before extraction)."""
        return self.fa_report.num_exact_fas

    @property
    def total_runtime(self) -> float:
        """End-to-end runtime in seconds."""
        return self.timings.get("total", 0.0)

    @property
    def egraph_classes(self) -> int:
        """Number of e-classes after saturation."""
        return self.construction.egraph.num_classes

    @property
    def egraph_nodes(self) -> int:
        """Number of e-nodes after saturation."""
        return self.construction.egraph.num_nodes

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by the benchmark harness."""
        return {
            "aig_nodes": self.source.num_gates,
            "egraph_classes": self.egraph_classes,
            "egraph_nodes": self.egraph_nodes,
            "exact_fas": self.num_exact_fas,
            "paired_fas": self.num_paired_fas,
            "npn_fas": self.num_npn_fas,
            "runtime": self.total_runtime,
        }


class BoolEPipeline:
    """Exact symbolic reasoning for Boolean netlists via equality saturation."""

    def __init__(self, options: Optional[BoolEOptions] = None) -> None:
        self.options = options or BoolEOptions()
        self._r1 = basic_rules(lightweight=self.options.lightweight_rules)
        self._r2 = identification_rules(self.options.include_rule_variants)

    @property
    def num_rules(self) -> Dict[str, int]:
        """Rule counts of the two phases."""
        return {"R1": len(self._r1), "R2": len(self._r2)}

    def run(self, aig: AIG) -> BoolEResult:
        """Run the full BoolE flow on an AIG and return the result bundle."""
        options = self.options
        timings: Dict[str, float] = {}
        start = time.perf_counter()

        t0 = time.perf_counter()
        construction = aig_to_egraph(aig)
        timings["construct"] = time.perf_counter() - t0
        egraph = construction.egraph

        limits = RunnerLimits(
            max_iterations=options.r1_iterations,
            max_nodes=options.max_nodes,
            time_limit=options.time_limit,
            match_limit=options.match_limit,
            ban_length=options.ban_length,
            max_matches_per_rule=options.max_matches_per_rule,
        )
        t0 = time.perf_counter()
        r1_report = Runner(limits, incremental=options.incremental,
                           debug_check_full=options.debug_check_full
                           ).run(egraph, self._r1)
        timings["r1"] = time.perf_counter() - t0

        limits = RunnerLimits(
            max_iterations=options.r2_iterations,
            max_nodes=options.max_nodes,
            time_limit=options.time_limit,
            match_limit=options.match_limit,
            ban_length=options.ban_length,
            max_matches_per_rule=options.max_matches_per_rule,
        )
        t0 = time.perf_counter()
        r2_report = Runner(limits, incremental=options.incremental,
                           debug_check_full=options.debug_check_full
                           ).run(egraph, self._r2)
        timings["r2"] = time.perf_counter() - t0

        if options.prune_redundant:
            t0 = time.perf_counter()
            egraph.prune_duplicates({Op.XOR3, Op.MAJ, Op.FA, Op.XOR, Op.AND, Op.OR})
            timings["prune"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        fa_report = insert_fa_structures(egraph)
        timings["fa_pairing"] = time.perf_counter() - t0

        num_npn = 0
        if options.count_npn:
            t0 = time.perf_counter()
            num_npn = count_npn_fa_pairs(egraph)
            timings["npn_count"] = time.perf_counter() - t0

        result = BoolEResult(
            source=aig,
            construction=construction,
            r1_report=r1_report,
            r2_report=r2_report,
            fa_report=fa_report,
            num_npn_fas=num_npn,
            timings=timings,
        )

        if options.extract:
            t0 = time.perf_counter()
            extraction = BoolEExtractor().extract(egraph)
            timings["extract"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            extracted, blocks = reconstruct_aig(construction, extraction)
            timings["reconstruct"] = time.perf_counter() - t0
            result.extraction = extraction
            result.extracted_aig = extracted
            result.fa_blocks = blocks

        timings["total"] = time.perf_counter() - start
        return result


def run_boole(aig: AIG, options: Optional[BoolEOptions] = None) -> BoolEResult:
    """Convenience wrapper: run the BoolE pipeline with ``options`` on ``aig``."""
    return BoolEPipeline(options).run(aig)
