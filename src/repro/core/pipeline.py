"""The end-to-end BoolE pipeline (Figure 2 of the paper).

``BoolEPipeline.run`` executes a :class:`~repro.core.phases.PhaseGraph`
of six first-class phases (see ``docs/architecture.md``):

1. ``construct`` — e-graph construction (Algorithm 1),
2. ``saturate-r1`` — basic Boolean rules (optimisation trick 2),
3. ``saturate-r2`` — XOR/MAJ identification rules,
4. ``insert-fa`` — redundancy pruning (trick 3), multi-output FA
   structure insertion (Figure 3) and the NPN count,
5. ``extract`` — DAG-based exact extraction (Algorithm 2), and
6. ``reconstruct`` — the extracted netlist as an AIG exposing the
   recovered full adders.

Phases 1–4 are a pure function of ``(netlist, options, ruleset)`` — the
determinism guarantees of ``docs/performance.md`` — so their combined
boundary is a cacheable artifact: pass ``store=`` (an
:class:`~repro.store.ArtifactStore` or a directory path) and the executor
restores the deepest warm phase instead of recomputing, persisting
boundary artifacts on the way (see ``docs/serialization.md``).  Phases
5–6 share a second, independent ``kind="extraction"`` artifact keyed on
(saturated-graph key, extractor cost table, reconstruction roots,
refinement budget): a fully warm run loads the snapshot and the
extraction products and skips cost propagation entirely.

With ``checkpoint_every`` set, the two saturation phases additionally
write mid-phase ``kind="checkpoint"`` artifacts every N iterations: a
killed run — say a 32-bit R2 phase — resumes from its latest checkpoint
(replaying only the remaining iterations, bit-identical to an
uninterrupted run) instead of restarting the phase.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..aig import AIG
from ..egraph import RunnerLimits, RunnerReport
from ..store import (
    ArtifactStore,
    combine_cache_key,
    extraction_cache_key,
    fingerprint_aig,
    fingerprint_options,
    fingerprint_ruleset,
)
from .construct import ConstructionResult
from .extraction import BoolEExtraction, BoolEExtractor, FABlockRecord
from .fa_structure import FAInsertionReport
from .phases import PhaseContext, PhaseGraph, PipelinePlan, boole_phases
from .rules_basic import basic_rules
from .rules_xor_maj import identification_rules

__all__ = ["BoolEOptions", "BoolEResult", "BoolEPipeline", "run_boole"]

#: Default initial per-rule match budget of the pipeline (wider than the
#: raw :class:`RunnerLimits` default because the R2 identification rules
#: legitimately produce huge match sets on wide multipliers).  Kept as a
#: constant so the deprecated ``max_matches_per_rule`` alias can tell an
#: explicitly configured ``match_limit`` apart from the untouched default.
DEFAULT_PIPELINE_MATCH_LIMIT = 100_000


@dataclass
class BoolEOptions:
    """Configuration of the BoolE pipeline.

    Attributes:
        r1_iterations: iteration budget for the basic-rule phase (the paper
            uses 10; smaller values already saturate the lightweight ruleset).
        r2_iterations: iteration budget for the identification phase (paper: 3).
        lightweight_rules: use the pruned R1 subset (paper trick 1).
        include_rule_variants: generate the input-negation variants of R2.
        max_nodes: e-graph node limit per phase.
        time_limit: wall-clock limit (seconds) per phase.
        match_limit: initial per-rule match budget per iteration for the
            back-off scheduler; rules exceeding it are banned for
            exponentially growing windows (see ``docs/performance.md``).
            ``None`` disables back-off.
        ban_length: initial back-off ban window, in iterations.
        max_matches_per_rule: **deprecated** — the old flat per-rule match
            cap.  When set it overrides ``match_limit`` with a
            compatibility scheduler (one-iteration bans, budget seeded by
            the cap and doubling on repeated bans) instead of silently
            dropping a nondeterministic match subset.
        prune_redundant: delete duplicate permuted XOR3/MAJ/FA e-nodes after
            saturation (paper trick 3).
        extract: run DAG extraction and netlist reconstruction.
        refine_rounds: bounded choose→repair refinement iterations after
            the first extraction pass; the best materialised FA count
            wins (see :class:`~repro.core.extraction.BoolEExtractor`).
            ``0`` keeps the single-pass extractor.
        count_npn: count NPN FA pairs on the saturated e-graph.
        incremental: use delta e-matching after each phase's first iteration
            (see ``docs/performance.md``); disable to force full scans.
        engine: saturation backend — ``"dense"`` (default) runs the
            struct-of-arrays engine with batched e-matching
            (:class:`~repro.egraph.DenseEGraph`), ``"python"`` the
            object-graph reference engine.  The engines are bit-identical
            (same saturated graphs, same artifact bytes), so the choice is
            pure performance and is excluded from cache fingerprints:
            artifacts produced under either engine warm the other.
        checkpoint_every: with a store configured, write a mid-phase
            ``kind="checkpoint"`` artifact after every this-many
            saturation iterations (both R1 and R2); a killed run resumes
            from its latest checkpoint.  ``None`` disables checkpointing.
            Cadence never changes results, so it is excluded from cache
            fingerprints.
        debug_check_full: assert after every delta iteration that a full
            scan finds nothing more (very slow; debugging only).
    """

    r1_iterations: int = 6
    r2_iterations: int = 4
    lightweight_rules: bool = True
    include_rule_variants: bool = True
    max_nodes: int = 400_000
    time_limit: float = 120.0
    match_limit: Optional[int] = DEFAULT_PIPELINE_MATCH_LIMIT
    ban_length: int = 2
    max_matches_per_rule: Optional[int] = None
    prune_redundant: bool = True
    extract: bool = True
    refine_rounds: int = 0
    count_npn: bool = True
    incremental: bool = True
    engine: str = "dense"
    checkpoint_every: Optional[int] = None
    debug_check_full: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ("dense", "python"):
            raise ValueError(
                f"unknown e-graph engine {self.engine!r}; expected 'dense' "
                "or 'python'")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                "checkpoint_every must be >= 1 (or None to disable "
                "checkpointing)")
        if self.refine_rounds < 0:
            raise ValueError("refine_rounds must be >= 0")
        if self.max_matches_per_rule is None:
            return
        if (self.match_limit is not None
                and self.match_limit != DEFAULT_PIPELINE_MATCH_LIMIT):
            raise ValueError(
                "max_matches_per_rule (deprecated) cannot be combined with "
                "an explicit match_limit: the alias builds its own flat "
                "compatibility scheduler.  Drop the alias and configure "
                "match_limit/ban_length instead.")
        warnings.warn(
            "BoolEOptions.max_matches_per_rule is deprecated; use "
            "match_limit/ban_length (the alias builds a flat compatibility "
            "scheduler with one-iteration bans)",
            DeprecationWarning, stacklevel=3)

    def cache_token(self) -> Tuple[object, ...]:
        """Hashable identity of this options object.

        The key under which pipeline caches (the batch overlay planner,
        the service's per-options pipeline table) share one
        :class:`BoolEPipeline` — and with it the parsed rulesets and
        memoized fingerprints — across jobs configured identically.
        """
        return dataclasses.astuple(self)


@dataclass
class BoolEResult:
    """Everything the pipeline produces for one input netlist."""

    source: AIG
    #: ``None`` on :meth:`lightweight` copies (the e-graph and the
    #: construction bookkeeping do not cross process boundaries).
    construction: Optional[ConstructionResult]
    r1_report: RunnerReport
    r2_report: RunnerReport
    fa_report: FAInsertionReport
    extraction: Optional[BoolEExtraction] = None
    extracted_aig: Optional[AIG] = None
    fa_blocks: List[FABlockRecord] = field(default_factory=list)
    num_npn_fas: int = 0
    timings: Dict[str, float] = field(default_factory=dict)
    #: True when the saturated e-graph came from an artifact store instead
    #: of being recomputed (``timings`` then has ``cache_load`` instead of
    #: the construct/r1/r2/prune/fa_pairing stages).
    cache_hit: bool = False
    #: True when the extraction + reconstructed netlist came from a
    #: ``kind="extraction"`` artifact (``timings`` then has
    #: ``extraction_cache_load`` instead of ``extract``/``reconstruct`` —
    #: cost propagation was skipped entirely).
    extraction_cache_hit: bool = False
    #: Name of the phase this run resumed mid-way from a
    #: ``kind="checkpoint"`` artifact (``None`` for uninterrupted runs).
    resumed_phase: Optional[str] = None
    #: (classes, nodes) snapshot kept by :meth:`lightweight` so the shape
    #: properties survive dropping the e-graph.
    _egraph_shape: Optional[Tuple[int, int]] = field(default=None,
                                                     repr=False)

    @property
    def num_exact_fas(self) -> int:
        """Exact FAs present in the extracted netlist (distinct FA blocks)."""
        return len(self.fa_blocks)

    @property
    def num_paired_fas(self) -> int:
        """Exact FA structures paired in the e-graph (before extraction)."""
        return self.fa_report.num_exact_fas

    @property
    def total_runtime(self) -> float:
        """End-to-end runtime in seconds."""
        return self.timings.get("total", 0.0)

    @property
    def egraph_classes(self) -> int:
        """Number of e-classes after saturation."""
        if self.construction is None:
            return self._egraph_shape[0] if self._egraph_shape else 0
        return self.construction.egraph.num_classes

    @property
    def egraph_nodes(self) -> int:
        """Number of e-nodes after saturation."""
        if self.construction is None:
            return self._egraph_shape[1] if self._egraph_shape else 0
        return self.construction.egraph.num_nodes

    def lightweight(self) -> "BoolEResult":
        """A copy safe to ship across process boundaries.

        Drops the two members that are heavy and bound to live e-graph
        state — the construction (with its e-graph) and the extraction
        entry table — while keeping everything report-shaped: both runner
        reports, the FA pairing report, the reconstructed netlist, the FA
        blocks, the counts and the timings.  ``summary()`` and all shape
        properties keep answering identically.
        """
        return replace(
            self, construction=None, extraction=None,
            _egraph_shape=(self.egraph_classes, self.egraph_nodes))

    def saturation_stats(self) -> Dict[str, object]:
        """Engine and e-matching telemetry of this run's saturation phases.

        ``engine`` is ``None`` when no saturation actually executed in this
        process (fully warm runs decode their reports from artifacts, which
        deliberately do not carry engine provenance — the engines are
        bit-identical).  ``ematch_ops`` counts e-nodes scanned by the
        matcher; the dense engine counts operator-span scans and the
        reference engine full-class scans, so rates are comparable within
        an engine, not across engines.
        """
        ops = self.r1_report.ematch_ops + self.r2_report.ematch_ops
        seconds = self.r1_report.total_time + self.r2_report.total_time
        return {
            "engine": self.r2_report.engine if ops else None,
            "ematch_ops": ops,
            "ematch_ops_per_s": (round(ops / seconds, 1)
                                 if ops and seconds > 0 else 0.0),
            "saturation_seconds": round(seconds, 3),
        }

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by the benchmark harness."""
        return {
            "aig_nodes": self.source.num_gates,
            "egraph_classes": self.egraph_classes,
            "egraph_nodes": self.egraph_nodes,
            "exact_fas": self.num_exact_fas,
            "paired_fas": self.num_paired_fas,
            "npn_fas": self.num_npn_fas,
            "runtime": self.total_runtime,
        }


class BoolEPipeline:
    """Exact symbolic reasoning for Boolean netlists via equality saturation.

    Args:
        options: pipeline configuration (defaults to :class:`BoolEOptions`).
        store: default artifact store for :meth:`run` — an
            :class:`~repro.store.ArtifactStore` or a directory path.
            ``None`` disables caching unless :meth:`run` is given one.
        extractor: the DAG extractor to run.  Defaults to a fresh
            :class:`BoolEExtractor` configured with
            ``options.refine_rounds``.  Its ``node_cost`` table and
            refinement budget participate in the extraction cache key, so
            a custom cost model never hits a default-cost artifact.
    """

    def __init__(self, options: Optional[BoolEOptions] = None, *,
                 store: Union[ArtifactStore, str, Path, None] = None,
                 extractor: Optional[BoolEExtractor] = None) -> None:
        self.options = options or BoolEOptions()
        self.store = _as_store(store)
        self.extractor = extractor or BoolEExtractor(
            refine_rounds=self.options.refine_rounds)
        self._r1 = basic_rules(lightweight=self.options.lightweight_rules)
        self._r2 = identification_rules(self.options.include_rule_variants)
        self._graph = PhaseGraph(boole_phases(self))
        # Options/ruleset fingerprints are per-pipeline constants; computed
        # lazily once so batch sweeps pay only the per-AIG digest per job.
        self._static_fingerprints: Optional[Tuple[str, List[str]]] = None

    @property
    def num_rules(self) -> Dict[str, int]:
        """Rule counts of the two phases."""
        return {"R1": len(self._r1), "R2": len(self._r2)}

    @property
    def phases(self) -> List[str]:
        """Names of the pipeline's phases, in execution order."""
        return [phase.name for phase in self._graph.phases]

    def cache_key(self, aig: AIG) -> str:
        """Content-addressed store key of ``aig``'s saturated e-graph.

        Combines the fingerprints of the netlist, the options and both
        rulesets (see :mod:`repro.store.fingerprint`); identical inputs
        yield identical keys across processes and hash seeds.
        """
        if self._static_fingerprints is None:
            self._static_fingerprints = (
                fingerprint_options(self.options),
                [fingerprint_ruleset(rules)
                 for rules in (self._r1, self._r2)])
        options_fp, ruleset_fps = self._static_fingerprints
        return combine_cache_key(fingerprint_aig(aig), options_fp,
                                 ruleset_fps)

    def extraction_key(self, saturated_key: str,
                       roots: List[int]) -> str:
        """Content key of the ``kind="extraction"`` artifact for this
        pipeline's extractor over ``roots``."""
        return extraction_cache_key(saturated_key, self.extractor.node_cost,
                                    roots,
                                    refine_rounds=self.extractor.refine_rounds)

    def _phase_limits(self, iterations: int) -> RunnerLimits:
        options = self.options
        if options.max_matches_per_rule is not None:
            # The options object already warned about the alias at
            # construction; re-warning for each internal RunnerLimits
            # would just repeat it.  ``match_limit`` stays at the
            # RunnerLimits default, which the alias overrides anyway.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                return RunnerLimits(
                    max_iterations=iterations,
                    max_nodes=options.max_nodes,
                    time_limit=options.time_limit,
                    ban_length=options.ban_length,
                    max_matches_per_rule=options.max_matches_per_rule,
                )
        return RunnerLimits(
            max_iterations=iterations,
            max_nodes=options.max_nodes,
            time_limit=options.time_limit,
            match_limit=options.match_limit,
            ban_length=options.ban_length,
        )

    def plan(self, aig: AIG, *,
             store: Union[ArtifactStore, str, Path, None] = None,
             assume_present: Tuple[str, ...] = (),
             assume_absent: Tuple[str, ...] = (),
             kinds: Optional[Dict[str, str]] = None) -> PipelinePlan:
        """Predict what :meth:`run` would do, without doing any of it.

        Walks the phase graph computing every ``cache_key`` /
        ``checkpoint_key`` and classifying each phase as warm or cold
        against the store — zero phase execution, zero e-graph
        construction (construction-time class ids are predicted by
        :func:`~repro.core.construct.planned_construction`) and zero
        store mutation (only read-only :meth:`~repro.store.ArtifactStore.probe`
        calls, which never touch objects or LRU mtimes).

        ``assume_present`` / ``assume_absent`` overlay keys a *previous*
        planned job would have written or deleted by the time this one
        runs — the batch planner threads them through a sweep so later
        jobs see their predecessors' warmth.  ``kinds`` is an optional
        pre-read :meth:`~repro.store.ArtifactStore.kinds` snapshot so
        sweep planners pay one index read, not one per job.

        Unlike :meth:`run`, keys are computed even without a store (the
        plan doubles as the key oracle for the CLI); every enabled phase
        then classifies as cold.
        """
        store = _as_store(store) or self.store
        ctx = PhaseContext(store=None)
        ctx["aig"] = aig
        ctx["base_key"] = self.cache_key(aig)
        probe = None
        if store is not None:
            present = frozenset(assume_present)
            absent = frozenset(assume_absent)
            if kinds is None:
                kinds = store.kinds()

            def probe(key: str, kind: str) -> bool:
                if key in absent:
                    return False
                if key in present:
                    return True
                return store.probe(key, expected_kind=kind, kinds=kinds)

        return self._graph.plan(ctx, probe)

    def run(self, aig: AIG, *,
            store: Union[ArtifactStore, str, Path, None] = None
            ) -> BoolEResult:
        """Run the full BoolE flow on an AIG and return the result bundle.

        With a ``store`` (argument or constructor default), the phase
        graph restores the deepest warm phase by content key instead of
        recomputing: the saturated boundary (phases 1–4 plus the NPN
        count, ``result.cache_hit``) and the extraction boundary (phases
        5–6, ``result.extraction_cache_hit``) are each one artifact, and
        interrupted saturation phases resume from their
        ``kind="checkpoint"`` artifact (``result.resumed_phase``).  A
        fully warm run costs one snapshot load and skips cost propagation
        entirely.
        """
        store = _as_store(store) or self.store
        start = time.perf_counter()

        ctx = PhaseContext(store=store)
        ctx["aig"] = aig
        ctx["base_key"] = self.cache_key(aig) if store is not None else None
        self._graph.execute(ctx)

        timings = ctx.timings
        timings["total"] = time.perf_counter() - start
        return BoolEResult(
            source=aig,
            construction=ctx["construction"],
            r1_report=ctx["r1_report"],
            r2_report=ctx["r2_report"],
            fa_report=ctx["fa_report"],
            extraction=ctx.get("extraction"),
            extracted_aig=ctx.get("extracted_aig"),
            fa_blocks=ctx.get("fa_blocks", []),
            num_npn_fas=ctx["num_npn"],
            timings=timings,
            cache_hit=ctx.artifact_hits.get("insert-fa", False),
            extraction_cache_hit=ctx.artifact_hits.get("reconstruct", False),
            resumed_phase=ctx.resumed_phase,
        )


def _as_store(store: Union[ArtifactStore, str, Path, None]
              ) -> Optional[ArtifactStore]:
    if store is None or isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)


def run_boole(aig: AIG, options: Optional[BoolEOptions] = None, *,
              store: Union[ArtifactStore, str, Path, None] = None
              ) -> BoolEResult:
    """Convenience wrapper: run the BoolE pipeline with ``options`` on ``aig``."""
    return BoolEPipeline(options, store=store).run(aig)
