"""The end-to-end BoolE pipeline (Figure 2 of the paper).

``BoolEPipeline.run`` takes a gate-level AIG and performs:

1. e-graph construction (Algorithm 1),
2. two-phase incremental saturation — R1 basic Boolean rules followed by R2
   XOR/MAJ identification rules (optimisation trick 2),
3. redundancy pruning of permuted XOR3/MAJ/FA e-nodes (trick 3),
4. multi-output FA structure insertion (Figure 3),
5. DAG-based exact extraction (Algorithm 2) and
6. reconstruction of the extracted netlist as an AIG exposing the recovered
   full adders.

Stages 1–4 are a pure function of ``(netlist, options, ruleset)`` — the
determinism guarantees of ``docs/performance.md`` — so their combined
result can be cached: pass ``store=`` (an
:class:`~repro.store.ArtifactStore` or a directory path) and the pipeline
looks the saturated e-graph up by content fingerprint, skipping straight
to extraction on a hit and persisting the artifact on a miss (see
``docs/serialization.md``).

Stages 5–6 are cached the same way as a second, independent
``kind="extraction"`` artifact keyed on (saturated-graph key, extractor
cost table, reconstruction roots): a fully warm run loads the snapshot
and the extraction products and skips cost propagation entirely, going
straight to whatever the caller does next (typically verification).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..aig import AIG
from ..egraph import EGraph, Op, Runner, RunnerLimits, RunnerReport
from ..store import (
    KIND_EXTRACTION,
    KIND_SATURATED,
    ArtifactStore,
    SnapshotError,
    aig_from_wire,
    aig_to_wire,
    combine_cache_key,
    egraph_from_wire,
    egraph_to_wire,
    extraction_cache_key,
    extraction_from_wire,
    extraction_to_wire,
    fingerprint_aig,
    fingerprint_options,
    fingerprint_ruleset,
    report_from_wire,
    report_to_wire,
)
from .construct import ConstructionResult, aig_to_egraph
from .extraction import (
    BoolEExtraction,
    BoolEExtractor,
    FABlockRecord,
    reconstruct_aig,
)
from .fa_structure import (
    FAInsertionReport,
    FAPair,
    count_npn_fa_pairs,
    insert_fa_structures,
)
from .rules_basic import basic_rules
from .rules_xor_maj import identification_rules

__all__ = ["BoolEOptions", "BoolEResult", "BoolEPipeline", "run_boole"]

#: Default initial per-rule match budget of the pipeline (wider than the
#: raw :class:`RunnerLimits` default because the R2 identification rules
#: legitimately produce huge match sets on wide multipliers).  Kept as a
#: constant so the deprecated ``max_matches_per_rule`` alias can tell an
#: explicitly configured ``match_limit`` apart from the untouched default.
DEFAULT_PIPELINE_MATCH_LIMIT = 100_000


@dataclass
class BoolEOptions:
    """Configuration of the BoolE pipeline.

    Attributes:
        r1_iterations: iteration budget for the basic-rule phase (the paper
            uses 10; smaller values already saturate the lightweight ruleset).
        r2_iterations: iteration budget for the identification phase (paper: 3).
        lightweight_rules: use the pruned R1 subset (paper trick 1).
        include_rule_variants: generate the input-negation variants of R2.
        max_nodes: e-graph node limit per phase.
        time_limit: wall-clock limit (seconds) per phase.
        match_limit: initial per-rule match budget per iteration for the
            back-off scheduler; rules exceeding it are banned for
            exponentially growing windows (see ``docs/performance.md``).
            ``None`` disables back-off.
        ban_length: initial back-off ban window, in iterations.
        max_matches_per_rule: **deprecated** — the old flat per-rule match
            cap.  When set it overrides ``match_limit`` with a
            compatibility scheduler (one-iteration bans, budget seeded by
            the cap and doubling on repeated bans) instead of silently
            dropping a nondeterministic match subset.
        prune_redundant: delete duplicate permuted XOR3/MAJ/FA e-nodes after
            saturation (paper trick 3).
        extract: run DAG extraction and netlist reconstruction.
        count_npn: count NPN FA pairs on the saturated e-graph.
        incremental: use delta e-matching after each phase's first iteration
            (see ``docs/performance.md``); disable to force full scans.
        debug_check_full: assert after every delta iteration that a full
            scan finds nothing more (very slow; debugging only).
    """

    r1_iterations: int = 6
    r2_iterations: int = 4
    lightweight_rules: bool = True
    include_rule_variants: bool = True
    max_nodes: int = 400_000
    time_limit: float = 120.0
    match_limit: Optional[int] = DEFAULT_PIPELINE_MATCH_LIMIT
    ban_length: int = 2
    max_matches_per_rule: Optional[int] = None
    prune_redundant: bool = True
    extract: bool = True
    count_npn: bool = True
    incremental: bool = True
    debug_check_full: bool = False

    def __post_init__(self) -> None:
        if self.max_matches_per_rule is None:
            return
        if (self.match_limit is not None
                and self.match_limit != DEFAULT_PIPELINE_MATCH_LIMIT):
            raise ValueError(
                "max_matches_per_rule (deprecated) cannot be combined with "
                "an explicit match_limit: the alias builds its own flat "
                "compatibility scheduler.  Drop the alias and configure "
                "match_limit/ban_length instead.")
        warnings.warn(
            "BoolEOptions.max_matches_per_rule is deprecated; use "
            "match_limit/ban_length (the alias builds a flat compatibility "
            "scheduler with one-iteration bans)",
            DeprecationWarning, stacklevel=3)


@dataclass
class BoolEResult:
    """Everything the pipeline produces for one input netlist."""

    source: AIG
    construction: ConstructionResult
    r1_report: RunnerReport
    r2_report: RunnerReport
    fa_report: FAInsertionReport
    extraction: Optional[BoolEExtraction] = None
    extracted_aig: Optional[AIG] = None
    fa_blocks: List[FABlockRecord] = field(default_factory=list)
    num_npn_fas: int = 0
    timings: Dict[str, float] = field(default_factory=dict)
    #: True when the saturated e-graph came from an artifact store instead
    #: of being recomputed (``timings`` then has ``cache_load`` instead of
    #: the construct/r1/r2/prune/fa_pairing stages).
    cache_hit: bool = False
    #: True when the extraction + reconstructed netlist came from a
    #: ``kind="extraction"`` artifact (``timings`` then has
    #: ``extraction_cache_load`` instead of ``extract``/``reconstruct`` —
    #: cost propagation was skipped entirely).
    extraction_cache_hit: bool = False

    @property
    def num_exact_fas(self) -> int:
        """Exact FAs present in the extracted netlist (distinct FA blocks)."""
        return len(self.fa_blocks)

    @property
    def num_paired_fas(self) -> int:
        """Exact FA structures paired in the e-graph (before extraction)."""
        return self.fa_report.num_exact_fas

    @property
    def total_runtime(self) -> float:
        """End-to-end runtime in seconds."""
        return self.timings.get("total", 0.0)

    @property
    def egraph_classes(self) -> int:
        """Number of e-classes after saturation."""
        return self.construction.egraph.num_classes

    @property
    def egraph_nodes(self) -> int:
        """Number of e-nodes after saturation."""
        return self.construction.egraph.num_nodes

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by the benchmark harness."""
        return {
            "aig_nodes": self.source.num_gates,
            "egraph_classes": self.egraph_classes,
            "egraph_nodes": self.egraph_nodes,
            "exact_fas": self.num_exact_fas,
            "paired_fas": self.num_paired_fas,
            "npn_fas": self.num_npn_fas,
            "runtime": self.total_runtime,
        }


class BoolEPipeline:
    """Exact symbolic reasoning for Boolean netlists via equality saturation.

    Args:
        options: pipeline configuration (defaults to :class:`BoolEOptions`).
        store: default artifact store for :meth:`run` — an
            :class:`~repro.store.ArtifactStore` or a directory path.
            ``None`` disables caching unless :meth:`run` is given one.
        extractor: the DAG extractor to run (defaults to a fresh
            :class:`BoolEExtractor`).  Its ``node_cost`` table participates
            in the extraction cache key, so a custom cost model never hits
            a default-cost artifact.
    """

    def __init__(self, options: Optional[BoolEOptions] = None, *,
                 store: Union[ArtifactStore, str, Path, None] = None,
                 extractor: Optional[BoolEExtractor] = None) -> None:
        self.options = options or BoolEOptions()
        self.store = _as_store(store)
        self.extractor = extractor or BoolEExtractor()
        self._r1 = basic_rules(lightweight=self.options.lightweight_rules)
        self._r2 = identification_rules(self.options.include_rule_variants)
        # Options/ruleset fingerprints are per-pipeline constants; computed
        # lazily once so batch sweeps pay only the per-AIG digest per job.
        self._static_fingerprints: Optional[Tuple[str, List[str]]] = None

    @property
    def num_rules(self) -> Dict[str, int]:
        """Rule counts of the two phases."""
        return {"R1": len(self._r1), "R2": len(self._r2)}

    def cache_key(self, aig: AIG) -> str:
        """Content-addressed store key of ``aig``'s saturated e-graph.

        Combines the fingerprints of the netlist, the options and both
        rulesets (see :mod:`repro.store.fingerprint`); identical inputs
        yield identical keys across processes and hash seeds.
        """
        if self._static_fingerprints is None:
            self._static_fingerprints = (
                fingerprint_options(self.options),
                [fingerprint_ruleset(rules)
                 for rules in (self._r1, self._r2)])
        options_fp, ruleset_fps = self._static_fingerprints
        return combine_cache_key(fingerprint_aig(aig), options_fp,
                                 ruleset_fps)

    def _phase_limits(self, iterations: int) -> RunnerLimits:
        options = self.options
        if options.max_matches_per_rule is not None:
            # The options object already warned about the alias at
            # construction; re-warning for each internal RunnerLimits
            # would just repeat it.  ``match_limit`` stays at the
            # RunnerLimits default, which the alias overrides anyway.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                return RunnerLimits(
                    max_iterations=iterations,
                    max_nodes=options.max_nodes,
                    time_limit=options.time_limit,
                    ban_length=options.ban_length,
                    max_matches_per_rule=options.max_matches_per_rule,
                )
        return RunnerLimits(
            max_iterations=iterations,
            max_nodes=options.max_nodes,
            time_limit=options.time_limit,
            match_limit=options.match_limit,
            ban_length=options.ban_length,
        )

    def run(self, aig: AIG, *,
            store: Union[ArtifactStore, str, Path, None] = None
            ) -> BoolEResult:
        """Run the full BoolE flow on an AIG and return the result bundle.

        With a ``store`` (argument or constructor default), the saturated
        e-graph — stages 1–4 plus the NPN count — is looked up by content
        key first: on a hit the pipeline deserializes the artifact and
        skips straight to extraction (``result.cache_hit``); on a miss it
        computes the stages and persists them for the next run.  The
        extraction + reconstruction outputs are cached the same way under
        their own ``kind="extraction"`` key
        (``result.extraction_cache_hit``), so a fully warm run costs one
        snapshot load and skips cost propagation entirely.
        """
        options = self.options
        store = _as_store(store) or self.store
        timings: Dict[str, float] = {}
        start = time.perf_counter()

        key = None
        saturated = None
        if store is not None:
            key = self.cache_key(aig)
            t0 = time.perf_counter()
            try:
                payload = store.get(key, expected_kind=KIND_SATURATED)
            except SnapshotError:
                # A corrupt/foreign object at a live key must degrade to a
                # miss, not poison every run of this circuit; the recompute
                # below overwrites it with a good artifact.
                payload = None
            if payload is not None:
                saturated = _saturated_from_state(payload, aig)
                timings["cache_load"] = time.perf_counter() - t0

        if saturated is not None:
            construction, r1_report, r2_report, fa_report, num_npn = saturated
            egraph = construction.egraph
            cache_hit = True
        else:
            cache_hit = False
            t0 = time.perf_counter()
            construction = aig_to_egraph(aig)
            timings["construct"] = time.perf_counter() - t0
            egraph = construction.egraph

            t0 = time.perf_counter()
            r1_report = Runner(self._phase_limits(options.r1_iterations),
                               incremental=options.incremental,
                               debug_check_full=options.debug_check_full
                               ).run(egraph, self._r1)
            timings["r1"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            r2_report = Runner(self._phase_limits(options.r2_iterations),
                               incremental=options.incremental,
                               debug_check_full=options.debug_check_full
                               ).run(egraph, self._r2)
            timings["r2"] = time.perf_counter() - t0

            if options.prune_redundant:
                t0 = time.perf_counter()
                egraph.prune_duplicates(
                    {Op.XOR3, Op.MAJ, Op.FA, Op.XOR, Op.AND, Op.OR})
                timings["prune"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            fa_report = insert_fa_structures(egraph)
            timings["fa_pairing"] = time.perf_counter() - t0

            num_npn = 0
            if options.count_npn:
                t0 = time.perf_counter()
                num_npn = count_npn_fa_pairs(egraph)
                timings["npn_count"] = time.perf_counter() - t0

            if store is not None:
                t0 = time.perf_counter()
                store.put(key,
                          _saturated_to_state(construction, r1_report,
                                              r2_report, fa_report, num_npn),
                          kind=KIND_SATURATED,
                          meta={
                              "aig_name": aig.name,
                              "aig_gates": aig.num_gates,
                              "egraph_classes": egraph.num_classes,
                              "exact_fas": fa_report.num_exact_fas,
                          })
                timings["cache_store"] = time.perf_counter() - t0

        result = BoolEResult(
            source=aig,
            construction=construction,
            r1_report=r1_report,
            r2_report=r2_report,
            fa_report=fa_report,
            num_npn_fas=num_npn,
            timings=timings,
            cache_hit=cache_hit,
        )

        if options.extract:
            ext_key = None
            loaded = None
            if store is not None:
                # Extraction artifacts are keyed independently of the
                # saturated snapshot: even when saturation had to be
                # recomputed (e.g. the snapshot was GC'd), a surviving
                # extraction artifact is still valid — determinism makes
                # the recomputed e-graph identical to the one it was
                # extracted from.
                ext_key = extraction_cache_key(key, self.extractor.node_cost,
                                               construction.output_classes)
                t0 = time.perf_counter()
                try:
                    payload = store.get(ext_key,
                                        expected_kind=KIND_EXTRACTION)
                except SnapshotError:
                    # Corrupt/foreign object: degrade to a miss; the
                    # recompute below overwrites it with a good artifact.
                    payload = None
                if payload is not None:
                    try:
                        loaded = _extraction_from_state(payload, construction)
                    except (SnapshotError, KeyError, IndexError, TypeError,
                            ValueError):
                        # Well-formed snapshot, malformed payload: same
                        # degrade-to-recompute policy.
                        loaded = None
                if loaded is not None:
                    timings["extraction_cache_load"] = \
                        time.perf_counter() - t0
            if loaded is not None:
                extraction, extracted, blocks = loaded
                result.extraction_cache_hit = True
            else:
                t0 = time.perf_counter()
                extraction = self.extractor.extract(egraph)
                timings["extract"] = time.perf_counter() - t0
                t0 = time.perf_counter()
                extracted, blocks = reconstruct_aig(construction, extraction)
                timings["reconstruct"] = time.perf_counter() - t0
                if store is not None:
                    t0 = time.perf_counter()
                    store.put(ext_key,
                              _extraction_to_state(extraction, extracted,
                                                   blocks),
                              kind=KIND_EXTRACTION,
                              meta={
                                  "aig_name": aig.name,
                                  "exact_fas": len(blocks),
                                  "extracted_gates": extracted.num_gates,
                                  "saturated_key": key,
                              })
                    timings["extraction_cache_store"] = \
                        time.perf_counter() - t0
            result.extraction = extraction
            result.extracted_aig = extracted
            result.fa_blocks = blocks

        timings["total"] = time.perf_counter() - start
        return result


def _as_store(store: Union[ArtifactStore, str, Path, None]
              ) -> Optional[ArtifactStore]:
    if store is None or isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)


def _saturated_to_state(construction: ConstructionResult,
                        r1_report: RunnerReport, r2_report: RunnerReport,
                        fa_report: FAInsertionReport, num_npn: int) -> Dict:
    """Wire form of everything :meth:`BoolEPipeline.run` produces before
    extraction: the saturated e-graph plus the construction bookkeeping
    and the per-phase reports (the source AIG itself is *not* stored — the
    cache key guarantees the loader holds an identical netlist)."""
    return {
        "egraph": egraph_to_wire(construction.egraph),
        "construction": {
            "class_of_var": sorted(construction.class_of_var.items()),
            "output_classes": list(construction.output_classes),
            "literal_classes": sorted(construction.literal_classes.items()),
        },
        "r1_report": report_to_wire(r1_report),
        "r2_report": report_to_wire(r2_report),
        "fa_pairs": [[list(pair.inputs), pair.sum_class, pair.carry_class,
                      pair.fa_class] for pair in fa_report.pairs],
        "num_npn_fas": num_npn,
    }


def _saturated_from_state(state: Dict, aig: AIG) -> Tuple[
        ConstructionResult, RunnerReport, RunnerReport,
        FAInsertionReport, int]:
    """Rebuild the pre-extraction pipeline products from the wire form."""
    egraph: EGraph = egraph_from_wire(state["egraph"])
    wire = state["construction"]
    construction = ConstructionResult(
        egraph=egraph,
        aig=aig,
        class_of_var={var: class_id
                      for var, class_id in wire["class_of_var"]},
        output_classes=list(wire["output_classes"]),
        literal_classes={lit: class_id
                         for lit, class_id in wire["literal_classes"]},
    )
    fa_report = FAInsertionReport(pairs=[
        FAPair(inputs=tuple(inputs), sum_class=sum_class,
               carry_class=carry_class, fa_class=fa_class)
        for inputs, sum_class, carry_class, fa_class in state["fa_pairs"]
    ])
    return (construction,
            report_from_wire(state["r1_report"]),
            report_from_wire(state["r2_report"]),
            fa_report,
            state["num_npn_fas"])


def _extraction_to_state(extraction: BoolEExtraction, extracted: AIG,
                         blocks: List[FABlockRecord]) -> Dict:
    """Wire form of everything extraction + reconstruction produce: the
    per-class cost entries (chosen node, size, FA bitmask + decode table),
    the reconstructed netlist and the materialised FA blocks."""
    return {
        "extraction": extraction_to_wire(extraction),
        "extracted_aig": aig_to_wire(extracted),
        "fa_blocks": [[list(block.inputs), block.sum_lit, block.carry_lit]
                      for block in blocks],
    }


def _extraction_from_state(state: Dict, construction: ConstructionResult
                           ) -> Tuple[BoolEExtraction, AIG,
                                      List[FABlockRecord]]:
    """Rebuild the extraction products against the (loaded or recomputed)
    saturated e-graph of ``construction``."""
    extraction = extraction_from_wire(state["extraction"],
                                      construction.egraph)
    extracted = aig_from_wire(state["extracted_aig"])
    blocks = [FABlockRecord(inputs=tuple(inputs), sum_lit=sum_lit,
                            carry_lit=carry_lit)
              for inputs, sum_lit, carry_lit in state["fa_blocks"]]
    return extraction, extracted, blocks


def run_boole(aig: AIG, options: Optional[BoolEOptions] = None, *,
              store: Union[ArtifactStore, str, Path, None] = None
              ) -> BoolEResult:
    """Convenience wrapper: run the BoolE pipeline with ``options`` on ``aig``."""
    return BoolEPipeline(options, store=store).run(aig)
