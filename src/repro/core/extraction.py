"""BoolE's DAG-based exact extraction (Algorithm 2) and netlist reconstruction.

The extractor chooses one e-node per reachable e-class so that the number of
distinct exact full adders in the extracted DAG is maximised (the paper's
cost function assigns -1 to every exact-FA node); ties are broken towards
smaller expressions.  Shared full adders are counted once because the cost of
a class carries the *set* of FA classes used underneath it, not a scalar —
this is the "DAG based extraction" that prevents double counting.

``fa``/``fst``/``snd`` triples are atomic: the projection nodes have zero own
cost and simply propagate the FA set of the tuple node, so selecting a sum
projection always selects the full adder it belongs to.

Performance and semantics (ISSUE 4 rewrite — the warm-store hot path):

* **Bitmask FA sets.**  The FA-bearing e-classes are enumerated once up
  front into dense bit positions (``BoolEExtraction.fa_index``, seq order),
  so every per-entry FA set is an arbitrary-precision ``int``: union is
  ``|``, the cost key is ``-mask.bit_count()`` and the refresh check is an
  int compare.  The old per-entry ``frozenset`` unions dominated the whole
  extraction profile on wide multipliers.  ``CostEntry.fa_classes`` decodes
  the mask back to a frozenset, so the observable API is unchanged.
* **Topological worklist.**  Instead of seeding every class into a LIFO
  fixpoint, a Kahn pass over the child→parent DAG evaluates each e-node
  once all its children are resolved; classes on cycles fall out to the
  same queue when an improvement reaches them.  The dependency index is
  *node-level* (child class → the e-nodes that reference it, in
  deterministic insertion order): an improved class re-evaluates only the
  nodes that actually consume it, not every node of every parent class.
* **Value repair.**  A final bottom-up pass over the chosen-node DAG
  recomputes every (mask, size) from the final child entries, so stored
  values are exactly what reconstruction materialises and
  ``num_exact_fas`` always matches the FA block count.  The pre-rewrite
  implementation (kept verbatim in
  :mod:`repro.core.extraction_reference` as the oracle/baseline) shipped
  *stale* values instead: a child refresh could shrink the FA union a
  parent's entry was computed from while the accept-only-improvements
  rule kept the optimistic key forever — on the 16-bit CSA it claimed
  267 root FAs over a netlist that contains 161.

Results are deterministic across ``PYTHONHASHSEED`` values and agree with
the reference entry-for-entry wherever the reference is self-consistent;
measured FA recovery and the quality comparison against the reference's
(scheduling-lottery) stale numbers are recorded in
``docs/performance.md``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..aig import AIG
from ..egraph import EGraph, ENode, Op
from ..egraph.extract import worklist_tables
from .construct import ConstructionResult

__all__ = ["CostEntry", "BoolEExtraction", "BoolEExtractor", "FABlockRecord",
           "reconstruct_aig"]

_SIZE_CAP = 10**9


@dataclass(slots=True)
class CostEntry:
    """Best known extraction choice for one e-class.

    ``fa_mask`` is the set of distinct exact-FA classes used underneath the
    choice, encoded as a bitmask over ``fa_index`` (bit *i* set ⇔
    ``fa_index[i]`` is used).  ``fa_classes`` decodes it on demand.
    """

    fa_mask: int
    size: int
    node: ENode
    fa_index: Tuple[int, ...] = ()

    @property
    def fa_classes(self) -> FrozenSet[int]:
        """The FA e-class ids encoded in :attr:`fa_mask`."""
        mask = self.fa_mask
        index = self.fa_index
        classes = []
        while mask:
            low = mask & -mask
            classes.append(index[low.bit_length() - 1])
            mask ^= low
        return frozenset(classes)

    def key(self) -> Tuple[int, int]:
        """Lexicographic cost: maximise FAs, then minimise size."""
        return (-self.fa_mask.bit_count(), self.size)


@dataclass
class BoolEExtraction:
    """Result of the DAG extraction: one cost entry per reachable e-class.

    ``fa_index`` maps bitmask positions back to FA e-class ids (shared by
    every entry's :attr:`CostEntry.fa_mask`).
    """

    egraph: EGraph
    entries: Dict[int, CostEntry] = field(default_factory=dict)
    fa_index: Tuple[int, ...] = ()

    def entry(self, class_id: int) -> CostEntry:
        """Return the entry for (the canonical class of) ``class_id``."""
        return self.entries[self.egraph.find(class_id)]

    def raw_entry(self, class_id: int) -> CostEntry:
        """Return the entry of an already-canonical class id.

        Skips the union-find lookup of :meth:`entry`; hot callers that have
        just canonicalized (reconstruction, cache serialization) use this to
        avoid paying ``find`` twice per class.
        """
        return self.entries[class_id]

    def has_entry(self, class_id: int) -> bool:
        """True if the extraction reached ``class_id``."""
        return self.egraph.find(class_id) in self.entries

    def num_exact_fas(self, roots: Sequence[int]) -> int:
        """Number of distinct FAs used by the extraction of ``roots``."""
        mask = 0
        find = self.egraph.find
        entries = self.entries
        for root in roots:
            entry = entries.get(find(root))
            if entry is not None:
                mask |= entry.fa_mask
        return mask.bit_count()


class BoolEExtractor:
    """DAG cost extractor maximising the number of exact full adders.

    Args:
        node_cost: per-operator base costs (participates in the extraction
            cache key).
        refine_rounds: bounded choose→repair refinement iterations after
            the first pass.  The greedy fixpoint keeps *repaired* (true)
            values, so re-running the propagation from them can discover
            choices the optimistic first pass missed (the "unapplied
            improvement" headroom of ``docs/performance.md``); each round
            re-seeds every resolved e-node, propagates, repairs, and the
            round with the best materialised FA count at the extraction
            roots wins.  Rounds stop early once a sweep changes nothing.
            ``0`` (default) keeps the single-pass behaviour exactly.
    """

    def __init__(self, node_cost: Optional[Dict[str, int]] = None, *,
                 refine_rounds: int = 0) -> None:
        self.node_cost = node_cost or {
            Op.VAR: 0, Op.CONST: 0, Op.FST: 0, Op.SND: 0,
            Op.NOT: 1, Op.AND: 1, Op.OR: 1, Op.XOR: 1, Op.XNOR: 1,
            Op.NAND: 1, Op.NOR: 1, Op.XOR3: 2, Op.MAJ: 2, Op.FA: 2, Op.HA: 1,
        }
        if refine_rounds < 0:
            raise ValueError("refine_rounds must be >= 0")
        self.refine_rounds = refine_rounds

    def extract(self, egraph: EGraph,
                roots: Optional[Sequence[int]] = None) -> BoolEExtraction:
        """Run the bottom-up cost propagation (Algorithm 2).

        A topological (Kahn) first pass evaluates each e-node as soon as all
        of its child classes have entries; later improvements re-enter the
        same queue but touch only the nodes that reference the improved
        class.  All tables are built in one deterministic scan (classes in
        seq order, nodes in ``enode_sort_key`` order), so the whole pass is
        independent of ``PYTHONHASHSEED``.
        """
        egraph.rebuild()
        node_cost = self.node_cost

        # ---- one deterministic setup scan -------------------------------
        # Shared with TreeCostExtractor: dense class indices in seq order,
        # nodes flattened with owners/children/tie-breaks, Kahn in-degrees
        # and the insertion-ordered node-level dependency index.
        (class_list, nodes, owner, children, tiebreak, waiting,
         users) = worklist_tables(egraph)
        num_classes = len(class_list)

        # BoolE-specific node tables: per-operator base costs, and the
        # FA-bearing classes enumerated into dense bit positions (the nodes
        # list is in (class seq, node sort) order, so bit assignment is
        # deterministic).
        base: List[int] = [node_cost.get(node.op, 1) for node in nodes]
        fa_index: List[int] = []      # bit position -> FA class id
        fa_self_bit: List[int] = [0] * len(nodes)
        fa_bit_of_class: Dict[int, int] = {}
        for node_id, node in enumerate(nodes):
            if node.op == Op.FA:
                class_position = owner[node_id]
                bit = fa_bit_of_class.get(class_position)
                if bit is None:
                    bit = fa_bit_of_class[class_position] = 1 << len(fa_index)
                    fa_index.append(class_list[class_position])
                fa_self_bit[node_id] = bit

        # ---- cost propagation -------------------------------------------
        # Best entry per class as parallel arrays (choice < 0 = no entry).
        best_mask: List[int] = [0] * num_classes
        best_size: List[int] = [0] * num_classes
        choice: List[int] = [-1] * num_classes

        def evaluate(node_id: int) -> Tuple[int, int]:
            mask = fa_self_bit[node_id]
            size = base[node_id]
            for child_position in children[node_id]:
                mask |= best_mask[child_position]
                size += best_size[child_position]
            return mask, (size if size <= _SIZE_CAP else _SIZE_CAP)

        def propagate(seeds) -> bool:
            """Run the worklist fixpoint from ``seeds``; True if anything
            was accepted."""
            queue = deque(seeds)
            queued = bytearray(len(nodes))
            for node_id in queue:
                queued[node_id] = 1
            changed = False
            while queue:
                node_id = queue.popleft()
                queued[node_id] = 0
                mask, size = evaluate(node_id)
                class_position = owner[node_id]
                current = choice[class_position]
                if current < 0:
                    accept = True
                else:
                    current_mask = best_mask[class_position]
                    current_size = best_size[class_position]
                    count = mask.bit_count()
                    current_count = current_mask.bit_count()
                    if count != current_count:
                        accept = count > current_count
                    elif size != current_size:
                        accept = size < current_size
                    elif node_id == current:
                        # Same choice, but a child's tie-break swap changed
                        # *which* FA classes flow up while keeping their
                        # count; store the refreshed mask and let it
                        # propagate.  (Keeping the strictly-improving
                        # discipline here is what keeps the chosen-node
                        # graph acyclic for reconstruction; any residual
                        # staleness is fixed by the value-repair pass.)
                        accept = mask != current_mask
                    else:
                        # Equal (FA count, size): break the tie by (op,
                        # child seqs, payload) so the chosen representative
                        # does not depend on evaluation order.
                        accept = tiebreak[node_id] < tiebreak[current]
                if not accept:
                    continue
                changed = True
                spread = (current < 0
                          or mask != best_mask[class_position]
                          or size != best_size[class_position])
                best_mask[class_position] = mask
                best_size[class_position] = size
                choice[class_position] = node_id
                if current < 0:
                    # First entry: release Kahn successors of this class.
                    for user in users[class_position]:
                        remaining = waiting[user] - 1
                        waiting[user] = remaining
                        if not remaining and not queued[user]:
                            queued[user] = 1
                            queue.append(user)
                elif spread:
                    # Improvement/refresh: only re-evaluate the e-nodes
                    # that actually consume this class (released ones).
                    for user in users[class_position]:
                        if not waiting[user] and not queued[user]:
                            queued[user] = 1
                            queue.append(user)
            return changed

        def repair() -> bytearray:
            """Value repair along the chosen DAG.

            The monotone loop never downgrades a stored value, so a child
            refresh that shrank the FA union a parent's value was computed
            from leaves the parent's (mask, size) stale — the pre-rewrite
            extractor shipped those values, making ``num_exact_fas`` claim
            FAs the reconstructed netlist does not contain.  The *choices*
            stand; the values are recomputed bottom-up along the
            chosen-node DAG so every reported (mask, size) is exactly what
            materialising the choice yields.  Returns the repaired-class
            bitmap: classes on chosen-node cycles stay 0 (unreachable
            bookkeeping only — reconstruction rejects them).
            """
            chosen_indegree = [0] * num_classes
            chosen_users: List[List[int]] = [[] for _ in range(num_classes)]
            for class_position in range(num_classes):
                node_id = choice[class_position]
                if node_id < 0:
                    continue
                seen = set()
                for child_position in children[node_id]:
                    if (child_position != class_position
                            and child_position not in seen):
                        seen.add(child_position)
                        chosen_users[child_position].append(class_position)
                        chosen_indegree[class_position] += 1
            repaired = bytearray(num_classes)
            queue = deque(
                class_position for class_position in range(num_classes)
                if choice[class_position] >= 0
                and not chosen_indegree[class_position])
            while queue:
                class_position = queue.popleft()
                repaired[class_position] = 1
                mask, size = evaluate(choice[class_position])
                best_mask[class_position] = mask
                best_size[class_position] = size
                for user in chosen_users[class_position]:
                    chosen_indegree[user] -= 1
                    if not chosen_indegree[user]:
                        queue.append(user)
            return repaired

        propagate(node_id for node_id in range(len(nodes))
                  if not waiting[node_id])
        repaired = repair()

        # ---- bounded choose→repair refinement ---------------------------
        # The repaired values are the *true* costs of the first-pass
        # choices; re-seeding the fixpoint from them lets nodes that beat
        # their class's stored choice under true (rather than stale
        # optimistic) child values take over, and another repair trues the
        # values again.  Rounds are scored by the materialised FA count at
        # the extraction roots (all classes when no roots are given) and
        # the best round wins; a round whose chosen DAG turns cyclic under
        # a root is discarded and refinement stops.
        if self.refine_rounds > 0:
            if roots is not None:
                class_index = {class_id: position for position, class_id
                               in enumerate(class_list)}
                root_positions = []
                seen_roots = set()
                for root in roots:
                    position = class_index.get(egraph.find(root))
                    if position is not None and position not in seen_roots:
                        seen_roots.add(position)
                        root_positions.append(position)
            else:
                root_positions = [position for position in range(num_classes)
                                  if choice[position] >= 0]

            def round_score(repaired_bitmap: bytearray):
                """(valid, FA count, -size) of the current choice set."""
                mask = 0
                size = 0
                stack = list(root_positions)
                visited = bytearray(num_classes)
                while stack:
                    position = stack.pop()
                    if visited[position]:
                        continue
                    visited[position] = 1
                    node_id = choice[position]
                    if node_id < 0 or not repaired_bitmap[position]:
                        # Unreachable root or a chosen-node cycle under a
                        # root: materialising this round would fail.
                        return None
                    stack.extend(children[node_id])
                for position in root_positions:
                    mask |= best_mask[position]
                    size += best_size[position]
                return (mask.bit_count(), -size)

            best_score = round_score(repaired)
            snapshot = (best_mask[:], best_size[:], choice[:])
            for _ in range(self.refine_rounds):
                changed = propagate(node_id for node_id in range(len(nodes))
                                    if not waiting[node_id])
                if not changed:
                    break
                repaired = repair()
                score = round_score(repaired)
                if score is None:
                    break
                if best_score is None or score > best_score:
                    best_score = score
                    snapshot = (best_mask[:], best_size[:], choice[:])
            best_mask[:], best_size[:], choice[:] = snapshot

        # ---- assemble the result ----------------------------------------
        fa_index_tuple = tuple(fa_index)
        extraction = BoolEExtraction(egraph=egraph, fa_index=fa_index_tuple)
        entries = extraction.entries
        for class_position, class_id in enumerate(class_list):
            node_id = choice[class_position]
            if node_id >= 0:
                entries[class_id] = CostEntry(
                    fa_mask=best_mask[class_position],
                    size=best_size[class_position],
                    node=nodes[node_id],
                    fa_index=fa_index_tuple)
        return extraction


@dataclass(frozen=True)
class FABlockRecord:
    """An exact full adder materialised in the reconstructed netlist.

    Attributes:
        inputs: literals (in the reconstructed AIG) of the three FA inputs.
        sum_lit: literal of the sum output.
        carry_lit: literal of the carry output.
    """

    inputs: Tuple[int, int, int]
    sum_lit: int
    carry_lit: int


def reconstruct_aig(construction: ConstructionResult,
                    extraction: BoolEExtraction,
                    name: str = "") -> Tuple[AIG, List[FABlockRecord]]:
    """Materialise the extracted expressions of all primary outputs as an AIG.

    Full-adder tuple nodes become explicit sum/carry cones (recorded in the
    returned block list) so the output netlist exposes the reconstructed adder
    tree to downstream tools such as the SCA verifier.
    """
    egraph = extraction.egraph
    entries = extraction.entries
    source = construction.aig
    aig = AIG(name=name or f"{source.name}_boole")
    input_literal: Dict[str, int] = {}
    for var in source.inputs:
        input_literal[source.input_names[var]] = aig.add_input(source.input_names[var])

    literal_memo: Dict[int, int] = {}
    fa_memo: Dict[int, Tuple[int, int]] = {}
    blocks: List[FABlockRecord] = []

    def materialize_fa(class_id: int, visiting: Set[int]) -> Tuple[int, int]:
        class_id = egraph.find(class_id)
        if class_id in fa_memo:
            return fa_memo[class_id]
        node = extraction.raw_entry(class_id).node
        inputs = tuple(materialize(child, visiting) for child in node.children)
        sum_lit, carry_lit = aig.full_adder(*inputs)
        fa_memo[class_id] = (sum_lit, carry_lit)
        blocks.append(FABlockRecord(inputs=inputs, sum_lit=sum_lit,
                                    carry_lit=carry_lit))
        return sum_lit, carry_lit

    def materialize(class_id: int, visiting: Set[int]) -> int:
        class_id = egraph.find(class_id)
        if class_id in literal_memo:
            return literal_memo[class_id]
        if class_id in visiting:
            raise RuntimeError("cyclic extraction choice encountered")
        entry = entries.get(class_id)
        if entry is None:
            raise RuntimeError(f"extraction did not reach class {class_id}")
        visiting = visiting | {class_id}
        literal = _materialize_node(entry.node, class_id, visiting)
        literal_memo[class_id] = literal
        return literal

    def _materialize_node(node: ENode, class_id: int, visiting: Set[int]) -> int:
        if node.op == Op.VAR:
            return input_literal[node.payload]
        if node.op == Op.CONST:
            return aig.const(bool(node.payload))
        if node.op == Op.FST:
            return materialize_fa(node.children[0], visiting)[1]
        if node.op == Op.SND:
            return materialize_fa(node.children[0], visiting)[0]
        children = [materialize(child, visiting) for child in node.children]
        if node.op == Op.NOT:
            return aig.not_(children[0])
        if node.op == Op.AND:
            return aig.and_(children[0], children[1])
        if node.op == Op.OR:
            return aig.or_(children[0], children[1])
        if node.op == Op.NAND:
            return aig.nand_(children[0], children[1])
        if node.op == Op.NOR:
            return aig.nor_(children[0], children[1])
        if node.op == Op.XOR:
            return aig.xor_(children[0], children[1])
        if node.op == Op.XNOR:
            return aig.xnor_(children[0], children[1])
        if node.op == Op.XOR3:
            return aig.xor3_(children[0], children[1], children[2])
        if node.op == Op.MAJ:
            return aig.maj3_(children[0], children[1], children[2])
        if node.op == Op.HA:
            sum_lit, _carry = aig.half_adder(children[0], children[1])
            return sum_lit
        if node.op == Op.FA:
            raise RuntimeError("FA tuple class reached outside FST/SND projection")
        raise RuntimeError(f"cannot materialise operator {node.op!r}")

    for class_id, lit, name_ in zip(construction.output_classes,
                                    construction.aig.outputs,
                                    construction.aig.output_names):
        literal = materialize(class_id, set())
        aig.add_output(literal, name_)
    return aig, blocks
