"""BoolE's DAG-based exact extraction (Algorithm 2) and netlist reconstruction.

The extractor chooses one e-node per reachable e-class so that the number of
distinct exact full adders in the extracted DAG is maximised (the paper's
cost function assigns -1 to every exact-FA node); ties are broken towards
smaller expressions.  Shared full adders are counted once because the cost of
a class carries the *set* of FA classes used underneath it, not a scalar —
this is the "DAG based extraction" that prevents double counting.

``fa``/``fst``/``snd`` triples are atomic: the projection nodes have zero own
cost and simply propagate the FA set of the tuple node, so selecting a sum
projection always selects the full adder it belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..aig import AIG
from ..egraph import EGraph, ENode, Op
from ..egraph.extract import node_tiebreak_key
from .construct import ConstructionResult

__all__ = ["CostEntry", "BoolEExtraction", "BoolEExtractor", "FABlockRecord",
           "reconstruct_aig"]

_SIZE_CAP = 10**9


@dataclass
class CostEntry:
    """Best known extraction choice for one e-class."""

    fa_classes: FrozenSet[int]
    size: int
    node: ENode

    def key(self) -> Tuple[int, int]:
        """Lexicographic cost: maximise FAs, then minimise size."""
        return (-len(self.fa_classes), self.size)


@dataclass
class BoolEExtraction:
    """Result of the DAG extraction: one cost entry per reachable e-class."""

    egraph: EGraph
    entries: Dict[int, CostEntry] = field(default_factory=dict)

    def entry(self, class_id: int) -> CostEntry:
        """Return the entry for (the canonical class of) ``class_id``."""
        return self.entries[self.egraph.find(class_id)]

    def has_entry(self, class_id: int) -> bool:
        """True if the extraction reached ``class_id``."""
        return self.egraph.find(class_id) in self.entries

    def num_exact_fas(self, roots: Sequence[int]) -> int:
        """Number of distinct FAs used by the extraction of ``roots``."""
        fa_classes: Set[int] = set()
        for root in roots:
            if self.has_entry(root):
                fa_classes.update(self.entry(root).fa_classes)
        return len(fa_classes)


class BoolEExtractor:
    """DAG cost extractor maximising the number of exact full adders."""

    def __init__(self, node_cost: Optional[Dict[str, int]] = None) -> None:
        self.node_cost = node_cost or {
            Op.VAR: 0, Op.CONST: 0, Op.FST: 0, Op.SND: 0,
            Op.NOT: 1, Op.AND: 1, Op.OR: 1, Op.XOR: 1, Op.XNOR: 1,
            Op.NAND: 1, Op.NOR: 1, Op.XOR3: 2, Op.MAJ: 2, Op.FA: 2, Op.HA: 1,
        }

    def extract(self, egraph: EGraph,
                roots: Optional[Sequence[int]] = None) -> BoolEExtraction:
        """Run the bottom-up cost propagation (Algorithm 2).

        The queue is seeded with every class; whenever a class's cost
        improves, the classes whose e-nodes reference it are re-examined.
        """
        egraph.rebuild()
        extraction = BoolEExtraction(egraph=egraph)
        entries = extraction.entries

        # parent map: child class -> classes containing a node that uses it.
        parents: Dict[int, Set[int]] = {}
        class_nodes: Dict[int, List[ENode]] = {}
        # Deterministic tie-break keys, precomputed once per node: the
        # fixpoint loop below revisits nodes many times, and recomputing
        # (op, child seqs, payload) on every cost tie used to cost ~10% of
        # the extraction hot path.  The e-graph is not mutated during
        # extraction, so the keys stay valid for the whole pass.
        tiebreak: Dict[ENode, Tuple] = {}
        for eclass in egraph.classes():
            class_id = egraph.find(eclass.id)
            nodes = egraph.enodes(class_id)
            class_nodes[class_id] = nodes
            for node in nodes:
                tiebreak[node] = node_tiebreak_key(egraph, node)
                for child in node.children:
                    parents.setdefault(egraph.find(child), set()).add(class_id)

        pending: Set[int] = set(class_nodes.keys())
        queue: List[int] = list(class_nodes.keys())
        while queue:
            class_id = queue.pop()
            pending.discard(class_id)
            best = entries.get(class_id)
            improved = False
            for node in class_nodes[class_id]:
                child_entries = []
                feasible = True
                for child in node.children:
                    child_entry = entries.get(egraph.find(child))
                    if child_entry is None:
                        feasible = False
                        break
                    child_entries.append(child_entry)
                if not feasible:
                    continue
                fa_classes: FrozenSet[int] = frozenset().union(
                    *[entry.fa_classes for entry in child_entries]) \
                    if child_entries else frozenset()
                if node.op == Op.FA:
                    fa_classes = fa_classes | {class_id}
                size = min(_SIZE_CAP, self.node_cost.get(node.op, 1)
                           + sum(entry.size for entry in child_entries))
                candidate = CostEntry(fa_classes=fa_classes, size=size, node=node)
                if best is None:
                    better = True
                else:
                    candidate_key, best_key = candidate.key(), best.key()
                    if candidate_key < best_key:
                        better = True
                    elif candidate_key == best_key:
                        if node == best.node:
                            # Same choice, but a child's tie-break swap may
                            # have changed *which* FA classes flow up while
                            # keeping their count; refresh the stored set so
                            # num_exact_fas matches the reconstructed
                            # netlist.  (Chosen-node dependencies are
                            # acyclic — reconstruction rejects cycles — so
                            # refreshes propagate once and terminate.)
                            better = fa_classes != best.fa_classes
                        else:
                            # Equal (FA count, size): break the tie by (op,
                            # child seqs, payload) so the chosen
                            # representative does not depend on node
                            # iteration order.
                            better = tiebreak[node] < tiebreak[best.node]
                    else:
                        better = False
                if better:
                    best = candidate
                    improved = True
            if improved and best is not None:
                entries[class_id] = best
                for parent in parents.get(class_id, ()):
                    if parent not in pending:
                        pending.add(parent)
                        queue.append(parent)
        return extraction


@dataclass(frozen=True)
class FABlockRecord:
    """An exact full adder materialised in the reconstructed netlist.

    Attributes:
        inputs: literals (in the reconstructed AIG) of the three FA inputs.
        sum_lit: literal of the sum output.
        carry_lit: literal of the carry output.
    """

    inputs: Tuple[int, int, int]
    sum_lit: int
    carry_lit: int


def reconstruct_aig(construction: ConstructionResult,
                    extraction: BoolEExtraction,
                    name: str = "") -> Tuple[AIG, List[FABlockRecord]]:
    """Materialise the extracted expressions of all primary outputs as an AIG.

    Full-adder tuple nodes become explicit sum/carry cones (recorded in the
    returned block list) so the output netlist exposes the reconstructed adder
    tree to downstream tools such as the SCA verifier.
    """
    egraph = extraction.egraph
    source = construction.aig
    aig = AIG(name=name or f"{source.name}_boole")
    input_literal: Dict[str, int] = {}
    for var in source.inputs:
        input_literal[source.input_names[var]] = aig.add_input(source.input_names[var])

    literal_memo: Dict[int, int] = {}
    fa_memo: Dict[int, Tuple[int, int]] = {}
    blocks: List[FABlockRecord] = []

    def materialize_fa(class_id: int, visiting: Set[int]) -> Tuple[int, int]:
        class_id = egraph.find(class_id)
        if class_id in fa_memo:
            return fa_memo[class_id]
        node = extraction.entry(class_id).node
        inputs = tuple(materialize(child, visiting) for child in node.children)
        sum_lit, carry_lit = aig.full_adder(*inputs)
        fa_memo[class_id] = (sum_lit, carry_lit)
        blocks.append(FABlockRecord(inputs=inputs, sum_lit=sum_lit,
                                    carry_lit=carry_lit))
        return sum_lit, carry_lit

    def materialize(class_id: int, visiting: Set[int]) -> int:
        class_id = egraph.find(class_id)
        if class_id in literal_memo:
            return literal_memo[class_id]
        if class_id in visiting:
            raise RuntimeError("cyclic extraction choice encountered")
        if not extraction.has_entry(class_id):
            raise RuntimeError(f"extraction did not reach class {class_id}")
        node = extraction.entry(class_id).node
        visiting = visiting | {class_id}
        literal = _materialize_node(node, class_id, visiting)
        literal_memo[class_id] = literal
        return literal

    def _materialize_node(node: ENode, class_id: int, visiting: Set[int]) -> int:
        if node.op == Op.VAR:
            return input_literal[node.payload]
        if node.op == Op.CONST:
            return aig.const(bool(node.payload))
        if node.op == Op.FST:
            return materialize_fa(node.children[0], visiting)[1]
        if node.op == Op.SND:
            return materialize_fa(node.children[0], visiting)[0]
        children = [materialize(child, visiting) for child in node.children]
        if node.op == Op.NOT:
            return aig.not_(children[0])
        if node.op == Op.AND:
            return aig.and_(children[0], children[1])
        if node.op == Op.OR:
            return aig.or_(children[0], children[1])
        if node.op == Op.NAND:
            return aig.nand_(children[0], children[1])
        if node.op == Op.NOR:
            return aig.nor_(children[0], children[1])
        if node.op == Op.XOR:
            return aig.xor_(children[0], children[1])
        if node.op == Op.XNOR:
            return aig.xnor_(children[0], children[1])
        if node.op == Op.XOR3:
            return aig.xor3_(children[0], children[1], children[2])
        if node.op == Op.MAJ:
            return aig.maj3_(children[0], children[1], children[2])
        if node.op == Op.HA:
            sum_lit, _carry = aig.half_adder(children[0], children[1])
            return sum_lit
        if node.op == Op.FA:
            raise RuntimeError("FA tuple class reached outside FST/SND projection")
        raise RuntimeError(f"cannot materialise operator {node.op!r}")

    for class_id, lit, name_ in zip(construction.output_classes,
                                    construction.aig.outputs,
                                    construction.aig.output_names):
        literal = materialize(class_id, set())
        aig.add_output(literal, name_)
    return aig, blocks
