"""Ruleset R2: XOR and MAJ identification rules.

The paper constructs R2 (39 MAJ rules + 90 XOR rules) by extracting the
structural patterns of sum/carry cones from template CSA and Booth
multipliers and turning each pattern into a rewrite rule.  This module does
the analogous thing: a set of hand-derived base patterns covering the
decompositions produced by this repository's generators, optimiser and
technology mapper, expanded mechanically with input-negation variants (the
same way the authors' template extraction yields many polarity variants), and
de-duplicated.

The multi-input operators created by these rules (``xor3``, ``maj``) are
inserted with children sorted by e-class id (a canonical order), so two
discoveries of the same function merge by congruence without needing the full
set of permutation rules; this implements the paper's redundancy-pruning
trick (optimisation trick 3).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..egraph import EGraph, Op, Rewrite
from ..egraph.pattern import Subst

__all__ = ["xor_rules", "maj_rules", "identification_rules", "ruleset_summary"]


# ----------------------------------------------------------------------
# Sorted-children appliers for the symmetric multi-input operators.
# ----------------------------------------------------------------------

def _sorted_applier(op: str, names: Sequence[str],
                    negate_output: bool = False) -> Callable[[EGraph, Subst], int]:
    """Build an applier inserting ``op`` over sorted child classes."""

    def apply(egraph: EGraph, subst: Subst) -> int:
        find = egraph.find
        children = [find(subst[name]) for name in names]
        children.sort()
        class_id = egraph.add_term(op, *children)
        if negate_output:
            class_id = egraph.add_term(Op.NOT, class_id)
        return class_id

    return apply


def _negation_variants(lhs: str, variables: Sequence[str]) -> Iterable[Tuple[str, int]]:
    """Yield (lhs, negation_mask) pairs for every input-negation variant.

    Negating variable ``?x`` textually replaces every occurrence of ``?x`` in
    the pattern with ``(~ ?x)``; the mask records which variables were
    negated so the rule builder can adjust the right-hand side.
    """
    num = len(variables)
    for mask in range(1 << num):
        text = lhs
        for position, name in enumerate(variables):
            if (mask >> position) & 1:
                text = text.replace(name, f"(~ {name})")
        yield text, mask


# ----------------------------------------------------------------------
# XOR identification rules.
# ----------------------------------------------------------------------

# Two-input XOR decompositions as they appear in AND/OR/NOT netlists.  Each
# entry is (name, pattern, output_negated): the pattern equals XOR(?a, ?b)
# when output_negated is False and XNOR(?a, ?b) otherwise.
_XOR2_BASE_PATTERNS: List[Tuple[str, str, bool]] = [
    ("xor2-sop", "(| (& ?a (~ ?b)) (& (~ ?a) ?b))", False),
    ("xor2-pos", "(& (| ?a ?b) (~ (& ?a ?b)))", False),
    ("xor2-pos2", "(& (| ?a ?b) (| (~ ?a) (~ ?b)))", False),
    ("xor2-nand", "(& (~ (& ?a ?b)) (~ (& (~ ?a) (~ ?b))))", False),
    ("xor2-aig", "(~ (& (~ (& ?a (~ ?b))) (~ (& (~ ?a) ?b))))", False),
    ("xnor2-sop", "(| (& ?a ?b) (& (~ ?a) (~ ?b)))", True),
    ("xnor2-nor", "(| (& ?a ?b) (~ (| ?a ?b)))", True),
    ("xnor2-pos", "(& (| ?a (~ ?b)) (| (~ ?a) ?b))", True),
    ("xnor2-aig", "(& (~ (& ?a (~ ?b))) (~ (& (~ ?a) ?b)))", True),
    ("xnor2-oai", "(~ (& (| ?a ?b) (~ (& ?a ?b))))", True),
]

# XOR algebra rules expressed on the ^ operator itself.
_XOR_ALGEBRA: List[Tuple[str, str, str]] = [
    ("xor-comm", "(^ ?a ?b)", "(^ ?b ?a)"),
    ("xor-assoc-lr", "(^ (^ ?a ?b) ?c)", "(^ ?a (^ ?b ?c))"),
    ("xor-assoc-rl", "(^ ?a (^ ?b ?c))", "(^ (^ ?a ?b) ?c)"),
    ("xor-neg-left", "(^ (~ ?a) ?b)", "(~ (^ ?a ?b))"),
    ("xor-neg-right", "(^ ?a (~ ?b))", "(~ (^ ?a ?b))"),
    ("xor-neg-both", "(^ (~ ?a) (~ ?b))", "(^ ?a ?b)"),
    ("xor-neg-out", "(~ (^ (~ ?a) ?b))", "(^ ?a ?b)"),
    ("xor-false", "(^ ?a 0)", "?a"),
    ("xor-true", "(^ ?a 1)", "(~ ?a)"),
    ("xor-self", "(^ ?a ?a)", "0"),
    ("xor-self-neg", "(^ ?a (~ ?a))", "1"),
    ("xnor-op-intro", "(xnor ?a ?b)", "(~ (^ ?a ?b))"),
]

# The paper's three-input sum-of-minterms form (Table I) and its XNOR dual.
_XOR3_MINTERM_PATTERNS: List[Tuple[str, str, bool]] = [
    ("xor3-minterms",
     "(| (| (& ?a (& (~ ?b) (~ ?c))) (& (~ ?a) (& ?b (~ ?c)))) "
     "(| (& (~ ?a) (& (~ ?b) ?c)) (& ?a (& ?b ?c))))", False),
    ("xor3-mux-factored",
     "(| (& ?a (~ (^ ?b ?c))) (& (~ ?a) (^ ?b ?c)))", False),
    ("xnor3-mux-factored",
     "(| (& ?a (^ ?b ?c)) (& (~ ?a) (~ (^ ?b ?c))))", True),
]


def xor_rules(include_variants: bool = True) -> List[Rewrite]:
    """Build the XOR identification part of R2.

    Args:
        include_variants: also generate input-negation variants of the base
            structural patterns (the bulk of the paper's 90 XOR rules).
    """
    rules: List[Rewrite] = []
    seen: set = set()

    def add_structural(name: str, lhs: str, negated_output: bool) -> None:
        key = (lhs, negated_output)
        if key in seen:
            return
        seen.add(key)
        rhs = "(~ (^ ?a ?b))" if negated_output else "(^ ?a ?b)"
        rules.append(Rewrite.parse(name, lhs, rhs, group="R2-xor"))

    for name, lhs, negated in _XOR2_BASE_PATTERNS:
        add_structural(name, lhs, negated)
        if not include_variants:
            continue
        for variant_lhs, mask in _negation_variants(lhs, ("?a", "?b")):
            if mask == 0:
                continue
            # Negating one input of an XOR complements the output; negating
            # both leaves it unchanged.
            parity = bin(mask).count("1") % 2 == 1
            add_structural(f"{name}-n{mask}", variant_lhs, negated ^ parity)

    for name, lhs, rhs in _XOR_ALGEBRA:
        rules.append(Rewrite.parse(name, lhs, rhs, group="R2-xor"))

    # XOR3 formation: both associativity groupings collapse into a canonical
    # (sorted-children) three-input XOR node.
    rules.append(Rewrite.with_applier(
        "xor3-intro-left", "(^ (^ ?a ?b) ?c)",
        _sorted_applier(Op.XOR3, ("?a", "?b", "?c")), group="R2-xor"))
    rules.append(Rewrite.with_applier(
        "xor3-intro-right", "(^ ?a (^ ?b ?c))",
        _sorted_applier(Op.XOR3, ("?a", "?b", "?c")), group="R2-xor"))
    rules.append(Rewrite.parse(
        "xor3-expand", "(xor3 ?a ?b ?c)", "(^ (^ ?a ?b) ?c)", group="R2-xor"))

    for name, lhs, negated in _XOR3_MINTERM_PATTERNS:
        rules.append(Rewrite.with_applier(
            name, lhs,
            _sorted_applier(Op.XOR3, ("?a", "?b", "?c"), negate_output=negated),
            group="R2-xor"))
    return rules


# ----------------------------------------------------------------------
# MAJ identification rules.
# ----------------------------------------------------------------------

# Each entry: (name, pattern over ?a ?b ?c, output_negated).  The pattern is
# MAJ(a, b, c) when output_negated is False, minority otherwise.
_MAJ_BASE_PATTERNS: List[Tuple[str, str, bool]] = [
    ("maj-sop-lr", "(| (| (& ?a ?b) (& ?a ?c)) (& ?b ?c))", False),
    ("maj-sop-rl", "(| (& ?a ?b) (| (& ?a ?c) (& ?b ?c)))", False),
    ("maj-carry-or", "(| (& ?a ?b) (& ?c (| ?a ?b)))", False),
    ("maj-carry-or2", "(| (& ?c (| ?a ?b)) (& ?a ?b))", False),
    ("maj-carry-xor", "(| (& ?a ?b) (& ?c (^ ?a ?b)))", False),
    ("maj-pos", "(& (| ?a ?b) (| ?c (& ?a ?b)))", False),
    ("maj-pos2", "(& (| (& ?a ?b) ?c) (| ?a ?b))", False),
    ("maj-pos-full", "(& (& (| ?a ?b) (| ?a ?c)) (| ?b ?c))", False),
    ("maj-paper-nand", "(& (| ?a (& ?b ?c)) (| ?b ?c))", False),
    ("maj-aig", "(~ (& (~ (& ?a ?b)) (~ (& ?c (| ?a ?b)))))", False),
    ("min-sop", "(| (| (& (~ ?a) (~ ?b)) (& (~ ?a) (~ ?c))) (& (~ ?b) (~ ?c)))", True),
    ("min-nor", "(~ (| (| (& ?a ?b) (& ?a ?c)) (& ?b ?c)))", True),
    ("min-oai", "(~ (& (| ?a ?b) (| ?c (& ?a ?b))))", True),
]

# Majority algebra on the maj operator itself.
_MAJ_ALGEBRA_APPLIERS: List[Tuple[str, str, Tuple[str, str, str], bool]] = [
    # maj(~a, ~b, ~c) = ~maj(a, b, c)
    ("maj-neg-all", "(maj (~ ?a) (~ ?b) (~ ?c))", ("?a", "?b", "?c"), True),
]

_MAJ_ALGEBRA_PATTERNS: List[Tuple[str, str, str]] = [
    ("maj-const0", "(maj ?a ?b 0)", "(& ?a ?b)"),
    ("maj-const1", "(maj ?a ?b 1)", "(| ?a ?b)"),
    ("maj-same", "(maj ?a ?a ?b)", "?a"),
    ("maj-expand", "(maj ?a ?b ?c)", "(| (| (& ?a ?b) (& ?a ?c)) (& ?b ?c))"),
]


def maj_rules(include_variants: bool = True) -> List[Rewrite]:
    """Build the MAJ identification part of R2."""
    rules: List[Rewrite] = []
    seen: set = set()

    def add_structural(name: str, lhs: str, negated_output: bool) -> None:
        key = (lhs, negated_output)
        if key in seen:
            return
        seen.add(key)
        rules.append(Rewrite.with_applier(
            name, lhs,
            _sorted_applier(Op.MAJ, ("?a", "?b", "?c"), negate_output=negated_output),
            group="R2-maj"))

    for name, lhs, negated in _MAJ_BASE_PATTERNS:
        add_structural(name, lhs, negated)

    if include_variants:
        # Input-negation variants of the carry-chain forms: these are the
        # shapes AOI/OAI-mapped carries take.  Negating all three inputs of a
        # majority complements it; other negation masks produce functions
        # outside the MAJ NPN-exact set and are not valid rewrites, so only
        # the all-negated variants are generated.
        for name, lhs, negated in _MAJ_BASE_PATTERNS:
            variant_lhs = lhs
            for var in ("?a", "?b", "?c"):
                variant_lhs = variant_lhs.replace(var, f"(~ {var})")
            add_structural(f"{name}-nall", variant_lhs, not negated)

    for name, lhs, names, negated in _MAJ_ALGEBRA_APPLIERS:
        rules.append(Rewrite.with_applier(
            name, lhs, _sorted_applier(Op.MAJ, names, negate_output=negated),
            group="R2-maj"))
    for name, lhs, rhs in _MAJ_ALGEBRA_PATTERNS:
        rules.append(Rewrite.parse(name, lhs, rhs, group="R2-maj"))
    return rules


def identification_rules(include_variants: bool = True) -> List[Rewrite]:
    """Return the full R2 ruleset (XOR rules followed by MAJ rules)."""
    return xor_rules(include_variants) + maj_rules(include_variants)


def ruleset_summary(lightweight: bool = True,
                    include_variants: bool = True) -> Dict[str, int]:
    """Return the rule counts per group (the reproduction's Table I totals)."""
    from .rules_basic import basic_rules

    r1 = basic_rules(lightweight=lightweight)
    xor = xor_rules(include_variants)
    maj = maj_rules(include_variants)
    return {
        "R1-basic": len(r1),
        "R2-xor": len(xor),
        "R2-maj": len(maj),
        "total": len(r1) + len(xor) + len(maj),
    }
