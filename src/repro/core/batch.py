"""Batch driver: run many netlists through :class:`BoolEPipeline` at once.

``BatchPipeline`` executes a set of :class:`BatchJob` items on a
``concurrent.futures`` executor, applies per-circuit resource limits (each
job may carry its own :class:`BoolEOptions`), isolates failures (one broken
circuit never aborts the batch), and aggregates everything into a
:class:`BatchReport` suitable for the benchmark harness.

Two executor backends are supported:

* ``"thread"`` (default) — a ``ThreadPoolExecutor``.  The pipeline is pure
  Python, so threads mostly interleave rather than parallelise under the
  GIL, but results can carry the full :class:`BoolEResult` objects and
  nothing needs to be picklable.
* ``"process"`` — a ``ProcessPoolExecutor``.  True parallelism; jobs and
  their options are pickled into the workers, and only the numeric summary
  travels back (``BatchItemResult.result`` is ``None``).

With a ``store`` (an :class:`~repro.store.ArtifactStore` or directory
path) the driver consults the content-addressed cache *before*
dispatching: jobs whose saturated e-graph is already stored run inline on
the calling thread — a cheap load instead of a saturation, and when the
``kind="extraction"`` artifact is warm too the job skips cost propagation
as well (``BatchItemResult.extraction_cached``) — and only genuinely new
circuits occupy executor workers, so repeated batch sweeps pay only for
what changed.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..aig import AIG
from ..store import ArtifactStore
from .pipeline import BoolEOptions, BoolEPipeline, BoolEResult

__all__ = ["BatchJob", "BatchItemResult", "BatchReport", "BatchPipeline"]


@dataclass
class BatchJob:
    """One circuit to push through the pipeline.

    Attributes:
        name: label used in reports (defaults to the AIG's own name).
        aig: the input netlist.
        options: per-circuit pipeline configuration (iteration budgets, node
            and time limits, ...); ``None`` inherits the batch default.
    """

    name: str
    aig: AIG
    options: Optional[BoolEOptions] = None


@dataclass
class BatchItemResult:
    """Outcome of one batch job.

    Attributes:
        name: the job's label.
        ok: True when the pipeline completed without raising.
        runtime: wall-clock seconds spent inside the pipeline for this job.
        summary: the :meth:`BoolEResult.summary` numbers (empty on failure).
        error: the formatted exception when ``ok`` is False.
        result: the full :class:`BoolEResult` when available (thread backend
            with ``keep_results=True``), else ``None``.
        cached: True when the saturated e-graph came from the artifact
            store (the job skipped saturation entirely).
        extraction_cached: True when the extraction + reconstruction
            came from a ``kind="extraction"`` artifact (the job skipped
            cost propagation).  Independent of ``cached``: the extraction
            artifact can survive snapshot GC, so a job may re-saturate yet
            still skip extraction.  A fully warm two-level hit is
            ``cached and extraction_cached``.
    """

    name: str
    ok: bool
    runtime: float = 0.0
    summary: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    result: Optional[BoolEResult] = None
    cached: bool = False
    extraction_cached: bool = False


@dataclass
class BatchReport:
    """Aggregated outcome of a whole batch run."""

    items: List[BatchItemResult] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def num_ok(self) -> int:
        """Number of jobs that completed successfully."""
        return sum(1 for item in self.items if item.ok)

    @property
    def num_failed(self) -> int:
        """Number of jobs that raised."""
        return len(self.items) - self.num_ok

    @property
    def num_cached(self) -> int:
        """Number of jobs whose saturation was served from the store."""
        return sum(1 for item in self.items if item.cached)

    @property
    def num_extraction_cached(self) -> int:
        """Number of jobs whose extraction was served from the store.

        Counts extraction hits regardless of the saturation level — a job
        whose snapshot was GC'd re-saturates but still skips cost
        propagation.  Count fully warm two-level hits with
        ``sum(1 for i in report.items if i.cached and i.extraction_cached)``.
        """
        return sum(1 for item in self.items if item.extraction_cached)

    @property
    def total_runtime(self) -> float:
        """Sum of per-circuit pipeline runtimes (CPU-ish seconds)."""
        return sum(item.runtime for item in self.items)

    @property
    def throughput(self) -> float:
        """Completed circuits per wall-clock second."""
        if self.wall_time <= 0:
            return 0.0
        return self.num_ok / self.wall_time

    def item(self, name: str) -> BatchItemResult:
        """Return the result of the job called ``name``."""
        for entry in self.items:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def aggregate(self) -> Dict[str, float]:
        """Column-wise sums of the successful jobs' summaries."""
        totals: Dict[str, float] = {}
        for entry in self.items:
            if not entry.ok:
                continue
            for key, value in entry.summary.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def failures(self) -> List[Tuple[str, str]]:
        """Return ``(name, error)`` pairs of the failed jobs."""
        return [(item.name, item.error or "unknown error")
                for item in self.items if not item.ok]


def _run_job(job: BatchJob, default_options: Optional[BoolEOptions],
             keep_result: bool,
             store_root: Optional[str] = None) -> BatchItemResult:
    """Worker body: run one job, capturing any failure.

    Module-level so the process backend can pickle it; the store travels
    as its root path (an :class:`ArtifactStore` holds an unpicklable lock)
    and is reopened inside the worker.
    """
    start = time.perf_counter()
    try:
        pipeline = BoolEPipeline(job.options or default_options)
        result = pipeline.run(job.aig, store=store_root)
    except Exception as error:  # noqa: BLE001 - failure isolation is the point
        return BatchItemResult(
            name=job.name, ok=False,
            runtime=time.perf_counter() - start,
            error=f"{type(error).__name__}: {error}")
    return BatchItemResult(
        name=job.name, ok=True,
        runtime=time.perf_counter() - start,
        summary=result.summary(),
        result=result if keep_result else None,
        cached=result.cache_hit,
        extraction_cached=result.extraction_cache_hit)


class BatchPipeline:
    """Run many AIGs through :class:`BoolEPipeline` concurrently.

    Example::

        jobs = [BatchJob(f"rca{w}", ripple_carry_adder(w)[0]) for w in (4, 8)]
        report = BatchPipeline(max_workers=4).run(jobs)
        assert report.num_failed == 0

    Args:
        options: default :class:`BoolEOptions` for jobs that carry none.
        max_workers: executor pool size (``None`` = executor default).
        executor: ``"thread"`` or ``"process"`` (see module docstring).
        keep_results: attach the full :class:`BoolEResult` to each item
            (forced off on the process backend to avoid shipping e-graphs
            between processes).
        store: artifact store (or its directory path) consulted before
            dispatch; cached jobs bypass the executor entirely.
    """

    def __init__(self, options: Optional[BoolEOptions] = None, *,
                 max_workers: Optional[int] = None,
                 executor: str = "thread",
                 keep_results: bool = True,
                 store: Union[ArtifactStore, str, Path, None] = None) -> None:
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor backend {executor!r}")
        self.options = options
        self.max_workers = max_workers
        self.executor = executor
        self.keep_results = keep_results and executor == "thread"
        if isinstance(store, ArtifactStore):
            self.store_root: Optional[str] = str(store.root)
        elif store is not None:
            self.store_root = str(Path(store).expanduser())
        else:
            self.store_root = None

    def _probe_pipeline(self, job: BatchJob,
                        cache: Dict[int, BoolEPipeline]) -> BoolEPipeline:
        """One fingerprinting pipeline per distinct options object.

        Jobs overwhelmingly share the batch default options; reusing the
        pipeline reuses its parsed rulesets and memoized options/ruleset
        fingerprints, so probing N jobs costs N AIG digests, not N full
        ruleset fingerprints."""
        options = job.options or self.options
        pipeline = cache.get(id(options))
        if pipeline is None:
            pipeline = cache[id(options)] = BoolEPipeline(options)
        return pipeline

    def run(self, jobs: Iterable[Union[BatchJob, AIG]]) -> BatchReport:
        """Execute every job and return the aggregated report.

        Bare :class:`AIG` instances are wrapped into jobs named after the
        AIG (falling back to their position in the batch).  Item order in
        the report matches submission order regardless of completion order.

        With a store configured, every job's cache key is probed first:
        hits run inline on this thread (load + extraction only) while the
        executor works on the misses in parallel.
        """
        normalized = [self._normalize(job, index)
                      for index, job in enumerate(jobs)]
        report = BatchReport()
        if not normalized:
            return report

        store = (ArtifactStore(self.store_root)
                 if self.store_root is not None else None)
        pool_cls = (ThreadPoolExecutor if self.executor == "thread"
                    else ProcessPoolExecutor)
        start = time.perf_counter()
        results: Dict[int, BatchItemResult] = {}
        probe_cache: Dict[int, BoolEPipeline] = {}
        with pool_cls(max_workers=self.max_workers) as pool:
            futures: Dict[Future, int] = {}
            inline: List[int] = []
            for index, job in enumerate(normalized):
                if store is not None and store.contains(
                        self._probe_pipeline(job, probe_cache)
                        .cache_key(job.aig)):
                    inline.append(index)
                else:
                    futures[pool.submit(_run_job, job, self.options,
                                        self.keep_results,
                                        self.store_root)] = index
            # Cached jobs are served while the pool chews on the misses.
            for index in inline:
                results[index] = _run_job(normalized[index], self.options,
                                          self.keep_results, self.store_root)
            for future in as_completed(futures):
                index = futures[future]
                try:
                    results[index] = future.result()
                except Exception as error:  # noqa: BLE001 - worker crashed
                    results[index] = BatchItemResult(
                        name=normalized[index].name, ok=False,
                        error=f"{type(error).__name__}: {error}")
        report.items = [results[index] for index in range(len(normalized))]
        report.wall_time = time.perf_counter() - start
        return report

    @staticmethod
    def _normalize(job: Union[BatchJob, AIG], index: int) -> BatchJob:
        if isinstance(job, BatchJob):
            return job
        if isinstance(job, AIG):
            return BatchJob(name=job.name or f"job{index}", aig=job)
        raise TypeError(f"cannot interpret batch job {job!r}")
