"""Batch driver: run many netlists through :class:`BoolEPipeline` at once.

``BatchPipeline`` executes a set of :class:`BatchJob` items on a worker
pool, applies per-circuit resource limits (each job may carry its own
:class:`BoolEOptions`), isolates failures (one broken circuit never aborts
the batch), and aggregates everything into a :class:`BatchReport` suitable
for the benchmark harness.

Three executor backends are supported:

* ``"process"`` (default) — a ``ProcessPoolExecutor`` on a **forkserver**
  context.  True parallelism for the pure-Python pipeline.  Workers are
  initialised once with the batch's store root and default options, so the
  parsed rulesets and the store handle are built per *worker*, not per
  job; jobs are submitted in **chunks** so thousands-of-circuit sweeps pay
  one pickle round-trip per chunk instead of per circuit.  Results travel
  back as :meth:`~repro.core.pipeline.BoolEResult.lightweight` copies —
  reports, counts, the reconstructed netlist and timings, everything
  except the e-graph — so ``keep_results=True`` works on every backend.
  If a worker dies (OOM-killed, segfault, machine reboot), the broken pool
  is rebuilt and the undone jobs are **requeued** (up to ``retries``
  times); with a store configured the retried jobs resume from whatever
  phase artifacts and ``kind="checkpoint"`` snapshots the dead worker
  already persisted, so only the genuinely unfinished phase re-runs.
* ``"thread"`` — a ``ThreadPoolExecutor``.  The pipeline is pure Python,
  so threads mostly interleave rather than parallelise under the GIL, but
  nothing needs to be picklable and results carry the full
  :class:`BoolEResult` objects (e-graph included).
* ``"serial"`` — run every job inline on the calling thread, reusing one
  pipeline per distinct options object.  The reference backend for
  determinism comparisons and the cheapest for small batches.

All three backends produce bit-identical summaries and aggregates for the
same job list (``tests/test_batch.py`` holds this across backends and
``PYTHONHASHSEED`` values).

Scheduling is **plan-driven**: every run first computes a
:class:`BatchPlan` (see :meth:`BatchPipeline.plan`) — each job's
:class:`~repro.core.phases.PipelinePlan` against the store, with zero
execution.  The plan decides dispatch: jobs warm against the store run
inline on the calling thread (a cheap load instead of a saturation);
jobs collapsing onto the same final content key execute once and the
duplicates carry the shared result; and jobs whose saturated prefix an
earlier cold job will produce are held back to a second wave, so a
shared prefix (same saturation, different ``refine_rounds`` / cost
models) is saturated exactly once per sweep.  Inside a worker the phase
graph applies the same logic per *phase*: a job whose snapshot is warm
but whose extraction artifact is not computes only extraction, so only
genuinely new phases ever cross a process boundary.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..aig import AIG
from ..store import ArtifactStore
from .phases import PipelinePlan
from .pipeline import BoolEOptions, BoolEPipeline, BoolEResult

__all__ = [
    "BatchItemPlan",
    "BatchItemResult",
    "BatchJob",
    "BatchPipeline",
    "BatchPlan",
    "BatchReport",
    "plan_batch",
]

#: Auto-chunking splits the cold-job list into roughly this many chunks
#: per worker, balancing pickle amortisation against tail latency.
_CHUNKS_PER_WORKER = 4

#: Test-only fault injection: when this environment variable names a path
#: that does not exist yet, the first chunk processed by any process
#: worker creates it and hard-kills the worker (``os._exit``), simulating
#: an OOM-kill mid-batch.  Used by the requeue tests; never set it in
#: production.
_KILL_ENV = "_REPRO_BATCH_KILL_WORKER_ONCE"


@dataclass
class BatchJob:
    """One circuit to push through the pipeline.

    Attributes:
        name: label used in reports (defaults to the AIG's own name).
        aig: the input netlist.
        options: per-circuit pipeline configuration (iteration budgets, node
            and time limits, ...); ``None`` inherits the batch default.
    """

    name: str
    aig: AIG
    options: Optional[BoolEOptions] = None


@dataclass
class BatchItemResult:
    """Outcome of one batch job.

    Attributes:
        name: the job's label.
        ok: True when the pipeline completed without raising.
        runtime: wall-clock seconds spent inside the pipeline for this job.
        summary: the :meth:`BoolEResult.summary` numbers (empty on failure).
        error: the formatted exception when ``ok`` is False.
        result: the :class:`BoolEResult` when ``keep_results=True`` — the
            full object on the serial/thread backends and for store-warm
            inline jobs, a :meth:`~BoolEResult.lightweight` copy (reports,
            counts, reconstructed netlist; no e-graph) from process
            workers.
        cached: True when the saturated e-graph came from the artifact
            store (the job skipped saturation entirely).
        extraction_cached: True when the extraction + reconstruction
            came from a ``kind="extraction"`` artifact (the job skipped
            cost propagation).  Independent of ``cached``: the extraction
            artifact can survive snapshot GC, so a job may re-saturate yet
            still skip extraction.  A fully warm two-level hit is
            ``cached and extraction_cached``.
        resumed_phase: phase the job resumed from a ``kind="checkpoint"``
            artifact, if any (see ``BoolEOptions.checkpoint_every``).
        attempts: 1 for first-try completions; >1 when the job was
            requeued after a broken worker pool.
        deduped_from: name of the job this item shares its execution with
            — the planner collapsed both jobs onto the same final content
            key, ran one and cloned the outcome (``result`` is the *same*
            object, deliberately).
        prefix_shared: True when the planner scheduled this job behind a
            leader that saturates their shared prefix, so this job did
            extraction-only work.
    """

    name: str
    ok: bool
    runtime: float = 0.0
    summary: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    result: Optional[BoolEResult] = None
    cached: bool = False
    extraction_cached: bool = False
    resumed_phase: Optional[str] = None
    attempts: int = 1
    deduped_from: Optional[str] = None
    prefix_shared: bool = False


@dataclass
class BatchItemPlan:
    """One job's slot in a :class:`BatchPlan`.

    Attributes:
        name: the job's label.
        plan: the job's :class:`~repro.core.phases.PipelinePlan` (``None``
            when planning itself failed — bad options, broken netlist).
        error: the captured planning failure, if any.  The job is still
            scheduled cold so execution reports the failure as its own
            item, exactly as before.
        duplicate_of: name of the earlier job this one collapses onto
            (same final content key — interchangeable results).
        prefix_leader: name of the earlier cold job that will saturate
            this job's shared prefix; this job is dispatched only after
            the leader completes and then does extraction-only work.
        inline: True when the job is warm against the *real* store right
            now and will be served on the calling thread.
    """

    name: str
    plan: Optional[PipelinePlan] = None
    error: Optional[str] = None
    duplicate_of: Optional[str] = None
    prefix_leader: Optional[str] = None
    inline: bool = False

    @property
    def final_key(self) -> Optional[str]:
        return self.plan.final_key if self.plan is not None else None

    @property
    def schedule(self) -> str:
        """Human-readable dispatch decision for this job."""
        if self.error is not None:
            return "error"
        if self.duplicate_of is not None:
            return f"duplicate:{self.duplicate_of}"
        if self.inline:
            return "inline"
        if self.prefix_leader is not None:
            return f"after:{self.prefix_leader}"
        return "pool"

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "schedule": self.schedule,
            "error": self.error,
            "plan": self.plan.to_json() if self.plan is not None else None,
        }


@dataclass
class BatchPlan:
    """A whole sweep planned up front — zero phases executed.

    Produced by :meth:`BatchPipeline.plan` (and computed internally by
    every :meth:`BatchPipeline.run`).  Jobs are planned in submission
    order against the store *plus* an overlay of what earlier planned
    jobs will have written, so a sweep sharing one saturated prefix plans
    as one cold leader and N-1 warm dependents.
    """

    items: List[BatchItemPlan] = field(default_factory=list)
    #: Wall-clock seconds the planning pass itself took.
    plan_seconds: float = 0.0

    def item(self, name: str) -> BatchItemPlan:
        for entry in self.items:
            if entry.name == name:
                return entry
        raise KeyError(name)

    @property
    def num_jobs(self) -> int:
        return len(self.items)

    @property
    def num_warm(self) -> int:
        """Jobs warm against the real store (served inline, no pool)."""
        return sum(1 for item in self.items if item.inline)

    @property
    def num_fully_warm(self) -> int:
        """Jobs predicted to execute no phase body at all."""
        return sum(1 for item in self.items
                   if item.plan is not None and item.plan.is_fully_warm
                   and item.duplicate_of is None)

    @property
    def num_deduped(self) -> int:
        """Jobs collapsed onto an earlier job's identical final key."""
        return sum(1 for item in self.items
                   if item.duplicate_of is not None)

    @property
    def num_prefix_shared(self) -> int:
        """Jobs scheduled behind a leader that saturates their prefix."""
        return sum(1 for item in self.items
                   if item.prefix_leader is not None)

    @property
    def num_cold(self) -> int:
        """Jobs dispatched to the pool (includes prefix dependents)."""
        return sum(1 for item in self.items
                   if item.duplicate_of is None and not item.inline)

    @property
    def num_saturations(self) -> int:
        """Distinct saturations the sweep will actually run."""
        return sum(1 for item in self.items
                   if item.plan is not None and item.duplicate_of is None
                   and not item.plan.predicts_cache_hit)

    def summary(self) -> Dict[str, float]:
        return {
            "jobs": self.num_jobs,
            "warm": self.num_warm,
            "fully_warm": self.num_fully_warm,
            "cold": self.num_cold,
            "deduped": self.num_deduped,
            "prefix_shared": self.num_prefix_shared,
            "saturations": self.num_saturations,
            "plan_seconds": round(self.plan_seconds, 6),
        }

    def to_json(self) -> Dict:
        return {
            "summary": self.summary(),
            "jobs": [item.to_json() for item in self.items],
        }


@dataclass
class BatchReport:
    """Aggregated outcome of a whole batch run."""

    items: List[BatchItemResult] = field(default_factory=list)
    wall_time: float = 0.0
    #: The up-front :class:`BatchPlan` this run was scheduled from
    #: (``None`` only for empty batches).
    plan: Optional[BatchPlan] = None

    @property
    def num_planned_warm(self) -> int:
        """Jobs the plan predicted warm (served inline from the store)."""
        return self.plan.num_warm if self.plan is not None else 0

    @property
    def num_planned_cold(self) -> int:
        """Jobs the plan dispatched to the pool."""
        return self.plan.num_cold if self.plan is not None else 0

    @property
    def num_deduped(self) -> int:
        """Jobs served by cloning an identical job's result."""
        return sum(1 for item in self.items
                   if item.deduped_from is not None)

    @property
    def num_prefix_shared(self) -> int:
        """Jobs that ran extraction-only behind a shared-prefix leader."""
        return sum(1 for item in self.items if item.prefix_shared)

    @property
    def num_ok(self) -> int:
        """Number of jobs that completed successfully."""
        return sum(1 for item in self.items if item.ok)

    @property
    def num_failed(self) -> int:
        """Number of jobs that raised."""
        return len(self.items) - self.num_ok

    @property
    def num_cached(self) -> int:
        """Number of jobs whose saturation was served from the store."""
        return sum(1 for item in self.items if item.cached)

    @property
    def num_extraction_cached(self) -> int:
        """Number of jobs whose extraction was served from the store.

        Counts extraction hits regardless of the saturation level — a job
        whose snapshot was GC'd re-saturates but still skips cost
        propagation.  Count fully warm two-level hits with
        ``sum(1 for i in report.items if i.cached and i.extraction_cached)``.
        """
        return sum(1 for item in self.items if item.extraction_cached)

    @property
    def num_requeued(self) -> int:
        """Number of jobs that needed more than one attempt."""
        return sum(1 for item in self.items if item.attempts > 1)

    @property
    def total_runtime(self) -> float:
        """Sum of per-circuit pipeline runtimes (CPU-ish seconds)."""
        return sum(item.runtime for item in self.items)

    @property
    def throughput(self) -> float:
        """Completed circuits per wall-clock second."""
        if self.wall_time <= 0:
            return 0.0
        return self.num_ok / self.wall_time

    @property
    def speedup(self) -> float:
        """Ratio of summed circuit runtimes to wall-clock time.

        Degenerate clocks yield 0.0 instead of dividing by zero — a
        merged all-warm report can legitimately have
        ``total_runtime == 0`` (every job served inline from the store).
        """
        if self.wall_time <= 0 or self.total_runtime <= 0:
            return 0.0
        return self.total_runtime / self.wall_time

    @classmethod
    def merge(cls, *reports: "BatchReport") -> "BatchReport":
        """Merge per-host/per-shard reports into one deterministic whole.

        Items are concatenated and sorted by job name (the sort is
        stable, so shard-internal order breaks ties deterministically);
        ``wall_time`` is the max of the inputs, because shards run
        concurrently — per-item runtimes still sum via
        :meth:`total_runtime`.  The merged report carries no
        :class:`BatchPlan` (each shard planned against a different
        store snapshot); plan-derived counters read as zero.
        :meth:`deterministic_aggregate` of the merge equals the
        column-wise sum of the shards' deterministic aggregates.
        """
        items: List[BatchItemResult] = []
        for report in reports:
            items.extend(report.items)
        items.sort(key=lambda item: item.name)
        wall_time = max((report.wall_time for report in reports),
                        default=0.0)
        return cls(items=items, wall_time=wall_time, plan=None)

    def item(self, name: str) -> BatchItemResult:
        """Return the result of the job called ``name``."""
        for entry in self.items:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def aggregate(self) -> Dict[str, float]:
        """Column-wise sums of the successful jobs' summaries."""
        totals: Dict[str, float] = {}
        for entry in self.items:
            if not entry.ok:
                continue
            for key, value in entry.summary.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def deterministic_aggregate(self) -> Dict[str, float]:
        """:meth:`aggregate` minus the wall-clock column.

        Everything left is a pure function of the job list, so two runs —
        any backend, any worker count, any ``PYTHONHASHSEED`` — must agree
        exactly (the cross-backend property test pins this).
        """
        totals = self.aggregate()
        totals.pop("runtime", None)
        return totals

    def failures(self) -> List[Tuple[str, str]]:
        """Return ``(name, error)`` pairs of the failed jobs."""
        return [(item.name, item.error or "unknown error")
                for item in self.items if not item.ok]


# ----------------------------------------------------------------------
# Worker bodies (module-level so the process backend can pickle them)
# ----------------------------------------------------------------------
def _options_cache_key(options: Optional[BoolEOptions]):
    return None if options is None else options.cache_token()


def _run_one(cache: "_PipelineCache", job: BatchJob,
             keep_result: bool, lighten: bool) -> BatchItemResult:
    """Run one job, capturing any failure.

    Pipeline construction happens *inside* the capture: a job whose
    options are invalid (bad refine_rounds, conflicting match caps) must
    fail alone, never abort the batch or take its chunk-mates with it.
    """
    start = time.perf_counter()
    try:
        pipeline = cache.pipeline_for(job.options)
        result = pipeline.run(job.aig)
    except Exception as error:  # noqa: BLE001 - failure isolation is the point
        return BatchItemResult(
            name=job.name, ok=False,
            runtime=time.perf_counter() - start,
            error=f"{type(error).__name__}: {error}")
    kept = None
    if keep_result:
        kept = result.lightweight() if lighten else result
    return BatchItemResult(
        name=job.name, ok=True,
        runtime=time.perf_counter() - start,
        summary=result.summary(),
        result=kept,
        cached=result.cache_hit,
        extraction_cached=result.extraction_cache_hit,
        resumed_phase=result.resumed_phase)


class _PipelineCache:
    """One pipeline per distinct options object, store handle shared.

    Reusing a pipeline reuses its parsed rulesets and memoized
    options/ruleset fingerprints — in a process worker that means the
    read-only ruleset initialisation happens once per worker instead of
    once per job.
    """

    def __init__(self, default_options: Optional[BoolEOptions],
                 store_root: Optional[str]) -> None:
        self.default_options = default_options
        self.store_root = store_root
        self.store = (ArtifactStore(store_root)
                      if store_root is not None else None)
        self._pipelines: Dict[object, BoolEPipeline] = {}

    def pipeline_for(self, options: Optional[BoolEOptions]) -> BoolEPipeline:
        options = options or self.default_options
        key = _options_cache_key(options)
        pipeline = self._pipelines.get(key)
        if pipeline is None:
            pipeline = BoolEPipeline(options, store=self.store)
            self._pipelines[key] = pipeline
        return pipeline


#: Per-process worker state, filled by :func:`_process_worker_init`.
_WORKER: Dict[str, object] = {}


def _process_worker_init(store_root: Optional[str],
                         default_options: Optional[BoolEOptions],
                         fault_marker: Optional[str]) -> None:
    """Process-pool initializer: one store handle + pre-parsed rulesets.

    Building the default pipeline here moves the shared read-only setup
    (ruleset parsing, fingerprint memoization, store open) off the job
    path: every job the worker ever runs reuses it.  ``fault_marker`` is
    the test-only kill switch, resolved in the *parent* because the
    forkserver daemon freezes its environment when it starts.
    """
    cache = _PipelineCache(default_options, store_root)
    cache.pipeline_for(None)
    _WORKER["cache"] = cache
    _WORKER["fault_marker"] = fault_marker


def _maybe_inject_worker_fault() -> None:
    marker = _WORKER.get("fault_marker")
    if not marker:
        return
    try:
        # O_EXCL makes exactly one worker die even when several race.
        handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(handle)
    os._exit(17)


def _run_process_chunk(jobs: List[BatchJob],
                       keep_results: bool) -> List[BatchItemResult]:
    """Worker body: run a chunk of jobs against the per-worker cache."""
    _maybe_inject_worker_fault()
    cache = _WORKER["cache"]
    return [_run_one(cache, job, keep_results, lighten=True)
            for job in jobs]


def _run_thread_job(job: BatchJob, default_options: Optional[BoolEOptions],
                    keep_result: bool,
                    store_root: Optional[str]) -> BatchItemResult:
    """Thread-pool body: per-job cache (rulesets are not shared between
    concurrently running saturations)."""
    cache = _PipelineCache(default_options, store_root)
    return _run_one(cache, job, keep_result, lighten=False)


def _chunked(indices: Sequence[int], size: int) -> List[List[int]]:
    return [list(indices[start:start + size])
            for start in range(0, len(indices), size)]


def plan_batch(jobs: Sequence[BatchJob],
               pipeline_for: Callable[[Optional[BoolEOptions]],
                                      BoolEPipeline],
               store: Optional[ArtifactStore]) -> BatchPlan:
    """Plan a job list with the prefix-sharing store overlay.

    The shared scheduling brain of :meth:`BatchPipeline.plan` and the
    service's ``JobService.submit_sweep``: jobs are planned in submission
    order against one read of the store index *plus* an overlay of what
    earlier planned jobs will have written, so a sweep sharing one
    saturated prefix plans as one cold leader and N-1 dependents, and
    jobs collapsing onto the same final content key are marked as
    duplicates of the first.  ``pipeline_for`` maps a job's options to a
    (cached) :class:`BoolEPipeline`; the store is only probed read-only.
    """
    started = time.perf_counter()
    batch = BatchPlan()
    kinds = store.kinds() if store is not None else None
    # Keys earlier planned jobs will have written/deleted by the time
    # a later job runs: later plans see their predecessors' warmth.
    overlay_writes: set = set()
    overlay_deletes: set = set()
    # base_key → name of the cold job that will write it first.
    prefix_writer: Dict[str, str] = {}
    seen_final: Dict[str, str] = {}
    for job in jobs:
        try:
            pipeline = pipeline_for(job.options)
            plan = pipeline.plan(
                job.aig, store=store,
                assume_present=tuple(sorted(overlay_writes)),
                assume_absent=tuple(sorted(overlay_deletes)),
                kinds=kinds)
        except Exception as error:  # noqa: BLE001 - bad options/netlist
            # Schedule it cold; the worker-side capture turns the
            # same failure into this job's own error item.
            batch.items.append(BatchItemPlan(
                name=job.name,
                error=f"{type(error).__name__}: {error}"))
            continue
        item = BatchItemPlan(name=job.name, plan=plan)
        final_key = plan.final_key
        canonical = seen_final.get(final_key) if final_key else None
        if canonical is not None:
            # Same final content key: interchangeable results.  No
            # overlay updates — the canonical job already made them.
            item.duplicate_of = canonical
            batch.items.append(item)
            continue
        if final_key:
            seen_final[final_key] = job.name
        if plan.predicts_cache_hit:
            leader = (prefix_writer.get(plan.base_key)
                      if plan.base_key else None)
            if leader is not None:
                # Warm only via the overlay: the prefix does not
                # exist yet — its writer must run first.
                item.prefix_leader = leader
            else:
                item.inline = True
        if store is not None:
            overlay_writes.update(plan.planned_writes)
            overlay_deletes.update(plan.planned_deletes)
            if (plan.base_key and plan.base_key in plan.planned_writes
                    and plan.base_key not in prefix_writer):
                prefix_writer[plan.base_key] = job.name
        batch.items.append(item)
    batch.plan_seconds = time.perf_counter() - started
    return batch


class BatchPipeline:
    """Run many AIGs through :class:`BoolEPipeline` concurrently.

    Example::

        jobs = [BatchJob(f"rca{w}", ripple_carry_adder(w)[0]) for w in (4, 8)]
        report = BatchPipeline(max_workers=4).run(jobs)
        assert report.num_failed == 0

    Args:
        options: default :class:`BoolEOptions` for jobs that carry none.
        max_workers: pool size (``None`` = executor default; ignored by
            the serial backend).
        executor: ``"process"`` (default), ``"thread"`` or ``"serial"``
            (see module docstring).
        keep_results: attach a :class:`BoolEResult` to each item — the
            full object on serial/thread, a lightweight copy (reports +
            counts + reconstructed netlist, no e-graph) from process
            workers.
        store: artifact store (or its directory path) consulted before
            dispatch; jobs with a warm saturated snapshot bypass the pool
            entirely, and pool workers reuse the store per phase.
        chunk_size: jobs per process-pool submission (``None`` = automatic
            from the batch and pool size).
        retries: times a broken process pool is rebuilt and the undone
            jobs requeued before they are reported as failures.
    """

    def __init__(self, options: Optional[BoolEOptions] = None, *,
                 max_workers: Optional[int] = None,
                 executor: str = "process",
                 keep_results: bool = True,
                 store: Union[ArtifactStore, str, Path, None] = None,
                 chunk_size: Optional[int] = None,
                 retries: int = 1) -> None:
        if executor not in ("serial", "thread", "process"):
            raise ValueError(f"unknown executor backend {executor!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.options = options
        self.max_workers = max_workers
        self.executor = executor
        self.keep_results = keep_results
        self.chunk_size = chunk_size
        self.retries = max(0, retries)
        if isinstance(store, ArtifactStore):
            self.store_root: Optional[str] = str(store.root)
        elif store is not None:
            self.store_root = str(Path(store).expanduser())
        else:
            self.store_root = None

    # ------------------------------------------------------------------
    def plan(self, jobs: Iterable[Union[BatchJob, AIG]]) -> BatchPlan:
        """Plan the whole sweep up front, executing nothing.

        Every job gets a :class:`~repro.core.phases.PipelinePlan`
        (per-phase keys + warm/cold classifications against the store);
        on top, jobs collapsing to the same final key are marked as
        duplicates and jobs whose saturated prefix an earlier cold job
        will produce are folded behind that leader.  The store is only
        probed read-only — a plan never mutates anything.
        """
        normalized = [self._normalize(job, index)
                      for index, job in enumerate(jobs)]
        cache = _PipelineCache(self.options, self.store_root)
        return plan_batch(normalized, cache.pipeline_for, cache.store)

    def run(self, jobs: Iterable[Union[BatchJob, AIG]]) -> BatchReport:
        """Execute every job and return the aggregated report.

        Bare :class:`AIG` instances are wrapped into jobs named after the
        AIG (falling back to their position in the batch).  Item order in
        the report matches submission order regardless of completion order.

        Scheduling is plan-driven (:meth:`plan`): warm jobs are served
        inline on this thread while the pool works on the cold ones;
        jobs collapsing to the same final key execute once and share the
        result; and jobs whose saturated prefix a cold leader produces
        are dispatched in a second wave after the leaders finish, so a
        shared prefix is saturated exactly once per sweep.
        """
        normalized = [self._normalize(job, index)
                      for index, job in enumerate(jobs)]
        report = BatchReport()
        if not normalized:
            return report

        start = time.perf_counter()
        results: Dict[int, BatchItemResult] = {}
        probe_cache = _PipelineCache(self.options, self.store_root)
        plan = plan_batch(normalized, probe_cache.pipeline_for,
                          probe_cache.store)
        report.plan = plan

        inline: List[int] = []
        wave1: List[int] = []
        wave2: List[int] = []
        duplicates: Dict[int, int] = {}
        final_to_index: Dict[str, int] = {}
        for index, item in enumerate(plan.items):
            final_key = item.final_key
            if item.duplicate_of is not None and final_key:
                duplicates[index] = final_to_index[final_key]
                continue
            if final_key:
                final_to_index[final_key] = index
            if item.inline:
                inline.append(index)
            elif item.prefix_leader is not None:
                wave2.append(index)
            else:
                wave1.append(index)

        if self.executor == "serial":
            for index in inline + wave1 + wave2:
                results[index] = _run_one(probe_cache, normalized[index],
                                          self.keep_results, lighten=False)
        elif self.executor == "thread":
            self._run_thread(normalized, inline, wave1, wave2, results,
                             probe_cache)
        else:
            self._run_process(normalized, inline, wave1, wave2, results,
                              probe_cache)

        for index in wave2:
            result = results.get(index)
            if result is not None:
                result.prefix_shared = True
        for index, canonical in duplicates.items():
            source = results[canonical]
            # The result object is shared on purpose (satellite contract:
            # both items carry the one execution's result); only the
            # per-item identity fields are fresh.
            results[index] = dataclasses.replace(
                source,
                name=normalized[index].name,
                summary=dict(source.summary),
                deduped_from=source.name)

        report.items = [results[index] for index in range(len(normalized))]
        report.wall_time = time.perf_counter() - start
        return report

    # ------------------------------------------------------------------
    def _serve_inline(self, normalized: List[BatchJob], inline: List[int],
                      results: Dict[int, BatchItemResult],
                      probe_cache: _PipelineCache) -> None:
        """Serve store-warm jobs on the calling thread."""
        for index in inline:
            results[index] = _run_one(probe_cache, normalized[index],
                                      self.keep_results, lighten=False)

    def _run_thread(self, normalized: List[BatchJob], inline: List[int],
                    wave1: List[int], wave2: List[int],
                    results: Dict[int, BatchItemResult],
                    probe_cache: _PipelineCache) -> None:
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            # Wave 2 (prefix dependents) is submitted only after wave 1
            # completes: the leaders must have persisted the shared
            # saturated artifacts the dependents restore from.
            for wave_index, wave in enumerate((wave1, wave2)):
                futures: Dict[Future, int] = {
                    pool.submit(_run_thread_job, normalized[index],
                                self.options, self.keep_results,
                                self.store_root): index
                    for index in wave}
                if wave_index == 0:
                    # Cached jobs are served while the pool chews on the
                    # misses.
                    self._serve_inline(normalized, inline, results,
                                       probe_cache)
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        results[index] = future.result()
                    except Exception as error:  # noqa: BLE001 - crashed
                        results[index] = BatchItemResult(
                            name=normalized[index].name, ok=False,
                            error=f"{type(error).__name__}: {error}")

    def _pool_size(self, pending: int) -> int:
        if self.max_workers is not None:
            return self.max_workers
        return min(pending, os.cpu_count() or 1)

    def _chunk_size_for(self, pending: int, workers: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, pending // max(1, workers * _CHUNKS_PER_WORKER))

    def _run_process(self, normalized: List[BatchJob], inline: List[int],
                     wave1: List[int], wave2: List[int],
                     results: Dict[int, BatchItemResult],
                     probe_cache: _PipelineCache) -> None:
        method = ("forkserver" if "forkserver"
                  in multiprocessing.get_all_start_methods() else "spawn")
        mp_context = multiprocessing.get_context(method)
        # Wave 2 (prefix dependents) is dispatched only after wave 1: the
        # leaders must have persisted the shared saturated artifacts the
        # dependents restore from.  After a pool break everything still
        # pending is lumped into one wave — finished leaders already
        # warmed the store, and an unfinished one just means its
        # dependents saturate for themselves on retry.
        waves: List[List[int]] = [list(wave1), list(wave2)]
        attempt = 0
        served_inline = False
        while True:
            pending = [index for wave in waves for index in wave
                       if index not in results]
            if not pending:
                if not served_inline:
                    self._serve_inline(normalized, inline, results,
                                       probe_cache)
                return
            workers = self._pool_size(len(pending))
            chunk_size = self._chunk_size_for(len(pending), workers)
            try:
                with ProcessPoolExecutor(
                        max_workers=workers,
                        mp_context=mp_context,
                        initializer=_process_worker_init,
                        initargs=(self.store_root, self.options,
                                  os.environ.get(_KILL_ENV))) as pool:
                    for wave in waves:
                        todo = [index for index in wave
                                if index not in results]
                        futures: Dict[Future, List[int]] = {
                            pool.submit(_run_process_chunk,
                                        [normalized[i] for i in chunk],
                                        self.keep_results): chunk
                            for chunk in _chunked(todo, chunk_size)}
                        if not served_inline:
                            # Cached jobs are served while the pool chews
                            # on the misses.
                            self._serve_inline(normalized, inline, results,
                                               probe_cache)
                            served_inline = True
                        broken = False
                        for future in as_completed(futures):
                            chunk = futures[future]
                            try:
                                items = future.result()
                            except BrokenProcessPool:
                                broken = True
                                continue  # requeued below
                            except Exception as error:  # noqa: BLE001
                                for index in chunk:
                                    results[index] = BatchItemResult(
                                        name=normalized[index].name,
                                        ok=False,
                                        error=(f"{type(error).__name__}: "
                                               f"{error}"),
                                        attempts=attempt + 1)
                                continue
                            for index, item in zip(chunk, items):
                                item.attempts = attempt + 1
                                results[index] = item
                        if broken:
                            # Don't dispatch the next wave on a dead
                            # pool; rebuild and requeue instead.
                            raise BrokenProcessPool(
                                "worker pool broke mid-wave")
            except BrokenProcessPool:
                pass
            pending = [index for wave in waves for index in wave
                       if index not in results]
            if not pending:
                continue  # loop exits at the top
            # A worker died hard and took its chunk(s) with it: rebuild
            # the pool and requeue.  With a store configured the retried
            # jobs resume from the phase artifacts and checkpoints the
            # dead worker already persisted.
            attempt += 1
            if attempt > self.retries:
                for index in pending:
                    results[index] = BatchItemResult(
                        name=normalized[index].name, ok=False,
                        error="worker process pool broke "
                              f"(after {attempt} attempt(s))",
                        attempts=attempt)
                if not served_inline:
                    self._serve_inline(normalized, inline, results,
                                       probe_cache)
                return
            waves = [pending]

    @staticmethod
    def _normalize(job: Union[BatchJob, AIG], index: int) -> BatchJob:
        if isinstance(job, BatchJob):
            return job
        if isinstance(job, AIG):
            return BatchJob(name=job.name or f"job{index}", aig=job)
        raise TypeError(f"cannot interpret batch job {job!r}")
