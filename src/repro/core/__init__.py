"""BoolE core: rulesets, construction, saturation, FA pairing and extraction."""

from .batch import BatchItemResult, BatchJob, BatchPipeline, BatchReport
from .construct import ConstructionResult, aig_to_egraph
from .extraction import (
    BoolEExtraction,
    BoolEExtractor,
    CostEntry,
    FABlockRecord,
    reconstruct_aig,
)
from .fa_structure import (
    FAInsertionReport,
    FAPair,
    count_npn_fa_pairs,
    insert_fa_structures,
)
from .phases import Phase, PhaseContext, PhaseGraph, boole_phases
from .pipeline import BoolEOptions, BoolEPipeline, BoolEResult, run_boole
from .rules_basic import basic_rules, full_basic_rules, lightweight_basic_rules
from .rules_xor_maj import identification_rules, maj_rules, ruleset_summary, xor_rules

__all__ = [
    "BatchItemResult",
    "BatchJob",
    "BatchPipeline",
    "BatchReport",
    "ConstructionResult",
    "aig_to_egraph",
    "BoolEExtraction",
    "BoolEExtractor",
    "CostEntry",
    "FABlockRecord",
    "reconstruct_aig",
    "FAInsertionReport",
    "FAPair",
    "count_npn_fa_pairs",
    "insert_fa_structures",
    "Phase",
    "PhaseContext",
    "PhaseGraph",
    "boole_phases",
    "BoolEOptions",
    "BoolEPipeline",
    "BoolEResult",
    "run_boole",
    "basic_rules",
    "full_basic_rules",
    "lightweight_basic_rules",
    "identification_rules",
    "maj_rules",
    "ruleset_summary",
    "xor_rules",
]
