"""BoolE core: rulesets, construction, saturation, FA pairing and extraction."""

from .batch import (
    BatchItemPlan,
    BatchItemResult,
    BatchJob,
    BatchPipeline,
    BatchPlan,
    BatchReport,
    plan_batch,
)
from .construct import (
    ConstructionResult,
    PlannedConstruction,
    aig_to_egraph,
    planned_construction,
)
from .extraction import (
    BoolEExtraction,
    BoolEExtractor,
    CostEntry,
    FABlockRecord,
    reconstruct_aig,
)
from .fa_structure import (
    FAInsertionReport,
    FAPair,
    count_npn_fa_pairs,
    insert_fa_structures,
)
from .phases import (
    PLAN_COLD,
    PLAN_SKIPPED,
    PLAN_WARM_BOUNDARY,
    PLAN_WARM_CHECKPOINT,
    Phase,
    PhaseContext,
    PhaseGraph,
    PhasePlan,
    PipelinePlan,
    boole_phases,
)
from .pipeline import BoolEOptions, BoolEPipeline, BoolEResult, run_boole
from .rules_basic import basic_rules, full_basic_rules, lightweight_basic_rules
from .rules_xor_maj import identification_rules, maj_rules, ruleset_summary, xor_rules

__all__ = [
    "BatchItemPlan",
    "BatchItemResult",
    "BatchJob",
    "BatchPipeline",
    "BatchPlan",
    "BatchReport",
    "plan_batch",
    "ConstructionResult",
    "PlannedConstruction",
    "aig_to_egraph",
    "planned_construction",
    "BoolEExtraction",
    "BoolEExtractor",
    "CostEntry",
    "FABlockRecord",
    "reconstruct_aig",
    "FAInsertionReport",
    "FAPair",
    "count_npn_fa_pairs",
    "insert_fa_structures",
    "PLAN_COLD",
    "PLAN_SKIPPED",
    "PLAN_WARM_BOUNDARY",
    "PLAN_WARM_CHECKPOINT",
    "Phase",
    "PhaseContext",
    "PhaseGraph",
    "PhasePlan",
    "PipelinePlan",
    "boole_phases",
    "BoolEOptions",
    "BoolEPipeline",
    "BoolEResult",
    "run_boole",
    "basic_rules",
    "full_basic_rules",
    "lightweight_basic_rules",
    "identification_rules",
    "maj_rules",
    "ruleset_summary",
    "xor_rules",
]
