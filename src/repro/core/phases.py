"""Phase-graph execution layer: the pipeline as resumable, cacheable phases.

The paper's Figure-2 flow is six distinct stages; this module makes each
stage a first-class :class:`Phase` whose boundary is (optionally) a store
artifact, and a :class:`PhaseGraph` executor that knows how to

* **restore** — skip a suffix-covering phase entirely when its artifact is
  already in the store (the ``kind="saturated-pipeline"`` and
  ``kind="extraction"`` artifacts each cover everything up to their
  boundary),
* **resume** — pick a killed saturation phase back up mid-phase from a
  ``kind="checkpoint"`` artifact (the :class:`~repro.egraph.Runner`
  checkpoint plus the cumulative upstream state it depends on), and
* **run** — compute a phase the ordinary way, persisting its boundary
  artifact and clearing any superseded checkpoint afterwards.

Phases communicate exclusively through a :class:`PhaseContext`: a run is a
pure fold of phases over the context, which is what lets the batch driver
ship *phases* rather than whole circuits across process boundaries — a
worker that finds the saturated artifact warm computes only extraction,
and a worker that finds a checkpoint replays only the remainder of the
interrupted phase.  Every restore/resume decision is keyed by content
fingerprints (:mod:`repro.store.fingerprint`), so a stale artifact can
mislead scheduling at worst, never results.

The six concrete BoolE phases (``construct``, ``saturate-r1``,
``saturate-r2``, ``insert-fa``, ``extract``, ``reconstruct``) live here
too; :class:`~repro.core.pipeline.BoolEPipeline` is a thin shell that
builds the graph, executes it and assembles the result bundle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, List,
                    Optional, Tuple)

from ..egraph import Op, Runner, RunnerCheckpoint, as_engine
from ..store import (
    KIND_CHECKPOINT,
    KIND_EXTRACTION,
    KIND_SATURATED,
    ArtifactStore,
    SnapshotError,
    aig_from_wire,
    aig_to_wire,
    checkpoint_from_wire,
    checkpoint_to_wire,
    egraph_from_wire,
    egraph_to_wire,
    extraction_from_wire,
    extraction_to_wire,
    phase_checkpoint_key,
    report_from_wire,
    report_to_wire,
)
from .construct import ConstructionResult, aig_to_egraph, planned_construction

if TYPE_CHECKING:  # circular: pipeline builds its phases from here
    from ..aig import AIG
    from ..egraph import EGraph
    from .pipeline import BoolEOptions, BoolEPipeline
from .extraction import FABlockRecord, reconstruct_aig
from .fa_structure import FAPair, FAInsertionReport, count_npn_fa_pairs, insert_fa_structures

__all__ = [
    "PLAN_COLD",
    "PLAN_SKIPPED",
    "PLAN_WARM_BOUNDARY",
    "PLAN_WARM_CHECKPOINT",
    "Phase",
    "PhaseContext",
    "PhaseGraph",
    "PhasePlan",
    "PipelinePlan",
    "boole_phases",
]

# Plan classifications (see :meth:`PhaseGraph.plan`).
#: The phase would run its body from scratch.
PLAN_COLD = "COLD"
#: The phase is covered by a boundary artifact already in the store — it
#: never runs; the deepest such phase restores, the rest are skipped over.
PLAN_WARM_BOUNDARY = "WARM_BOUNDARY"
#: The phase is covered by a live mid-phase checkpoint: the checkpoint
#: owner replays only its tail, phases before it never run.
PLAN_WARM_CHECKPOINT = "WARM_CHECKPOINT"
#: The phase is disabled for this run (e.g. ``extract=False``).
PLAN_SKIPPED = "SKIPPED"

#: Sentinel published by :meth:`Phase.plan_provide` for products that are
#: only *planned*, never computed.  Phases' ``cache_key``/``enabled``
#: predicates must not dereference it (BoolE's don't — the one product a
#: key depends on, construction, gets a real stand-in).
_PLANNED = "<planned>"

#: Exceptions that mean "this artifact payload cannot be decoded" — the
#: executor degrades them to a cache miss (recompute + overwrite), exactly
#: like a missing object, instead of poisoning every run of the circuit.
_DECODE_ERRORS = (SnapshotError, KeyError, IndexError, TypeError, ValueError)


class PhaseContext:
    """Mutable state threaded through one :meth:`PhaseGraph.execute` call.

    Attributes:
        store: artifact store consulted for restore/resume (``None``
            disables every store interaction).
        state: named phase products (``"construction"``, ``"r1_report"``,
            ...) plus the run inputs (``"aig"``, ``"base_key"``).
        timings: per-step wall-clock seconds, same keys the monolithic
            pipeline used to write (``construct``/``r1``/``cache_load``/...).
        artifact_hits: phase name → True when the phase was restored from
            its boundary artifact instead of computed.
        resumed_phase: name of the phase that resumed from a
            ``kind="checkpoint"`` artifact this run, if any.
    """

    def __init__(self, store: Optional[ArtifactStore] = None) -> None:
        self.store = store
        self.state: Dict[str, object] = {}
        self.timings: Dict[str, float] = {}
        self.artifact_hits: Dict[str, bool] = {}
        self.resumed_phase: Optional[str] = None

    def __getitem__(self, name: str) -> Any:
        return self.state[name]

    def __setitem__(self, name: str, value: object) -> None:
        self.state[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self.state

    def get(self, name: str, default: Any = None) -> Any:
        return self.state.get(name, default)


class Phase:
    """One resumable unit of the pipeline.

    The protocol a :class:`PhaseGraph` drives:

    * ``name`` — unique label (progress, checkpoint keys, reporting).
    * ``kind`` — artifact kind persisted at this phase's boundary, or
      ``None`` for phases whose output only lives inside a later phase's
      artifact.
    * :meth:`cache_key` — content key of the boundary artifact; ``None``
      when not yet computable from the context (the executor will ask
      again once more state exists) or never cacheable.
    * :meth:`run` — compute the phase, mutating the context.  ``resume``
      carries a mid-phase token produced by :meth:`load_checkpoint`.
    * :meth:`to_wire` / :meth:`from_wire` — (de)serialize the *cumulative*
      state the boundary artifact covers, so restoring a deep phase
      substitutes for running every phase up to it.
    """

    name: str = "?"
    kind: Optional[str] = None
    #: ``timings`` keys used by the executor for artifact load/store time.
    load_timing: Optional[str] = None
    store_timing: Optional[str] = None
    #: Context keys this phase publishes — however it completes (run,
    #: restore or resume).  The planner uses them to advance a context
    #: without executing anything; see :meth:`plan_provide`.
    provides: Tuple[str, ...] = ()

    def enabled(self, ctx: PhaseContext) -> bool:
        """False skips the phase entirely (e.g. ``extract=False``)."""
        return True

    def plan_provide(self, ctx: PhaseContext) -> None:
        """Publish planning stand-ins for this phase's products.

        The default marks every ``provides`` key with a sentinel — enough
        for membership tests like ``"fa_report" in ctx``.  Phases whose
        products feed later *key computations* override this with a cheap
        exact stand-in (construction predicts its class ids dry).
        """
        for key in self.provides:
            ctx[key] = _PLANNED

    def cache_key(self, ctx: PhaseContext) -> Optional[str]:
        return None

    def restorable(self, ctx: PhaseContext) -> bool:
        """True when :meth:`from_wire` could decode against ``ctx`` now."""
        return True

    def checkpoint_key(self, ctx: PhaseContext) -> Optional[str]:
        """Content key of this phase's mid-phase checkpoint artifact."""
        return None

    def run(self, ctx: PhaseContext, resume: Any = None) -> None:
        raise NotImplementedError

    def to_wire(self, ctx: PhaseContext) -> Dict:
        raise NotImplementedError

    def from_wire(self, ctx: PhaseContext, payload: Dict) -> None:
        raise NotImplementedError

    def load_checkpoint(self, ctx: PhaseContext, payload: Dict) -> Any:
        """Restore mid-phase state into ``ctx``; return the resume token."""
        raise NotImplementedError

    def artifact_meta(self, ctx: PhaseContext) -> Dict:
        return {}


@dataclass
class PhasePlan:
    """One phase's slot in a :class:`PipelinePlan`.

    Attributes:
        name: the phase's name.
        classification: one of :data:`PLAN_COLD`,
            :data:`PLAN_WARM_BOUNDARY`, :data:`PLAN_WARM_CHECKPOINT`,
            :data:`PLAN_SKIPPED`.
        cache_key: the phase's boundary-artifact key (``None`` for phases
            without a ``kind``).
        checkpoint_key: the phase's mid-phase checkpoint key, if any.
        covered_by: for warm phases, the name of the deeper phase whose
            artifact/checkpoint stands in for this one (``None`` when the
            phase is its own restore/resume point).
    """

    name: str
    classification: str
    cache_key: Optional[str] = None
    checkpoint_key: Optional[str] = None
    covered_by: Optional[str] = None

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "classification": self.classification,
            "cache_key": self.cache_key,
            "checkpoint_key": self.checkpoint_key,
            "covered_by": self.covered_by,
        }


@dataclass
class PipelinePlan:
    """What :meth:`PhaseGraph.execute` *would* do, computed hash-first.

    Produced by :meth:`PhaseGraph.plan` (surfaced as
    ``BoolEPipeline.plan``): every phase's content keys and a
    classification of how execution would treat it, with zero phase
    bodies run, zero e-graphs built and zero store mutations.

    Attributes:
        name: display name of the planned netlist.
        base_key: the saturated-pipeline cache key.
        phases: one :class:`PhasePlan` per phase, in graph order.
        restore_phase: deepest phase whose boundary artifact would be
            restored, if any.
        resume_phase: phase that would resume from a live checkpoint.
        planned_writes: boundary-artifact keys execution would put.
        planned_deletes: checkpoint keys execution would delete.
    """

    name: str
    base_key: Optional[str]
    phases: List[PhasePlan] = field(default_factory=list)
    restore_phase: Optional[str] = None
    resume_phase: Optional[str] = None
    planned_writes: List[str] = field(default_factory=list)
    planned_deletes: List[str] = field(default_factory=list)

    def phase(self, name: str) -> PhasePlan:
        """Return the named phase's plan (KeyError when unknown)."""
        for plan in self.phases:
            if plan.name == name:
                return plan
        raise KeyError(name)

    def classification_of(self, name: str) -> str:
        return self.phase(name).classification

    # -- BoolE-shaped accessors (phase names as wired by boole_phases) --
    @property
    def extraction_key(self) -> Optional[str]:
        """The extraction artifact's key (None when extraction disabled)."""
        try:
            plan = self.phase("reconstruct")
        except KeyError:
            return None
        if plan.classification == PLAN_SKIPPED:
            return None
        return plan.cache_key

    @property
    def final_key(self) -> Optional[str]:
        """Key of the deepest boundary artifact this run resolves to.

        Two jobs with equal final keys produce interchangeable results —
        the batch planner dedups on it.
        """
        for plan in reversed(self.phases):
            if plan.classification != PLAN_SKIPPED and plan.cache_key:
                return plan.cache_key
        return self.base_key

    @property
    def predicts_cache_hit(self) -> bool:
        """Would execution report ``cache_hit`` (saturated artifact warm)?"""
        try:
            return (self.phase("insert-fa").classification
                    == PLAN_WARM_BOUNDARY)
        except KeyError:
            return False

    @property
    def predicts_extraction_cache_hit(self) -> bool:
        try:
            return (self.phase("reconstruct").classification
                    == PLAN_WARM_BOUNDARY)
        except KeyError:
            return False

    @property
    def predicts_resumed_phase(self) -> Optional[str]:
        return self.resume_phase

    # -- generic work summary --
    @property
    def cold_phases(self) -> List[str]:
        return [plan.name for plan in self.phases
                if plan.classification == PLAN_COLD]

    @property
    def executed_phases(self) -> List[str]:
        """Phases whose body would actually run (cold + the resume tail)."""
        return [plan.name for plan in self.phases
                if plan.classification == PLAN_COLD
                or (plan.classification == PLAN_WARM_CHECKPOINT
                    and plan.name == self.resume_phase)]

    @property
    def is_fully_warm(self) -> bool:
        """True when execution would run no phase body at all."""
        return not self.executed_phases

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "base_key": self.base_key,
            "extraction_key": self.extraction_key,
            "final_key": self.final_key,
            "restore_phase": self.restore_phase,
            "resume_phase": self.resume_phase,
            "fully_warm": self.is_fully_warm,
            "cold_phases": self.cold_phases,
            "planned_writes": list(self.planned_writes),
            "planned_deletes": list(self.planned_deletes),
            "phases": [plan.to_json() for plan in self.phases],
        }


#: Signature of the read-only store oracle :meth:`PhaseGraph.plan` takes:
#: ``probe(key, kind) -> bool`` answers "would the store serve this key
#: with this kind right now?" without touching the object.
PlanProbe = Callable[[str, str], bool]


class PhaseGraph:
    """Executor: fold a phase sequence over a context, cheapest path first.

    At every step the executor prefers, in order:

    1. **restoring** the deepest not-yet-passed phase whose boundary
       artifact exists and is decodable against the current context (a
       restored phase stands in for every phase before it);
    2. **resuming** the deepest phase with a live ``kind="checkpoint"``
       artifact (the checkpoint carries the cumulative upstream state, so
       earlier phases never re-run);
    3. **running** the next phase normally.

    After a phase runs, its boundary artifact is persisted (when the phase
    declares a ``kind``) and its checkpoint artifact — now superseded — is
    deleted.  Corrupt or undecodable artifacts degrade to recomputes that
    overwrite them.
    """

    def __init__(self, phases: List[Phase]) -> None:
        names = [phase.name for phase in phases]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate phase names in {names}")
        self.phases = list(phases)

    # ------------------------------------------------------------------
    def execute(self, ctx: PhaseContext) -> None:
        """Run the graph to completion over ``ctx``."""
        phases = self.phases
        index = 0
        while index < len(phases):
            if not phases[index].enabled(ctx):
                index += 1
                continue
            if ctx.store is not None:
                jump = self._try_restore(ctx, index)
                if jump is None:
                    jump = self._try_resume(ctx, index)
                if jump is not None:
                    index = jump
                    continue
            self._run_phase(ctx, phases[index])
            index += 1

    # ------------------------------------------------------------------
    def _safe_get(self, ctx: PhaseContext, key: str,
                  kind: str) -> Optional[Dict]:
        """Store lookup that treats corrupt/foreign objects as misses."""
        try:
            return ctx.store.get(key, expected_kind=kind)
        except SnapshotError:
            return None

    def _try_restore(self, ctx: PhaseContext, index: int) -> Optional[int]:
        """Restore the deepest phase ≥ ``index`` from its artifact."""
        for j in reversed(range(index, len(self.phases))):
            phase = self.phases[j]
            if phase.kind is None or not phase.enabled(ctx):
                continue
            if not phase.restorable(ctx):
                continue
            key = phase.cache_key(ctx)
            if key is None:
                continue
            started = time.perf_counter()
            payload = self._safe_get(ctx, key, phase.kind)
            if payload is None:
                continue
            try:
                phase.from_wire(ctx, payload)
            except _DECODE_ERRORS:
                # Well-formed snapshot, malformed payload: degrade to a
                # recompute (which overwrites the bad artifact).
                continue
            if phase.load_timing:
                ctx.timings[phase.load_timing] = \
                    time.perf_counter() - started
            ctx.artifact_hits[phase.name] = True
            # Checkpoints of the phases this artifact covers are now
            # superseded; without this, a checkpoint orphaned by a kill
            # would sit in the store (a full e-graph snapshot) for as
            # long as another run's boundary artifact keeps skipping the
            # phase that owns it.
            for covered in self.phases[index:j + 1]:
                checkpoint_key = covered.checkpoint_key(ctx)
                if checkpoint_key is not None:
                    ctx.store.delete(checkpoint_key)
            return j + 1
        return None

    def _try_resume(self, ctx: PhaseContext, index: int) -> Optional[int]:
        """Resume the deepest phase ≥ ``index`` from a checkpoint."""
        for j in reversed(range(index, len(self.phases))):
            phase = self.phases[j]
            if not phase.enabled(ctx):
                continue
            key = phase.checkpoint_key(ctx)
            if key is None:
                continue
            payload = self._safe_get(ctx, key, KIND_CHECKPOINT)
            if payload is None:
                continue
            try:
                resume = phase.load_checkpoint(ctx, payload)
            except _DECODE_ERRORS:
                continue
            ctx.resumed_phase = phase.name
            self._run_phase(ctx, phase, resume=resume)
            return j + 1
        return None

    def _run_phase(self, ctx: PhaseContext, phase: Phase,
                   resume: Any = None) -> None:
        phase.run(ctx, resume=resume)
        if ctx.store is None:
            return
        key = phase.cache_key(ctx) if phase.kind is not None else None
        if key is not None:
            started = time.perf_counter()
            ctx.store.put(key, phase.to_wire(ctx), kind=phase.kind,
                          meta=phase.artifact_meta(ctx))
            if phase.store_timing:
                ctx.timings[phase.store_timing] = \
                    time.perf_counter() - started
        checkpoint_key = phase.checkpoint_key(ctx)
        if checkpoint_key is not None:
            # The phase completed: any mid-phase checkpoint is superseded
            # by the boundary artifact (or by the phases that follow).
            ctx.store.delete(checkpoint_key)

    # ------------------------------------------------------------------
    # Planning: the same decision procedure as execute(), hash-only.
    # ------------------------------------------------------------------
    def plan(self, ctx: PhaseContext,
             probe: Optional[PlanProbe] = None) -> PipelinePlan:
        """Classify every phase without executing anything.

        Mirrors :meth:`execute` step for step — same restore-deepest /
        resume-deepest / run-cold preference, same covered-checkpoint
        deletions — but phases only publish planning stand-ins
        (:meth:`Phase.plan_provide`): no phase body runs, no artifact
        payload is decoded, and nothing is written or touched.  ``probe``
        is the read-only store oracle; ``None`` plans a storeless run
        (everything enabled goes cold, keys are still computed).

        The context passed in must carry the run inputs (``"aig"``,
        ``"base_key"``) but **not** a store — planning never uses
        ``ctx.store``.
        """
        plans: Dict[str, PhasePlan] = {}
        writes: List[str] = []
        deletes: List[str] = []
        restore_phase: Optional[str] = None
        resume_phase: Optional[str] = None
        phases = self.phases

        def record(phase: Phase, classification: str,
                   covered_by: Optional[str] = None) -> None:
            plans[phase.name] = PhasePlan(
                name=phase.name,
                classification=classification,
                cache_key=(phase.cache_key(ctx)
                           if phase.kind is not None else None),
                checkpoint_key=phase.checkpoint_key(ctx),
                covered_by=covered_by)

        index = 0
        while index < len(phases):
            phase = phases[index]
            if not phase.enabled(ctx):
                record(phase, PLAN_SKIPPED)
                index += 1
                continue
            if probe is not None:
                jump = self._plan_restore(ctx, probe, index, record, deletes)
                if jump is not None:
                    restore_phase = phases[jump - 1].name
                    index = jump
                    continue
                jump = self._plan_resume(ctx, probe, index, record,
                                         writes, deletes)
                if jump is not None:
                    resume_phase = phases[jump - 1].name
                    index = jump
                    continue
            # Cold: the phase runs; its boundary artifact is written and
            # any live checkpoint of it is superseded.
            phase.plan_provide(ctx)
            record(phase, PLAN_COLD)
            if probe is not None:
                cache_key = plans[phase.name].cache_key
                if cache_key is not None:
                    writes.append(cache_key)
                checkpoint_key = plans[phase.name].checkpoint_key
                if (checkpoint_key is not None
                        and probe(checkpoint_key, KIND_CHECKPOINT)):
                    deletes.append(checkpoint_key)
            index += 1

        aig = ctx.get("aig")
        return PipelinePlan(
            name=getattr(aig, "name", "") or "",
            base_key=ctx.get("base_key"),
            phases=[plans[phase.name] for phase in phases],
            restore_phase=restore_phase,
            resume_phase=resume_phase,
            planned_writes=writes,
            planned_deletes=deletes)

    def _plan_restore(self, ctx: PhaseContext, probe: PlanProbe, index: int,
                      record: Callable[..., None],
                      deletes: List[str]) -> Optional[int]:
        """Plan-side mirror of :meth:`_try_restore` (probe, don't decode)."""
        for j in reversed(range(index, len(self.phases))):
            phase = self.phases[j]
            if phase.kind is None or not phase.enabled(ctx):
                continue
            if not phase.restorable(ctx):
                continue
            key = phase.cache_key(ctx)
            if key is None or not probe(key, phase.kind):
                continue
            covered = self.phases[index:j + 1]
            for covered_phase in covered:
                if covered_phase.enabled(ctx):
                    covered_phase.plan_provide(ctx)
            for covered_phase in covered:
                if covered_phase.enabled(ctx):
                    record(covered_phase, PLAN_WARM_BOUNDARY,
                           covered_by=phase.name)
                else:
                    record(covered_phase, PLAN_SKIPPED)
                checkpoint_key = covered_phase.checkpoint_key(ctx)
                if (checkpoint_key is not None
                        and probe(checkpoint_key, KIND_CHECKPOINT)):
                    deletes.append(checkpoint_key)
            return j + 1
        return None

    def _plan_resume(self, ctx: PhaseContext, probe: PlanProbe, index: int,
                     record: Callable[..., None],
                     writes: List[str],
                     deletes: List[str]) -> Optional[int]:
        """Plan-side mirror of :meth:`_try_resume`."""
        for j in reversed(range(index, len(self.phases))):
            phase = self.phases[j]
            if not phase.enabled(ctx):
                continue
            key = phase.checkpoint_key(ctx)
            if key is None or not probe(key, KIND_CHECKPOINT):
                continue
            for covered_phase in self.phases[index:j + 1]:
                if covered_phase.enabled(ctx):
                    covered_phase.plan_provide(ctx)
            for covered_phase in self.phases[index:j]:
                if covered_phase.enabled(ctx):
                    record(covered_phase, PLAN_WARM_CHECKPOINT,
                           covered_by=phase.name)
                else:
                    record(covered_phase, PLAN_SKIPPED)
            record(phase, PLAN_WARM_CHECKPOINT)
            # The resumed phase still completes: boundary write (if any)
            # plus deletion of the checkpoint it just consumed.
            cache_key = (phase.cache_key(ctx)
                         if phase.kind is not None else None)
            if cache_key is not None:
                writes.append(cache_key)
            deletes.append(key)
            return j + 1
        return None


# ----------------------------------------------------------------------
# Shared wire helpers (construction bookkeeping travels with several
# artifact kinds; the e-graph itself is serialized separately).
# ----------------------------------------------------------------------
def _construction_to_wire(construction: ConstructionResult) -> Dict:
    return {
        "class_of_var": sorted(construction.class_of_var.items()),
        "output_classes": list(construction.output_classes),
        "literal_classes": sorted(construction.literal_classes.items()),
    }


def _construction_from_wire(wire: Dict, egraph: "EGraph",
                            aig: "AIG") -> ConstructionResult:
    return ConstructionResult(
        egraph=egraph,
        aig=aig,
        class_of_var={var: class_id
                      for var, class_id in wire["class_of_var"]},
        output_classes=list(wire["output_classes"]),
        literal_classes={lit: class_id
                         for lit, class_id in wire["literal_classes"]},
    )


class _BoolEPhase(Phase):
    """Base for the concrete phases: holds the owning pipeline."""

    def __init__(self, pipeline: "BoolEPipeline") -> None:
        self.pipeline = pipeline

    @property
    def options(self) -> "BoolEOptions":
        return self.pipeline.options


class ConstructPhase(_BoolEPhase):
    """Stage 1: AIG → e-graph (Algorithm 1)."""

    name = "construct"
    provides = ("construction",)

    def plan_provide(self, ctx: PhaseContext) -> None:
        # Construction feeds a key computation downstream (the extraction
        # key digests output class ids), so its stand-in must be exact:
        # predict the ids with the e-graph-free dry construction.
        ctx["construction"] = planned_construction(ctx["aig"])

    def run(self, ctx: PhaseContext, resume: Any = None) -> None:
        started = time.perf_counter()
        ctx["construction"] = aig_to_egraph(ctx["aig"])
        ctx.timings["construct"] = time.perf_counter() - started


class SaturatePhase(_BoolEPhase):
    """Stages 2/3: one ruleset saturation run, checkpointable mid-phase.

    The checkpoint artifact carries the e-graph, the runner resume state
    *and* the cumulative upstream products (construction bookkeeping,
    earlier phase reports), so a cold process can resume the phase without
    re-running anything before it.
    """

    def __init__(self, pipeline: "BoolEPipeline", name: str,
                 rules_attr: str,
                 iterations_attr: str, report_field: str, timing: str,
                 prior_reports: Tuple[str, ...] = ()) -> None:
        super().__init__(pipeline)
        self.name = name
        self.rules_attr = rules_attr
        self.iterations_attr = iterations_attr
        self.report_field = report_field
        self.timing = timing
        self.prior_reports = prior_reports
        self.provides = (report_field,)

    @property
    def rules(self) -> Any:
        return getattr(self.pipeline, self.rules_attr)

    def checkpoint_key(self, ctx: PhaseContext) -> Optional[str]:
        base_key = ctx.get("base_key")
        if base_key is None:
            return None
        return phase_checkpoint_key(base_key, self.name)

    def _checkpoint_payload(self, ctx: PhaseContext,
                            checkpoint: RunnerCheckpoint) -> Dict:
        construction: ConstructionResult = ctx["construction"]
        return {
            # Superset of the standalone checkpoint layout, so
            # ``repro.store.codec.load_checkpoint`` consumers can read
            # phase checkpoints too.
            "egraph": egraph_to_wire(construction.egraph),
            "runner": checkpoint_to_wire(checkpoint),
            "phase": self.name,
            "prior": {
                "construction": _construction_to_wire(construction),
                "reports": {field: report_to_wire(ctx[field])
                            for field in self.prior_reports},
            },
        }

    def load_checkpoint(self, ctx: PhaseContext,
                        payload: Dict) -> Any:
        if payload.get("phase") != self.name:
            raise SnapshotError(
                f"checkpoint belongs to phase {payload.get('phase')!r}, "
                f"not {self.name!r}")
        # Decode everything into locals before touching the context: a
        # payload that fails halfway must leave ctx exactly as it was
        # (the executor degrades the failure to a fresh run).
        egraph = egraph_from_wire(payload["egraph"])
        prior = payload["prior"]
        construction = _construction_from_wire(
            prior["construction"], egraph, ctx["aig"])
        reports = {field: report_from_wire(wire)
                   for field, wire in prior["reports"].items()}
        checkpoint = checkpoint_from_wire(payload["runner"])
        ctx["construction"] = construction
        for field, report in reports.items():
            ctx[field] = report
        return checkpoint

    def run(self, ctx: PhaseContext, resume: Any = None) -> None:
        pipeline = self.pipeline
        options = self.options
        construction: ConstructionResult = ctx["construction"]
        checkpoint_every = options.checkpoint_every
        on_checkpoint = None
        if checkpoint_every is not None and ctx.store is not None:
            key = self.checkpoint_key(ctx)
            if key is not None:
                store = ctx.store

                def on_checkpoint(checkpoint: RunnerCheckpoint) -> None:
                    store.put(key, self._checkpoint_payload(ctx, checkpoint),
                              kind=KIND_CHECKPOINT,
                              meta={
                                  "phase": self.name,
                                  "aig_name": ctx["aig"].name,
                                  "iteration": checkpoint.iteration,
                                  "saturation_seconds":
                                      round(checkpoint.elapsed, 3),
                              })

        started = time.perf_counter()
        # Saturation runs on the configured engine.  Construction always
        # builds the reference object graph (and checkpoints/artifacts
        # decode to it), so convert at the phase boundary; the wire state
        # is engine-neutral, which is what lets a checkpoint written under
        # one engine resume under the other.
        construction.egraph = as_engine(construction.egraph, options.engine)
        if resume is not None:
            runner = Runner.from_checkpoint(resume)
        else:
            limits = pipeline._phase_limits(
                getattr(options, self.iterations_attr))
            runner = Runner(limits, incremental=options.incremental,
                            debug_check_full=options.debug_check_full)
        ctx[self.report_field] = runner.run(
            construction.egraph, self.rules,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
            resume_from=resume)
        ctx.timings[self.timing] = time.perf_counter() - started


class InsertFAPhase(_BoolEPhase):
    """Stage 4: redundancy pruning, FA pairing and the NPN count.

    Its boundary artifact is the ``kind="saturated-pipeline"`` snapshot —
    everything the pipeline produces before extraction — so restoring it
    replaces phases 1–4 wholesale.
    """

    name = "insert-fa"
    kind = KIND_SATURATED
    load_timing = "cache_load"
    store_timing = "cache_store"
    provides = ("fa_report", "num_npn")

    def cache_key(self, ctx: PhaseContext) -> Optional[str]:
        return ctx.get("base_key")

    def run(self, ctx: PhaseContext, resume: Any = None) -> None:
        options = self.options
        egraph = ctx["construction"].egraph
        if options.prune_redundant:
            started = time.perf_counter()
            egraph.prune_duplicates(
                {Op.XOR3, Op.MAJ, Op.FA, Op.XOR, Op.AND, Op.OR})
            ctx.timings["prune"] = time.perf_counter() - started
        started = time.perf_counter()
        ctx["fa_report"] = insert_fa_structures(egraph)
        ctx.timings["fa_pairing"] = time.perf_counter() - started
        ctx["num_npn"] = 0
        if options.count_npn:
            started = time.perf_counter()
            ctx["num_npn"] = count_npn_fa_pairs(egraph)
            ctx.timings["npn_count"] = time.perf_counter() - started

    def to_wire(self, ctx: PhaseContext) -> Dict:
        construction: ConstructionResult = ctx["construction"]
        fa_report: FAInsertionReport = ctx["fa_report"]
        return {
            "egraph": egraph_to_wire(construction.egraph),
            "construction": _construction_to_wire(construction),
            "r1_report": report_to_wire(ctx["r1_report"]),
            "r2_report": report_to_wire(ctx["r2_report"]),
            "fa_pairs": [[list(pair.inputs), pair.sum_class,
                          pair.carry_class, pair.fa_class]
                         for pair in fa_report.pairs],
            "num_npn_fas": ctx["num_npn"],
        }

    def from_wire(self, ctx: PhaseContext, payload: Dict) -> None:
        # Fully decode before publishing anything into the context: a
        # payload whose tail is malformed must not leave a half-restored
        # (already saturated!) e-graph for the fresh phases to mangle.
        egraph = egraph_from_wire(payload["egraph"])
        construction = _construction_from_wire(
            payload["construction"], egraph, ctx["aig"])
        r1_report = report_from_wire(payload["r1_report"])
        r2_report = report_from_wire(payload["r2_report"])
        fa_report = FAInsertionReport(pairs=[
            FAPair(inputs=tuple(inputs), sum_class=sum_class,
                   carry_class=carry_class, fa_class=fa_class)
            for inputs, sum_class, carry_class, fa_class
            in payload["fa_pairs"]
        ])
        num_npn = payload["num_npn_fas"]
        ctx["construction"] = construction
        ctx["r1_report"] = r1_report
        ctx["r2_report"] = r2_report
        ctx["fa_report"] = fa_report
        ctx["num_npn"] = num_npn

    def artifact_meta(self, ctx: PhaseContext) -> Dict:
        aig = ctx["aig"]
        egraph = ctx["construction"].egraph
        timings = ctx.timings
        # Rebuild cost for the store's cost-aware GC.  The saturation
        # share comes from the runner reports' total_time, which is
        # cumulative across kill/resume cycles — a resumed run's own
        # timings only cover the replayed tail, and under-reporting here
        # would make gc --max-bytes evict exactly the artifacts that
        # were expensive enough to need checkpointing.
        rebuild = sum(timings.get(step, 0.0)
                      for step in ("construct", "prune", "fa_pairing",
                                   "npn_count"))
        rebuild += ctx["r1_report"].total_time
        rebuild += ctx["r2_report"].total_time
        return {
            "aig_name": aig.name,
            "aig_gates": aig.num_gates,
            "egraph_classes": egraph.num_classes,
            "exact_fas": ctx["fa_report"].num_exact_fas,
            "saturation_seconds": round(rebuild, 3),
        }


class ExtractPhase(_BoolEPhase):
    """Stage 5: DAG cost propagation (Algorithm 2).

    No boundary artifact of its own — the ``reconstruct`` artifact covers
    stages 5–6 together (the two are only ever consumed as a pair).
    """

    name = "extract"
    provides = ("extraction",)

    def enabled(self, ctx: PhaseContext) -> bool:
        return self.options.extract

    def run(self, ctx: PhaseContext, resume: Any = None) -> None:
        construction: ConstructionResult = ctx["construction"]
        started = time.perf_counter()
        ctx["extraction"] = self.pipeline.extractor.extract(
            construction.egraph, roots=construction.output_classes)
        ctx.timings["extract"] = time.perf_counter() - started


class ReconstructPhase(_BoolEPhase):
    """Stage 6: materialise the extraction as an AIG with explicit FAs."""

    name = "reconstruct"
    kind = KIND_EXTRACTION
    load_timing = "extraction_cache_load"
    store_timing = "extraction_cache_store"
    provides = ("extracted_aig", "fa_blocks")

    def enabled(self, ctx: PhaseContext) -> bool:
        return self.options.extract

    def cache_key(self, ctx: PhaseContext) -> Optional[str]:
        base_key = ctx.get("base_key")
        if base_key is None or "construction" not in ctx:
            return None
        return self.pipeline.extraction_key(
            base_key, ctx["construction"].output_classes)

    def restorable(self, ctx: PhaseContext) -> bool:
        # Extraction entries refer to class ids of the *saturated* e-graph;
        # decoding against anything earlier would bind them to the wrong
        # classes.  ``fa_report`` marks the saturation boundary.
        return "fa_report" in ctx

    def run(self, ctx: PhaseContext, resume: Any = None) -> None:
        started = time.perf_counter()
        extracted, blocks = reconstruct_aig(ctx["construction"],
                                            ctx["extraction"])
        ctx["extracted_aig"] = extracted
        ctx["fa_blocks"] = blocks
        ctx.timings["reconstruct"] = time.perf_counter() - started

    def to_wire(self, ctx: PhaseContext) -> Dict:
        blocks: List[FABlockRecord] = ctx["fa_blocks"]
        return {
            "extraction": extraction_to_wire(ctx["extraction"]),
            "extracted_aig": aig_to_wire(ctx["extracted_aig"]),
            "fa_blocks": [[list(block.inputs), block.sum_lit,
                           block.carry_lit] for block in blocks],
        }

    def from_wire(self, ctx: PhaseContext, payload: Dict) -> None:
        # Fully decode before publishing (see InsertFAPhase.from_wire).
        construction: ConstructionResult = ctx["construction"]
        extraction = extraction_from_wire(payload["extraction"],
                                          construction.egraph)
        extracted_aig = aig_from_wire(payload["extracted_aig"])
        fa_blocks = [
            FABlockRecord(inputs=tuple(inputs), sum_lit=sum_lit,
                          carry_lit=carry_lit)
            for inputs, sum_lit, carry_lit in payload["fa_blocks"]
        ]
        ctx["extraction"] = extraction
        ctx["extracted_aig"] = extracted_aig
        ctx["fa_blocks"] = fa_blocks

    def artifact_meta(self, ctx: PhaseContext) -> Dict:
        timings = ctx.timings
        return {
            "aig_name": ctx["aig"].name,
            "exact_fas": len(ctx["fa_blocks"]),
            "extracted_gates": ctx["extracted_aig"].num_gates,
            "saturated_key": ctx.get("base_key"),
            "saturation_seconds": round(
                timings.get("extract", 0.0)
                + timings.get("reconstruct", 0.0), 3),
        }


def boole_phases(pipeline: "BoolEPipeline") -> List[Phase]:
    """The six Figure-2 phases wired to ``pipeline``, in execution order."""
    return [
        ConstructPhase(pipeline),
        SaturatePhase(pipeline, "saturate-r1", "_r1", "r1_iterations",
                      "r1_report", "r1"),
        SaturatePhase(pipeline, "saturate-r2", "_r2", "r2_iterations",
                      "r2_report", "r2", prior_reports=("r1_report",)),
        InsertFAPhase(pipeline),
        ExtractPhase(pipeline),
        ReconstructPhase(pipeline),
    ]
