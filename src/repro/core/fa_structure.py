"""Multi-output full-adder structure insertion and counting.

Standard e-graphs only support single-output operators.  BoolE models the
multi-output full adder by pairing XOR3 and MAJ e-nodes that share exactly
the same input e-classes: an ``fa`` tuple node is inserted, and ``fst`` /
``snd`` projection nodes are unioned with the carry (MAJ) and sum (XOR3)
classes respectively (Figure 3 of the paper).  Extraction then treats the
``fa``/``fst``/``snd`` triple as an atomic unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..egraph import EGraph, ENode, Op

__all__ = ["FAPair", "FAInsertionReport", "insert_fa_structures", "count_npn_fa_pairs"]


@dataclass(frozen=True)
class FAPair:
    """A paired XOR3/MAJ discovery forming one exact full adder.

    Attributes:
        inputs: the three shared input e-class ids (sorted, canonical at
            insertion time).
        sum_class: e-class holding the XOR3 (sum) signal.
        carry_class: e-class holding the MAJ (carry) signal.
        fa_class: e-class of the inserted ``fa`` tuple node.
    """

    inputs: Tuple[int, int, int]
    sum_class: int
    carry_class: int
    fa_class: int


@dataclass
class FAInsertionReport:
    """Result of the FA pairing pass."""

    pairs: List[FAPair] = field(default_factory=list)

    @property
    def num_exact_fas(self) -> int:
        """Number of exact FA structures inserted into the e-graph."""
        return len(self.pairs)


def insert_fa_structures(egraph: EGraph) -> FAInsertionReport:
    """Pair XOR3/MAJ e-nodes with identical inputs and insert FA structures.

    Returns the list of inserted pairs, ordered by the stable insertion seq
    of the sum (XOR3) class so counting and reporting are deterministic.
    The e-graph is rebuilt afterwards.
    """
    egraph.rebuild()
    # ``classes()``/``enodes()`` iterate in stable (seq / structural) order,
    # so discovery order — and with it ``setdefault`` winners and the pair
    # list below — is independent of the hash seed.
    xor_by_inputs: Dict[Tuple[int, ...], int] = {}
    maj_by_inputs: Dict[Tuple[int, ...], int] = {}
    for eclass in list(egraph.classes()):
        class_id = egraph.find(eclass.id)
        for node in egraph.enodes(class_id):
            if node.op not in (Op.XOR3, Op.MAJ):
                continue
            key = tuple(sorted(egraph.find(child) for child in node.children))
            if len(set(key)) != 3:
                continue  # degenerate (repeated input) blocks are not FAs
            if node.op == Op.XOR3:
                xor_by_inputs.setdefault(key, class_id)
            else:
                maj_by_inputs.setdefault(key, class_id)

    report = FAInsertionReport()
    for key, sum_class in sorted(
            xor_by_inputs.items(),
            key=lambda item: (egraph.seq(item[1]), item[0])):
        carry_class = maj_by_inputs.get(key)
        if carry_class is None:
            continue
        fa_class = egraph.add(ENode(Op.FA, key))
        fst_class = egraph.add(ENode(Op.FST, (fa_class,)))
        snd_class = egraph.add(ENode(Op.SND, (fa_class,)))
        egraph.union(fst_class, carry_class)
        egraph.union(snd_class, sum_class)
        report.pairs.append(FAPair(
            inputs=key,
            sum_class=egraph.find(sum_class),
            carry_class=egraph.find(carry_class),
            fa_class=egraph.find(fa_class),
        ))
    egraph.rebuild()
    return report


def _complement_map(egraph: EGraph) -> Dict[int, int]:
    """Map each e-class to the class of its complement (where one exists)."""
    complements: Dict[int, int] = {}
    for eclass in egraph.classes():
        class_id = egraph.find(eclass.id)
        for node in egraph.enodes(class_id):
            if node.op == Op.NOT:
                child = egraph.find(node.children[0])
                complements[class_id] = child
                complements.setdefault(child, class_id)
    return complements


def count_npn_fa_pairs(egraph: EGraph) -> int:
    """Count FA structures up to NPN equivalence of their inputs.

    Two discoveries whose input classes agree modulo complementation (an input
    arriving in the opposite polarity) describe the same NPN full adder; this
    is the quantity Figure 4 reports as "NPN FAs" for BoolE.
    """
    egraph.rebuild()
    complements = _complement_map(egraph)

    def canonical_input(class_id: int) -> int:
        other = complements.get(class_id)
        if other is None:
            return class_id
        return min(class_id, other)

    xor_keys: Set[Tuple[int, ...]] = set()
    maj_keys: Set[Tuple[int, ...]] = set()
    for eclass in egraph.classes():
        class_id = egraph.find(eclass.id)
        for node in egraph.enodes(class_id):
            if node.op not in (Op.XOR3, Op.MAJ):
                continue
            key = tuple(sorted(canonical_input(egraph.find(child))
                               for child in node.children))
            if len(set(key)) != 3:
                continue
            if node.op == Op.XOR3:
                xor_keys.add(key)
            else:
                maj_keys.add(key)
    return len(xor_keys & maj_keys)
