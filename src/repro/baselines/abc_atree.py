"""ABC ``&atree``-style adder-tree detection baseline.

This module reproduces the conventional structural/functional approach the
paper compares against: enumerate K-feasible cuts, compute each cut's truth
table, and detect full adders (FA) and half adders (HA) by matching the cut
functions of a sum node and a carry node that share the same cut leaves.

* An **exact FA** requires one node computing exactly ``XOR3`` and one node
  computing exactly ``MAJ3`` over the same three leaves.
* An **NPN FA** only requires the two functions to fall into the XOR3 and
  MAJ3 NPN classes (e.g. an XNOR3/minority pair still counts), which is what
  ABC's cut-based matching and Gamora's labels provide.

The detector inherits the weaknesses the paper describes: it relies on a
single node per component and on the cut being enumerated within the
priority-cut budget, so technology mapping and logic optimisation make blocks
invisible to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..aig import AIG
from ..aig.truth_table import AND2_TABLE, MAJ3_TABLE, XOR2_TABLE, XOR3_TABLE
from ..cuts import (
    MAJ3_NPN_CANON,
    XOR3_NPN_CANON,
    cut_function,
    enumerate_cuts,
    npn_canonical,
)

__all__ = ["FAMatch", "HAMatch", "AdderTreeReport", "detect_adder_tree"]

_XOR2_NPN_CANON = npn_canonical(XOR2_TABLE, 2)
_AND2_NPN_CANON = npn_canonical(AND2_TABLE, 2)

# "Exact" detection is phase-free on the output: an AIG node whose function is
# the complement of the target still provides the target exactly through its
# complemented edge (complemented edges are free in an AIG).  Input negations,
# by contrast, cannot be absorbed and only yield NPN equivalence.
_MASK3 = (1 << 8) - 1
_MASK2 = (1 << 4) - 1
_XOR3_EXACT_TABLES = {XOR3_TABLE, ~XOR3_TABLE & _MASK3}
_MAJ3_EXACT_TABLES = {MAJ3_TABLE, ~MAJ3_TABLE & _MASK3}
_XOR2_EXACT_TABLES = {XOR2_TABLE, ~XOR2_TABLE & _MASK2}
_AND2_EXACT_TABLES = {AND2_TABLE, ~AND2_TABLE & _MASK2}


@dataclass(frozen=True)
class FAMatch:
    """A detected full adder: sum node, carry node and shared leaves."""

    sum_var: int
    carry_var: int
    leaves: Tuple[int, ...]
    exact: bool


@dataclass(frozen=True)
class HAMatch:
    """A detected half adder: sum node, carry node and shared leaves."""

    sum_var: int
    carry_var: int
    leaves: Tuple[int, ...]
    exact: bool


@dataclass
class AdderTreeReport:
    """Result of adder-tree detection on one netlist."""

    full_adders: List[FAMatch] = field(default_factory=list)
    half_adders: List[HAMatch] = field(default_factory=list)

    @property
    def num_npn_fas(self) -> int:
        """Number of detected FAs up to NPN equivalence (includes exact)."""
        return len(self.full_adders)

    @property
    def num_exact_fas(self) -> int:
        """Number of detected FAs that are exactly XOR3/MAJ3 pairs."""
        return sum(1 for fa in self.full_adders if fa.exact)

    @property
    def num_npn_has(self) -> int:
        """Number of detected HAs up to NPN equivalence (includes exact)."""
        return len(self.half_adders)

    @property
    def num_exact_has(self) -> int:
        """Number of detected HAs that are exactly XOR2/AND2 pairs."""
        return sum(1 for ha in self.half_adders if ha.exact)


def detect_adder_tree(aig: AIG, k: int = 3, max_cuts_per_node: int = 8,
                      detect_half_adders: bool = True) -> AdderTreeReport:
    """Detect FA/HA blocks in an AIG with cut enumeration (ABC baseline).

    Args:
        aig: subject netlist.
        k: cut size limit (3 covers both FA and HA cuts).
        max_cuts_per_node: priority-cut budget per node (ABC-like default 8).
        detect_half_adders: also report half adders.

    Returns:
        An :class:`AdderTreeReport` listing one FA per distinct leaf triple
        and one HA per distinct leaf pair.
    """
    cuts = enumerate_cuts(aig, k=max(k, 3 if not detect_half_adders else k),
                          max_cuts_per_node=max_cuts_per_node)

    # leaves -> candidate component nodes
    xor3_exact: Dict[Tuple[int, ...], Set[int]] = {}
    xor3_npn: Dict[Tuple[int, ...], Set[int]] = {}
    maj3_exact: Dict[Tuple[int, ...], Set[int]] = {}
    maj3_npn: Dict[Tuple[int, ...], Set[int]] = {}
    xor2_exact: Dict[Tuple[int, ...], Set[int]] = {}
    xor2_npn: Dict[Tuple[int, ...], Set[int]] = {}
    and2_exact: Dict[Tuple[int, ...], Set[int]] = {}
    and2_npn: Dict[Tuple[int, ...], Set[int]] = {}

    for var, node_cuts in cuts.items():
        if not aig.is_gate_var(var):
            continue
        for cut in node_cuts:
            leaves = cut.sorted_leaves()
            if 0 in leaves:
                continue
            if cut.size == 3:
                table = cut_function(aig, cut)
                canon = npn_canonical(table, 3)
                if canon == XOR3_NPN_CANON:
                    xor3_npn.setdefault(leaves, set()).add(var)
                    if table in _XOR3_EXACT_TABLES:
                        xor3_exact.setdefault(leaves, set()).add(var)
                elif canon == MAJ3_NPN_CANON:
                    maj3_npn.setdefault(leaves, set()).add(var)
                    if table in _MAJ3_EXACT_TABLES:
                        maj3_exact.setdefault(leaves, set()).add(var)
            elif cut.size == 2 and detect_half_adders:
                table = cut_function(aig, cut)
                canon = npn_canonical(table, 2)
                if canon == _XOR2_NPN_CANON:
                    xor2_npn.setdefault(leaves, set()).add(var)
                    if table in _XOR2_EXACT_TABLES:
                        xor2_exact.setdefault(leaves, set()).add(var)
                elif canon == _AND2_NPN_CANON:
                    and2_npn.setdefault(leaves, set()).add(var)
                    if table in _AND2_EXACT_TABLES:
                        and2_exact.setdefault(leaves, set()).add(var)

    report = AdderTreeReport()
    for leaves, sum_nodes in xor3_npn.items():
        carry_nodes = maj3_npn.get(leaves)
        if not carry_nodes:
            continue
        carry_choices = carry_nodes - sum_nodes
        if not carry_choices:
            continue
        exact_sums = xor3_exact.get(leaves, set())
        exact_carries = maj3_exact.get(leaves, set()) - exact_sums
        exact = bool(exact_sums and exact_carries)
        if exact:
            sum_var = min(exact_sums)
            carry_var = min(exact_carries)
        else:
            sum_var = min(sum_nodes)
            carry_var = min(carry_choices)
        report.full_adders.append(FAMatch(sum_var, carry_var, leaves, exact))

    if detect_half_adders:
        fa_leaf_sets = {frozenset(fa.leaves) for fa in report.full_adders}
        for leaves, sum_nodes in xor2_npn.items():
            carry_nodes = and2_npn.get(leaves)
            if not carry_nodes:
                continue
            carry_choices = carry_nodes - sum_nodes
            if not carry_choices:
                continue
            # A pair of leaves fully contained in a detected FA is part of that
            # FA's internal structure, not an independent half adder.
            if any(frozenset(leaves) <= fa_set for fa_set in fa_leaf_sets):
                continue
            exact_sums = xor2_exact.get(leaves, set())
            exact_carries = and2_exact.get(leaves, set()) - exact_sums
            exact = bool(exact_sums and exact_carries)
            if exact:
                sum_var = min(exact_sums)
                carry_var = min(exact_carries)
            else:
                sum_var = min(sum_nodes)
                carry_var = min(carry_choices)
            report.half_adders.append(HAMatch(sum_var, carry_var, leaves, exact))

    report.full_adders.sort(key=lambda fa: fa.leaves)
    report.half_adders.sort(key=lambda ha: ha.leaves)
    return report
