"""Baseline symbolic-reasoning tools: ABC ``&atree`` and Gamora (simulated)."""

from .abc_atree import AdderTreeReport, FAMatch, HAMatch, detect_adder_tree
from .gamora import GamoraModel, default_gamora_model, predict_adder_tree

__all__ = [
    "AdderTreeReport",
    "FAMatch",
    "HAMatch",
    "detect_adder_tree",
    "GamoraModel",
    "default_gamora_model",
    "predict_adder_tree",
]
