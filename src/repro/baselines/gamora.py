"""Gamora-style learned baseline (simulated graph neural network).

Gamora (Wu et al., DAC 2023) trains a GNN on node labels produced by ABC's
cut-based adder-tree detection and predicts, for every AIG node, whether it is
the sum (XOR3) or carry (MAJ3) root of a full adder.  The real system needs a
GPU and a trained model; this reproduction substitutes a structural
message-passing classifier that is *trained by construction* on pre-mapping
adder trees:

1. **Training** collects the k-hop structural shape (a canonical hash of the
   local fanin subgraph, including edge polarities) of every labelled
   sum/carry node in a set of template multipliers, exactly as Gamora's
   supervision comes from ABC labels on pre-mapping netlists.
2. **Inference** recomputes the same k-hop shapes on the test netlist and
   predicts the label memorised for that shape; predicted sum/carry nodes
   sharing the same 3-leaf structural support are paired into NPN FAs.

Because the classifier keys on local structure (like a GNN's receptive
field), it degrades on technology-mapped or optimised netlists whose local
structures deviate from the training distribution — the behaviour the paper
reports (Gamora recall drops below ABC post-mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from ..aig import AIG, lit_is_compl, lit_var
from ..cuts import enumerate_cuts
from .abc_atree import AdderTreeReport, FAMatch, detect_adder_tree

__all__ = ["GamoraModel", "default_gamora_model", "predict_adder_tree"]


def _shape_hash(aig: AIG, var: int, depth: int) -> Tuple:
    """Canonical k-hop structural shape of a node (child order insensitive)."""
    if depth == 0 or not aig.is_gate_var(var):
        kind = "pi" if aig.is_input_var(var) else ("const" if aig.is_const_var(var) else "cut")
        return (kind,)
    gate = aig.gate_of(var)
    children = []
    for lit in (gate.fanin0, gate.fanin1):
        child = _shape_hash(aig, lit_var(lit), depth - 1)
        children.append((lit_is_compl(lit), child))
    children.sort()
    return ("and", tuple(children))


@dataclass
class GamoraModel:
    """A shape-memorising classifier standing in for the Gamora GNN.

    Attributes:
        depth: receptive-field depth (hops) of the structural shapes.
        sum_shapes: shapes labelled as FA-sum roots during training.
        carry_shapes: shapes labelled as FA-carry roots during training.
    """

    depth: int = 3
    sum_shapes: Set[Tuple] = field(default_factory=set)
    carry_shapes: Set[Tuple] = field(default_factory=set)

    def fit(self, circuits: Sequence[AIG]) -> "GamoraModel":
        """Train on template netlists using ABC-style labels as supervision."""
        for aig in circuits:
            report = detect_adder_tree(aig)
            for fa in report.full_adders:
                self.sum_shapes.add(_shape_hash(aig, fa.sum_var, self.depth))
                self.carry_shapes.add(_shape_hash(aig, fa.carry_var, self.depth))
        return self

    @property
    def num_trained_shapes(self) -> int:
        """Total number of memorised shape patterns."""
        return len(self.sum_shapes) + len(self.carry_shapes)

    def predict(self, aig: AIG) -> AdderTreeReport:
        """Predict NPN full adders on a netlist.

        Node-level predictions come from shape lookup; predicted sum and carry
        nodes are paired when they share the same structural 3-leaf support.
        Predictions are reported with ``exact=False`` because the classifier
        provides no exactness guarantee (the paper's point about ML methods).
        """
        predicted_sums: Dict[Tuple[int, ...], Set[int]] = {}
        predicted_carries: Dict[Tuple[int, ...], Set[int]] = {}
        cuts = enumerate_cuts(aig, k=3)
        for gate in aig.topological_gates():
            var = gate.out_var
            shape = _shape_hash(aig, var, self.depth)
            is_sum = shape in self.sum_shapes
            is_carry = shape in self.carry_shapes
            if not is_sum and not is_carry:
                continue
            for cut in cuts.get(var, ()):
                if cut.size != 3 or 0 in cut.leaves:
                    continue
                support = cut.sorted_leaves()
                if is_sum:
                    predicted_sums.setdefault(support, set()).add(var)
                if is_carry:
                    predicted_carries.setdefault(support, set()).add(var)

        # Greedy one-to-one pairing: each predicted node is consumed by at most
        # one FA, so a misclassified node cannot inflate the count across many
        # overlapping cuts.
        report = AdderTreeReport()
        used_sums: Set[int] = set()
        used_carries: Set[int] = set()
        for leaves in sorted(predicted_sums):
            sum_nodes = predicted_sums[leaves] - used_sums
            carry_nodes = (predicted_carries.get(leaves, set())
                           - predicted_sums[leaves] - used_carries)
            if not sum_nodes or not carry_nodes:
                continue
            sum_var = min(sum_nodes)
            carry_var = min(carry_nodes)
            used_sums.add(sum_var)
            used_carries.add(carry_var)
            report.full_adders.append(FAMatch(sum_var, carry_var, leaves, exact=False))
        report.full_adders.sort(key=lambda fa: fa.leaves)
        return report


_DEFAULT_MODEL: Optional[GamoraModel] = None


def default_gamora_model(depth: int = 3) -> GamoraModel:
    """Return the default model trained on small pre-mapping multipliers.

    The training templates mirror the paper's setup (Gamora trained on
    AIG-based labels from CSA/Booth multipliers); the model is cached because
    training only depends on the fixed templates.
    """
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is not None and _DEFAULT_MODEL.depth == depth:
        return _DEFAULT_MODEL
    from ..generators import booth_multiplier, csa_multiplier

    templates = [csa_multiplier(w).aig for w in (4, 6, 8)]
    templates += [booth_multiplier(w).aig for w in (4, 6, 8)]
    _DEFAULT_MODEL = GamoraModel(depth=depth).fit(templates)
    return _DEFAULT_MODEL


def predict_adder_tree(aig: AIG, model: Optional[GamoraModel] = None) -> AdderTreeReport:
    """Predict the adder tree of ``aig`` with the (default) Gamora model."""
    model = model or default_gamora_model()
    return model.predict(aig)
