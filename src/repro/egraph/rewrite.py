"""Rewrite rules and their application to an e-graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .egraph import EGraph
from .enode import ENode
from .pattern import (
    Pattern,
    Subst,
    ematch,
    instantiate,
    parse_pattern,
    pattern_vars,
)

__all__ = ["Rewrite", "RuleStats", "apply_rules"]


@dataclass
class Rewrite:
    """A directed rewrite rule ``lhs => rhs``.

    Attributes:
        name: rule name used in statistics and reports.
        lhs: left-hand-side pattern (searched).
        rhs: right-hand-side pattern (instantiated and unioned with the match).
        bidirectional: if True, the rule is also applied right-to-left.
        condition: optional predicate ``f(egraph, class_id, subst) -> bool``
            filtering matches before application.
        group: free-form tag (e.g. ``"R1"`` / ``"R2-xor"`` / ``"R2-maj"``).
        applier: optional callable ``f(egraph, subst) -> class_id`` used instead
            of instantiating ``rhs``; used by BoolE to insert symmetric
            operators (XOR3/MAJ) with canonically sorted children so that
            congruent discoveries merge without permutation rules.
    """

    name: str
    lhs: Pattern
    rhs: Pattern
    bidirectional: bool = False
    condition: Optional[Callable[[EGraph, int, Subst], bool]] = None
    group: str = ""
    applier: Optional[Callable[[EGraph, Subst], int]] = None

    @classmethod
    def parse(cls, name: str, lhs: str, rhs: str, *, bidirectional: bool = False,
              group: str = "", condition=None) -> "Rewrite":
        """Build a rule from s-expression strings.

        Raises ValueError if the right-hand side uses a pattern variable that
        does not occur on the left-hand side.
        """
        lhs_pattern = parse_pattern(lhs)
        rhs_pattern = parse_pattern(rhs)
        missing = set(pattern_vars(rhs_pattern)) - set(pattern_vars(lhs_pattern))
        if missing:
            raise ValueError(
                f"rule {name}: rhs variables {sorted(missing)} not bound by lhs")
        return cls(name=name, lhs=lhs_pattern, rhs=rhs_pattern,
                   bidirectional=bidirectional, group=group, condition=condition)

    @classmethod
    def with_applier(cls, name: str, lhs: str,
                     applier: Callable[[EGraph, Subst], int], *,
                     group: str = "", condition=None) -> "Rewrite":
        """Build a rule whose right-hand side is a custom applier callable."""
        lhs_pattern = parse_pattern(lhs)
        return cls(name=name, lhs=lhs_pattern, rhs=lhs_pattern, group=group,
                   condition=condition, applier=applier)

    def searchers(self) -> List[Tuple[Pattern, Pattern]]:
        """Return the (search, build) pattern pairs of this rule."""
        pairs = [(self.lhs, self.rhs)]
        if self.bidirectional:
            pairs.append((self.rhs, self.lhs))
        return pairs

    def __str__(self) -> str:
        arrow = "<=>" if self.bidirectional else "=>"
        return f"{self.name}: {self.lhs} {arrow} {self.rhs}"


@dataclass
class RuleStats:
    """Per-rule application statistics for one runner iteration."""

    matches: int = 0
    applications: int = 0
    unions: int = 0


def apply_rules(egraph: EGraph, rules: Sequence[Rewrite],
                max_matches_per_rule: Optional[int] = None
                ) -> Dict[str, RuleStats]:
    """Apply one round of every rule to the e-graph.

    All rules are matched against the same snapshot (the e-graph is rebuilt
    first), then all instantiations and unions are performed, then the e-graph
    is rebuilt again.  Returns per-rule statistics.
    """
    if not egraph.is_clean:
        egraph.rebuild()
    snapshot = egraph.op_index()

    stats: Dict[str, RuleStats] = {}
    planned: List[Tuple[Rewrite, Pattern, int, Subst]] = []
    for rule in rules:
        rule_stats = stats.setdefault(rule.name, RuleStats())
        for search, build in rule.searchers():
            matches = ematch(egraph, search, snapshot)
            if max_matches_per_rule is not None and len(matches) > max_matches_per_rule:
                matches = matches[:max_matches_per_rule]
            rule_stats.matches += len(matches)
            for class_id, subst in matches:
                if rule.condition is not None and not rule.condition(egraph, class_id, subst):
                    continue
                planned.append((rule, build, class_id, subst))

    for rule, build, class_id, subst in planned:
        rule_stats = stats[rule.name]
        if rule.applier is not None:
            new_class = rule.applier(egraph, subst)
        else:
            new_class = instantiate(egraph, build, subst)
        rule_stats.applications += 1
        if egraph.union(class_id, new_class):
            rule_stats.unions += 1

    egraph.rebuild()
    return stats
