"""Rewrite rules and their application to an e-graph.

:func:`apply_rules` supports two matching modes:

* **full scan** (``dirty=None``): every rule is matched against the whole
  e-graph, as a freshly-seen ruleset requires;
* **delta matching** (``dirty`` = changed class ids): each rule is matched
  only against the *dirty frontier* — the changed classes expanded upward
  through parent pointers by the rule pattern's height.  Any match that did
  not exist before the changes must root inside that frontier, so the two
  modes reach the same saturated e-graph (checked by ``verify_full=True``).

Explosive rules are tamed by a :class:`BackoffScheduler` (egg's back-off
scheme): a rule whose match count exceeds its current budget is *banned*
for an exponentially growing window of iterations and its matches for the
round are dropped wholesale — never a hash-order-dependent subset, which is
what made the old flat ``max_matches_per_rule`` cap nondeterministic.  The
scheduler remembers, per rule, the dirty classes the rule did not get to
search while banned, so delta matching stays complete without ever falling
back to a full rescan.

Determinism: matches are generated in a stable order (candidate roots
ascend by e-class insertion seq, e-nodes within a class by
:func:`~repro.egraph.egraph.enode_sort_key`), so any truncation — the
deprecated flat cap included — removes a deterministic suffix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .egraph import EGraph
from .pattern import (
    MatchPlan,
    Pattern,
    Subst,
    compile_pattern,
    instantiate,
    parse_pattern,
    pattern_vars,
)

__all__ = ["Rewrite", "RuleStats", "BackoffScheduler", "apply_rules"]


@dataclass
class Rewrite:
    """A directed rewrite rule ``lhs => rhs``.

    Attributes:
        name: rule name used in statistics and reports.
        lhs: left-hand-side pattern (searched).
        rhs: right-hand-side pattern (instantiated and unioned with the match).
        bidirectional: if True, the rule is also applied right-to-left.
        condition: optional predicate ``f(egraph, class_id, subst) -> bool``
            filtering matches before application.
        group: free-form tag (e.g. ``"R1"`` / ``"R2-xor"`` / ``"R2-maj"``).
        applier: optional callable ``f(egraph, subst) -> class_id`` used instead
            of instantiating ``rhs``; used by BoolE to insert symmetric
            operators (XOR3/MAJ) with canonically sorted children so that
            congruent discoveries merge without permutation rules.
    """

    name: str
    lhs: Pattern
    rhs: Pattern
    bidirectional: bool = False
    condition: Optional[Callable[[EGraph, int, Subst], bool]] = None
    group: str = ""
    applier: Optional[Callable[[EGraph, Subst], int]] = None

    @classmethod
    def parse(cls, name: str, lhs: str, rhs: str, *, bidirectional: bool = False,
              group: str = "", condition=None) -> "Rewrite":
        """Build a rule from s-expression strings.

        Raises ValueError if the right-hand side uses a pattern variable that
        does not occur on the left-hand side.
        """
        lhs_pattern = parse_pattern(lhs)
        rhs_pattern = parse_pattern(rhs)
        missing = set(pattern_vars(rhs_pattern)) - set(pattern_vars(lhs_pattern))
        if missing:
            raise ValueError(
                f"rule {name}: rhs variables {sorted(missing)} not bound by lhs")
        return cls(name=name, lhs=lhs_pattern, rhs=rhs_pattern,
                   bidirectional=bidirectional, group=group, condition=condition)

    @classmethod
    def with_applier(cls, name: str, lhs: str,
                     applier: Callable[[EGraph, Subst], int], *,
                     group: str = "", condition=None) -> "Rewrite":
        """Build a rule whose right-hand side is a custom applier callable."""
        lhs_pattern = parse_pattern(lhs)
        return cls(name=name, lhs=lhs_pattern, rhs=lhs_pattern, group=group,
                   condition=condition, applier=applier)

    def searchers(self) -> List[Tuple[Pattern, Pattern]]:
        """Return the (search, build) pattern pairs of this rule."""
        pairs = [(self.lhs, self.rhs)]
        if self.bidirectional:
            pairs.append((self.rhs, self.lhs))
        return pairs

    def plans(self) -> List[Tuple[MatchPlan, Pattern]]:
        """Return the compiled ``(match_plan, build_pattern)`` pairs."""
        return [(compile_pattern(search), build)
                for search, build in self.searchers()]

    def __str__(self) -> str:
        arrow = "<=>" if self.bidirectional else "=>"
        return f"{self.name}: {self.lhs} {arrow} {self.rhs}"


@dataclass
class RuleStats:
    """Per-rule application statistics for one runner iteration.

    ``matches`` counts the matches that survived the rule's ``condition``
    predicate and were actually applied.  ``capped`` is True when the rule's
    match set was cut this round: under a :class:`BackoffScheduler` the whole
    set was dropped and the rule banned; under the deprecated flat
    ``max_matches_per_rule`` a deterministic prefix was kept.  ``banned`` is
    True when the rule was skipped outright because a ban from an earlier
    iteration is still active.
    """

    matches: int = 0
    applications: int = 0
    unions: int = 0
    capped: bool = False
    banned: bool = False


@dataclass
class _RuleBackoff:
    """Scheduler state for one rule."""

    times_banned: int = 0
    banned_until: int = -1
    #: Canonical ids of the classes that changed while this rule was not
    #: searching (banned, or its match set was dropped).  ``None`` means the
    #: rule owes a full rescan (it missed a full-scan round).
    pending: Optional[Set[int]] = field(default_factory=set)


class BackoffScheduler:
    """Egg-style rule back-off replacing flat per-rule match caps.

    Each rule starts with a budget of ``match_limit`` matches per iteration.
    A rule that exceeds its budget is banned for ``ban_length`` iterations
    and its matches for the round are dropped entirely; every subsequent ban
    multiplies both the budget and the ban window by ``budget_growth`` /
    ``ban_growth``, so persistently explosive rules run rarely but with
    enough budget to finish when they do.

    Unlike egg, the scheduler also tracks a per-rule **search debt** for the
    delta-matching engine: the dirty classes a rule did not search while
    banned accumulate in its state and are added to its frontier when the ban
    lifts, so no match is ever lost and no full rescan is needed.

    One scheduler instance must be shared across the iterations of a run
    (the :class:`~repro.egraph.runner.Runner` creates one per ``run``) and
    passed to every :func:`apply_rules` call.
    """

    def __init__(self, match_limit: int = 1000, ban_length: int = 5, *,
                 budget_growth: int = 2, ban_growth: int = 2) -> None:
        if match_limit <= 0:
            raise ValueError("match_limit must be positive")
        if ban_length <= 0:
            raise ValueError("ban_length must be positive")
        self.match_limit = match_limit
        self.ban_length = ban_length
        self.budget_growth = budget_growth
        self.ban_growth = ban_growth
        self.iteration = -1
        self._states: Dict[str, _RuleBackoff] = {}

    @classmethod
    def flat(cls, match_limit: int, ban_length: int = 1) -> "BackoffScheduler":
        """Compatibility scheduler for the deprecated flat match caps.

        Bans last a single iteration and never grow, so a rule producing
        more than ``match_limit`` matches skips a round instead of applying
        a nondeterministic subset.  The budget, however, still doubles on
        each ban: with a truly constant budget a rule whose match count
        stays above the cap would never apply anything at all — strictly
        worse than the old cap it replaces, which at least applied a
        (hash-ordered) prefix.  Used when the deprecated
        ``max_matches_per_rule`` runner/pipeline options are set.
        """
        return cls(match_limit, ban_length, budget_growth=2, ban_growth=1)

    def _state(self, name: str) -> _RuleBackoff:
        state = self._states.get(name)
        if state is None:
            state = self._states[name] = _RuleBackoff()
        return state

    def begin_iteration(self) -> int:
        """Advance the scheduler clock; returns the new iteration index."""
        self.iteration += 1
        return self.iteration

    def is_banned(self, name: str) -> bool:
        """True while a previously issued ban is still active."""
        state = self._states.get(name)
        return state is not None and self.iteration < state.banned_until

    def budget(self, name: str) -> int:
        """Current per-iteration match budget of a rule."""
        state = self._states.get(name)
        times = 0 if state is None else state.times_banned
        return self.match_limit * self.budget_growth ** times

    def ban(self, name: str, searched: Optional[Iterable[int]]) -> None:
        """Ban a rule that exceeded its budget this iteration.

        ``searched`` is the frontier the rule was searching when it blew the
        budget (``None`` = the whole e-graph); it becomes search debt.
        """
        state = self._state(name)
        window = self.ban_length * self.ban_growth ** state.times_banned
        state.banned_until = self.iteration + 1 + window
        state.times_banned += 1
        self.defer(name, searched)

    def defer(self, name: str, dirty: Optional[Iterable[int]]) -> None:
        """Record classes a rule failed to search this iteration."""
        state = self._state(name)
        if dirty is None:
            state.pending = None
        elif state.pending is not None:
            state.pending.update(dirty)

    def frontier_for(self, name: str,
                     dirty: Optional[AbstractSet[int]]
                     ) -> Optional[AbstractSet[int]]:
        """The frontier a rule must search: current dirt plus its debt.

        Returns ``dirty`` itself (same object) when the rule has no debt, a
        combined set when it does, and ``None`` when either the current round
        or the debt requires a full scan.
        """
        state = self._states.get(name)
        if state is None or (state.pending is not None and not state.pending):
            return dirty
        if dirty is None or state.pending is None:
            return None
        combined = set(dirty)
        combined.update(state.pending)
        return combined

    def clear_debt(self, name: str) -> None:
        """Mark a rule fully caught up (its whole frontier was searched)."""
        state = self._states.get(name)
        if state is not None:
            state.pending = set()

    def has_debt(self, name: str) -> bool:
        """True if the rule still owes a (partial or full) rescan."""
        state = self._states.get(name)
        return state is not None and (state.pending is None
                                      or bool(state.pending))

    def banned_rules(self) -> List[str]:
        """Names of the currently banned rules (sorted)."""
        return sorted(name for name in self._states if self.is_banned(name))

    def outstanding(self) -> bool:
        """True while any rule is banned or owes a rescan.

        A saturation driver must not report saturation while this holds:
        the banned rules may still produce unions.
        """
        return any(self.is_banned(name) or self.has_debt(name)
                   for name in self._states)

    def unban_all(self) -> None:
        """Lift every active ban (search debts are kept).

        Called by the runner when an iteration produced no unions but rules
        are still banned: the grown budgets are retained, so each unbanned
        rule retries with a doubled allowance and eventually gets through.
        """
        for state in self._states.values():
            state.banned_until = -1

    def stats(self) -> Dict[str, int]:
        """Times each rule was banned (rules never banned are omitted)."""
        return {name: state.times_banned
                for name, state in sorted(self._states.items())
                if state.times_banned}

    # ------------------------------------------------------------------
    # Snapshot support (repro.store)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Return the full scheduler state as plain Python containers.

        Per-rule search debts are sets of canonical e-class ids; they are
        exported sorted (``None`` = full-rescan debt) so snapshots do not
        depend on ``PYTHONHASHSEED``.
        """
        return {
            "match_limit": self.match_limit,
            "ban_length": self.ban_length,
            "budget_growth": self.budget_growth,
            "ban_growth": self.ban_growth,
            "iteration": self.iteration,
            "rules": {
                name: (state.times_banned, state.banned_until,
                       None if state.pending is None else sorted(state.pending))
                for name, state in sorted(self._states.items())
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "BackoffScheduler":
        """Rebuild a scheduler from :meth:`export_state` output.

        A resumed saturation run continues with exactly the bans, budgets
        and search debts the checkpointed run had accumulated.
        """
        scheduler = cls(state["match_limit"], state["ban_length"],
                        budget_growth=state["budget_growth"],
                        ban_growth=state["ban_growth"])
        scheduler.iteration = state["iteration"]
        for name, (times_banned, banned_until, pending) in state["rules"].items():
            scheduler._states[name] = _RuleBackoff(
                times_banned=times_banned,
                banned_until=banned_until,
                pending=None if pending is None else set(pending))
        return scheduler


class _DirtyFrontier:
    """Lazily expands a dirty class set upward through parent pointers.

    ``at(height)`` returns the dirty classes together with every ancestor
    reachable in at most ``height`` parent steps — the only classes that can
    root a match of a height-``height`` pattern that did not exist before the
    dirty classes changed.  Levels are computed once and shared by all rules.

    When a level grows to cover most of the e-graph, ``at`` returns ``None``
    ("scan everything") for that height and above: an unrestricted scan is
    cheaper than intersecting near-total candidate sets, and further parent
    walks would be wasted work.
    """

    def __init__(self, egraph: EGraph, dirty: Iterable[int], *,
                 exact: bool = False) -> None:
        self._egraph = egraph
        self._exact = exact
        base = {egraph.find(class_id) for class_id in dirty}
        self._levels: List[Set[int]] = [base]
        self._fresh: List[Set[int]] = [base]
        self._full_from: Optional[int] = (
            0 if self._covers_most(base) else None)

    def _covers_most(self, classes: Set[int]) -> bool:
        if self._exact:
            return False
        return 4 * len(classes) >= 3 * self._egraph.num_classes

    def at(self, height: int) -> Optional[Set[int]]:
        if self._full_from is not None and height >= self._full_from:
            return None
        while len(self._levels) <= height:
            parents: Set[int] = set()
            for class_id in self._fresh[-1]:
                parents |= self._egraph.parent_classes(class_id)
            fresh = parents - self._levels[-1]
            self._levels.append(self._levels[-1] | fresh)
            self._fresh.append(fresh)
            if self._covers_most(self._levels[-1]):
                self._full_from = len(self._levels) - 1
                return None
        return self._levels[height]


def _iter_matches(egraph: EGraph, rule: Rewrite,
                  frontier: Optional[_DirtyFrontier]
                  ) -> Iterator[Tuple[Pattern, int, Subst]]:
    """Yield the condition-filtered matches of one rule in stable order.

    An engine exposing ``plan_search`` (the dense engine's batched matcher)
    executes the compiled plan itself; the match stream it yields is
    identical, match for match, to :meth:`MatchPlan.search`.
    """
    plan_search = getattr(egraph, "plan_search", None)
    for plan, build in rule.plans():
        restrict = None if frontier is None else frontier.at(plan.height)
        matches = (plan.search(egraph, restrict) if plan_search is None
                   else plan_search(plan, restrict))
        for class_id, subst in matches:
            if rule.condition is not None and not rule.condition(
                    egraph, class_id, subst):
                continue
            yield build, class_id, subst


def apply_rules(egraph: EGraph, rules: Sequence[Rewrite],
                max_matches_per_rule: Optional[int] = None,
                dirty: Optional[Iterable[int]] = None,
                verify_full: bool = False,
                scheduler: Optional[BackoffScheduler] = None
                ) -> Dict[str, RuleStats]:
    """Apply one round of every rule to the e-graph.

    All rules are matched first (against a congruence-closed e-graph), then
    all instantiations and unions are performed, then the e-graph is rebuilt.
    Returns per-rule statistics.

    Args:
        egraph: the target e-graph (rebuilt first if needed).
        rules: the rules to match and apply.
        scheduler: shared :class:`BackoffScheduler` driving rule back-off
            across iterations.  Banned rules are skipped; a rule exceeding
            its budget this round has its matches dropped wholesale and is
            banned, with the unsearched frontier recorded as debt.
        max_matches_per_rule: deprecated flat cap on applied matches per rule
            (counted after condition filtering).  Matches arrive in stable
            seq order, so the kept prefix is deterministic and the search
            stops at the cap — but prefer a scheduler, which never applies
            partial match sets.  Mutually exclusive with ``scheduler``
            (truncation would lose matches without recording debt).
        dirty: canonical ids of the classes changed since the previous round
            (see :meth:`EGraph.take_dirty`).  ``None`` requests a full scan;
            an iterable restricts matching to the dirty frontier.
        verify_full: debug flag — after a delta round, re-match every rule
            against the whole e-graph and raise ``AssertionError`` if the
            full scan still finds a union the delta pass missed.  Rules with
            scheduler debt are exempt (their missing matches are accounted
            for); without a scheduler any capped rule skips the whole check.
            The verification pass may insert (already equivalent)
            right-hand-side nodes, so it is for debugging only.
    """
    if scheduler is not None and max_matches_per_rule is not None:
        raise ValueError(
            "max_matches_per_rule (deprecated) cannot be combined with a "
            "scheduler: truncating a match set behind the scheduler's back "
            "would lose matches without recording search debt.  Set the "
            "scheduler's budget instead.")
    if not egraph.is_clean:
        egraph.rebuild()
    if scheduler is not None:
        scheduler.begin_iteration()
    dirty_set: Optional[AbstractSet[int]] = (
        None if dirty is None else {egraph.find(class_id) for class_id in dirty})
    shared_frontier = (None if dirty_set is None
                       else _DirtyFrontier(egraph, dirty_set))

    stats: Dict[str, RuleStats] = {}
    planned: List[Tuple[Rewrite, Pattern, int, Subst]] = []
    for rule in rules:
        rule_stats = stats.setdefault(rule.name, RuleStats())
        if scheduler is not None and scheduler.is_banned(rule.name):
            rule_stats.banned = True
            scheduler.defer(rule.name, dirty_set)
            continue

        if scheduler is None:
            rule_dirty = dirty_set
            frontier = shared_frontier
            budget = None
        else:
            rule_dirty = scheduler.frontier_for(rule.name, dirty_set)
            if rule_dirty is None:
                frontier = None
            elif rule_dirty is dirty_set:
                frontier = shared_frontier
            else:  # debt from banned iterations widens this rule's frontier
                frontier = _DirtyFrontier(egraph, rule_dirty)
            budget = scheduler.budget(rule.name)

        matches: List[Tuple[Pattern, int, Subst]] = []
        exceeded = False
        for match in _iter_matches(egraph, rule, frontier):
            if (max_matches_per_rule is not None
                    and len(matches) >= max_matches_per_rule):
                # Deprecated flat cap (no scheduler): keep the deterministic
                # seq-ordered prefix and stop searching at the cap.
                rule_stats.capped = True
                break
            matches.append(match)
            if budget is not None and len(matches) > budget:
                exceeded = True
                break
        if exceeded:
            # Egg-style back-off: applying a partial match set would make the
            # result depend on which matches happened to come first, so drop
            # them all, ban the rule, and remember what it failed to search.
            scheduler.ban(rule.name, rule_dirty)
            rule_stats.capped = True
            continue
        if scheduler is not None:
            scheduler.clear_debt(rule.name)
        rule_stats.matches += len(matches)
        planned.extend((rule, build, class_id, subst)
                       for build, class_id, subst in matches)

    instantiate_pattern = getattr(egraph, "instantiate_pattern", None)
    for rule, build, class_id, subst in planned:
        rule_stats = stats[rule.name]
        if rule.applier is not None:
            new_class = rule.applier(egraph, subst)
        elif instantiate_pattern is not None:
            new_class = instantiate_pattern(build, subst)
        else:
            new_class = instantiate(egraph, build, subst)
        rule_stats.applications += 1
        if egraph.union(class_id, new_class):
            rule_stats.unions += 1

    egraph.rebuild()

    if verify_full and shared_frontier is not None:
        _verify_delta_complete(egraph, rules, stats, scheduler)
    return stats


def _verify_delta_complete(egraph: EGraph, rules: Sequence[Rewrite],
                           stats: Dict[str, RuleStats],
                           scheduler: Optional[BackoffScheduler] = None
                           ) -> None:
    """Assert that a full scan finds no union the delta pass missed.

    Matches rooted in the *currently* dirty frontier are excluded: they were
    created by this round's own apply phase and will be searched next round
    (a full-scan engine defers them to the next iteration in exactly the
    same way).  Rules the scheduler is holding back — banned now, or still
    owing a rescan — are also excluded: their missing matches are recorded
    as search debt and will be found when the ban lifts.  Anything else that
    still produces a union is a genuine delta-matching hole.
    """
    if scheduler is None and any(stat.capped for stat in stats.values()):
        return
    # Gather first, mutate after: the frontier's canonical ids and the
    # full-scan search must not observe the verification's own unions.
    pending = _DirtyFrontier(egraph, egraph.peek_dirty(), exact=True)
    suspects: List[Tuple[Rewrite, Pattern, int, Subst]] = []
    for rule in rules:
        if scheduler is not None and (scheduler.is_banned(rule.name)
                                      or scheduler.has_debt(rule.name)):
            continue
        for plan, build in rule.plans():
            for class_id, subst in plan.search(egraph, None):
                if rule.condition is not None and not rule.condition(
                        egraph, class_id, subst):
                    continue
                if class_id in pending.at(plan.height):
                    continue  # pending: this round created it, next round sees it
                suspects.append((rule, build, class_id, subst))
    missed: List[str] = []
    instantiate_pattern = getattr(egraph, "instantiate_pattern", None)
    for rule, build, class_id, subst in suspects:
        if rule.applier is not None:
            new_class = rule.applier(egraph, subst)
        elif instantiate_pattern is not None:
            new_class = instantiate_pattern(build, subst)
        else:
            new_class = instantiate(egraph, build, subst)
        if egraph.union(class_id, new_class):
            missed.append(rule.name)
    egraph.rebuild()
    if missed:
        raise AssertionError(
            "delta e-matching missed matches of rules: "
            + ", ".join(sorted(set(missed))))
