"""Rewrite rules and their application to an e-graph.

:func:`apply_rules` supports two matching modes:

* **full scan** (``dirty=None``): every rule is matched against the whole
  e-graph, as a freshly-seen ruleset requires;
* **delta matching** (``dirty`` = set of changed class ids): each rule is
  matched only against the *dirty frontier* — the changed classes expanded
  upward through parent pointers by the rule pattern's height.  Any match
  that did not exist before the changes must root inside that frontier, so
  the two modes reach the same saturated e-graph (checked by
  ``verify_full=True``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .egraph import EGraph
from .pattern import (
    MatchPlan,
    Pattern,
    Subst,
    compile_pattern,
    instantiate,
    parse_pattern,
    pattern_vars,
)

__all__ = ["Rewrite", "RuleStats", "apply_rules"]


@dataclass
class Rewrite:
    """A directed rewrite rule ``lhs => rhs``.

    Attributes:
        name: rule name used in statistics and reports.
        lhs: left-hand-side pattern (searched).
        rhs: right-hand-side pattern (instantiated and unioned with the match).
        bidirectional: if True, the rule is also applied right-to-left.
        condition: optional predicate ``f(egraph, class_id, subst) -> bool``
            filtering matches before application.
        group: free-form tag (e.g. ``"R1"`` / ``"R2-xor"`` / ``"R2-maj"``).
        applier: optional callable ``f(egraph, subst) -> class_id`` used instead
            of instantiating ``rhs``; used by BoolE to insert symmetric
            operators (XOR3/MAJ) with canonically sorted children so that
            congruent discoveries merge without permutation rules.
    """

    name: str
    lhs: Pattern
    rhs: Pattern
    bidirectional: bool = False
    condition: Optional[Callable[[EGraph, int, Subst], bool]] = None
    group: str = ""
    applier: Optional[Callable[[EGraph, Subst], int]] = None

    @classmethod
    def parse(cls, name: str, lhs: str, rhs: str, *, bidirectional: bool = False,
              group: str = "", condition=None) -> "Rewrite":
        """Build a rule from s-expression strings.

        Raises ValueError if the right-hand side uses a pattern variable that
        does not occur on the left-hand side.
        """
        lhs_pattern = parse_pattern(lhs)
        rhs_pattern = parse_pattern(rhs)
        missing = set(pattern_vars(rhs_pattern)) - set(pattern_vars(lhs_pattern))
        if missing:
            raise ValueError(
                f"rule {name}: rhs variables {sorted(missing)} not bound by lhs")
        return cls(name=name, lhs=lhs_pattern, rhs=rhs_pattern,
                   bidirectional=bidirectional, group=group, condition=condition)

    @classmethod
    def with_applier(cls, name: str, lhs: str,
                     applier: Callable[[EGraph, Subst], int], *,
                     group: str = "", condition=None) -> "Rewrite":
        """Build a rule whose right-hand side is a custom applier callable."""
        lhs_pattern = parse_pattern(lhs)
        return cls(name=name, lhs=lhs_pattern, rhs=lhs_pattern, group=group,
                   condition=condition, applier=applier)

    def searchers(self) -> List[Tuple[Pattern, Pattern]]:
        """Return the (search, build) pattern pairs of this rule."""
        pairs = [(self.lhs, self.rhs)]
        if self.bidirectional:
            pairs.append((self.rhs, self.lhs))
        return pairs

    def plans(self) -> List[Tuple[MatchPlan, Pattern]]:
        """Return the compiled ``(match_plan, build_pattern)`` pairs."""
        return [(compile_pattern(search), build)
                for search, build in self.searchers()]

    def __str__(self) -> str:
        arrow = "<=>" if self.bidirectional else "=>"
        return f"{self.name}: {self.lhs} {arrow} {self.rhs}"


@dataclass
class RuleStats:
    """Per-rule application statistics for one runner iteration.

    ``matches`` counts the matches that survived the rule's ``condition``
    predicate and the per-rule cap, i.e. exactly the matches that were
    applied; capping and counting happen at the same (post-condition) stage
    so the numbers agree between capped and uncapped runs.  ``capped`` is
    True when the per-rule match cap cut the search short.
    """

    matches: int = 0
    applications: int = 0
    unions: int = 0
    capped: bool = False


class _DirtyFrontier:
    """Lazily expands a dirty class set upward through parent pointers.

    ``at(height)`` returns the dirty classes together with every ancestor
    reachable in at most ``height`` parent steps — the only classes that can
    root a match of a height-``height`` pattern that did not exist before the
    dirty classes changed.  Levels are computed once and shared by all rules.

    When a level grows to cover most of the e-graph, ``at`` returns ``None``
    ("scan everything") for that height and above: an unrestricted scan is
    cheaper than intersecting near-total candidate sets, and further parent
    walks would be wasted work.
    """

    def __init__(self, egraph: EGraph, dirty: AbstractSet[int], *,
                 exact: bool = False) -> None:
        self._egraph = egraph
        self._exact = exact
        base = {egraph.find(class_id) for class_id in dirty}
        self._levels: List[Set[int]] = [base]
        self._fresh: List[Set[int]] = [base]
        self._full_from: Optional[int] = (
            0 if self._covers_most(base) else None)

    def _covers_most(self, classes: Set[int]) -> bool:
        if self._exact:
            return False
        return 4 * len(classes) >= 3 * self._egraph.num_classes

    def at(self, height: int) -> Optional[Set[int]]:
        if self._full_from is not None and height >= self._full_from:
            return None
        while len(self._levels) <= height:
            parents: Set[int] = set()
            for class_id in self._fresh[-1]:
                parents |= self._egraph.parent_classes(class_id)
            fresh = parents - self._levels[-1]
            self._levels.append(self._levels[-1] | fresh)
            self._fresh.append(fresh)
            if self._covers_most(self._levels[-1]):
                self._full_from = len(self._levels) - 1
                return None
        return self._levels[height]


def _search_rule(egraph: EGraph, rule: Rewrite,
                 frontier: Optional[_DirtyFrontier],
                 max_matches: Optional[int],
                 rule_stats: RuleStats
                 ) -> Iterator[Tuple[Pattern, int, Subst]]:
    """Yield the condition-filtered, capped matches of one rule."""
    kept = 0
    for plan, build in rule.plans():
        restrict = None if frontier is None else frontier.at(plan.height)
        for class_id, subst in plan.search(egraph, restrict):
            if rule.condition is not None and not rule.condition(
                    egraph, class_id, subst):
                continue
            if max_matches is not None and kept >= max_matches:
                rule_stats.capped = True
                return
            kept += 1
            yield build, class_id, subst


def apply_rules(egraph: EGraph, rules: Sequence[Rewrite],
                max_matches_per_rule: Optional[int] = None,
                dirty: Optional[AbstractSet[int]] = None,
                verify_full: bool = False
                ) -> Dict[str, RuleStats]:
    """Apply one round of every rule to the e-graph.

    All rules are matched first (against a congruence-closed e-graph), then
    all instantiations and unions are performed, then the e-graph is rebuilt.
    Returns per-rule statistics.

    Args:
        egraph: the target e-graph (rebuilt first if needed).
        rules: the rules to match and apply.
        max_matches_per_rule: cap on applied matches per rule (counted after
            condition filtering).
        dirty: canonical ids of the classes changed since the previous round
            (see :meth:`EGraph.take_dirty`).  ``None`` requests a full scan;
            a set restricts matching to the dirty frontier.
        verify_full: debug flag — after a delta round, re-match every rule
            against the whole e-graph and raise ``AssertionError`` if the
            full scan still finds a union the delta pass missed.  Skipped
            when the per-rule cap truncated a rule, since capped runs are
            not comparable.  The verification pass may insert (already
            equivalent) right-hand-side nodes, so it is for debugging only.
    """
    if not egraph.is_clean:
        egraph.rebuild()
    frontier = None if dirty is None else _DirtyFrontier(egraph, dirty)

    stats: Dict[str, RuleStats] = {}
    planned: List[Tuple[Rewrite, Pattern, int, Subst]] = []
    for rule in rules:
        rule_stats = stats.setdefault(rule.name, RuleStats())
        for build, class_id, subst in _search_rule(
                egraph, rule, frontier, max_matches_per_rule, rule_stats):
            rule_stats.matches += 1
            planned.append((rule, build, class_id, subst))

    for rule, build, class_id, subst in planned:
        rule_stats = stats[rule.name]
        if rule.applier is not None:
            new_class = rule.applier(egraph, subst)
        else:
            new_class = instantiate(egraph, build, subst)
        rule_stats.applications += 1
        if egraph.union(class_id, new_class):
            rule_stats.unions += 1

    egraph.rebuild()

    if verify_full and frontier is not None:
        _verify_delta_complete(egraph, rules, stats)
    return stats


def _verify_delta_complete(egraph: EGraph, rules: Sequence[Rewrite],
                           stats: Dict[str, RuleStats]) -> None:
    """Assert that a full scan finds no union the delta pass missed.

    Matches rooted in the *currently* dirty frontier are excluded: they were
    created by this round's own apply phase and will be searched next round
    (a full-scan engine defers them to the next iteration in exactly the
    same way).  Anything outside that frontier that still produces a union
    is a genuine delta-matching hole.
    """
    if any(stat.capped for stat in stats.values()):
        return
    # Gather first, mutate after: the frontier's canonical ids and the
    # full-scan search must not observe the verification's own unions.
    pending = _DirtyFrontier(egraph, egraph.peek_dirty(), exact=True)
    suspects: List[Tuple[Rewrite, Pattern, int, Subst]] = []
    for rule in rules:
        for plan, build in rule.plans():
            for class_id, subst in plan.search(egraph, None):
                if rule.condition is not None and not rule.condition(
                        egraph, class_id, subst):
                    continue
                if class_id in pending.at(plan.height):
                    continue  # pending: this round created it, next round sees it
                suspects.append((rule, build, class_id, subst))
    missed: List[str] = []
    for rule, build, class_id, subst in suspects:
        if rule.applier is not None:
            new_class = rule.applier(egraph, subst)
        else:
            new_class = instantiate(egraph, build, subst)
        if egraph.union(class_id, new_class):
            missed.append(rule.name)
    egraph.rebuild()
    if missed:
        raise AssertionError(
            "delta e-matching missed matches of rules: "
            + ", ".join(sorted(set(missed))))
