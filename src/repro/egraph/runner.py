"""Saturation runner: applies rewrite rules until convergence or limits.

The runner drives :func:`~repro.egraph.rewrite.apply_rules` in *incremental*
mode by default: iteration 0 matches every rule against the whole e-graph
(the ruleset is new to this run), and each later iteration re-matches only
against the dirty frontier — the classes changed by the previous iteration,
expanded upward by each rule pattern's height.  Pass ``incremental=False``
to restore the original full-scan-per-iteration behaviour, and
``debug_check_full=True`` to assert (expensively) after every delta
iteration that a full scan would not have found more unions.

Explosive rules are governed by a :class:`~repro.egraph.rewrite
.BackoffScheduler` built from :class:`RunnerLimits`: a rule exceeding its
match budget is banned for exponentially growing windows instead of having
an arbitrary subset of its matches applied, which keeps saturation
deterministic and lets delta matching carry each banned rule's unsearched
frontier forward as debt (no full-rescan fallback).  The runner refuses to
report saturation while bans or debts are outstanding — it lifts the bans
and keeps iterating; a run that exhausts its iteration budget in that state
stops with :data:`StopReason.RULES_BANNED`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .egraph import EGraph
from .rewrite import BackoffScheduler, Rewrite, RuleStats, apply_rules

__all__ = ["RunnerLimits", "IterationReport", "RunnerReport", "Runner",
           "RunnerCheckpoint", "StopReason"]

#: Default initial per-rule match budget (kept as a module constant so the
#: deprecated ``max_matches_per_rule`` alias can tell an explicitly
#: configured ``match_limit`` apart from the untouched default).
DEFAULT_MATCH_LIMIT = 20_000


class StopReason:
    """Why a saturation run stopped."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    CLASS_LIMIT = "class_limit"
    TIME_LIMIT = "time_limit"
    #: The iteration budget ran out while the back-off scheduler still had
    #: banned rules or unsearched frontier debt: the e-graph is *not*
    #: saturated, more iterations would have found more matches.
    RULES_BANNED = "rules_banned"


@dataclass
class RunnerLimits:
    """Resource limits for a saturation run.

    Attributes:
        max_iterations: maximum number of rewrite iterations.
        max_nodes: stop when the e-graph exceeds this many e-nodes.
        max_classes: stop when the e-graph exceeds this many e-classes.
        time_limit: wall-clock budget in seconds.
        match_limit: initial per-rule match budget per iteration for the
            back-off scheduler (egg's ``match_limit``).  A rule exceeding it
            is banned for ``ban_length`` iterations; each repeated ban
            doubles both the budget and the window.  ``None`` disables
            back-off entirely (every match is always applied).
        ban_length: initial ban window, in iterations.
        max_matches_per_rule: **deprecated** alias for the old flat cap.
            When set it overrides ``match_limit`` with a
            ``BackoffScheduler.flat`` (one-iteration non-growing bans; the
            budget starts at the cap and doubles on repeated bans); matches
            beyond the budget are no longer silently dropped.
    """

    max_iterations: int = 10
    max_nodes: int = 200_000
    max_classes: int = 100_000
    time_limit: float = 120.0
    match_limit: Optional[int] = DEFAULT_MATCH_LIMIT
    ban_length: int = 2
    max_matches_per_rule: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_matches_per_rule is None:
            return
        if (self.match_limit is not None
                and self.match_limit != DEFAULT_MATCH_LIMIT):
            raise ValueError(
                "max_matches_per_rule (deprecated) cannot be combined with "
                "an explicit match_limit: the alias builds its own flat "
                "compatibility scheduler.  Drop the alias and configure "
                "match_limit/ban_length instead.")
        warnings.warn(
            "max_matches_per_rule is deprecated; use match_limit/ban_length "
            "(the alias builds a flat compatibility scheduler with "
            "one-iteration bans)", DeprecationWarning, stacklevel=3)

    def build_scheduler(self) -> Optional[BackoffScheduler]:
        """Create the back-off scheduler for one run (fresh state each run)."""
        if self.max_matches_per_rule is not None:
            return BackoffScheduler.flat(self.max_matches_per_rule)
        if self.match_limit is not None:
            return BackoffScheduler(self.match_limit, self.ban_length)
        return None


@dataclass
class IterationReport:
    """Statistics for a single saturation iteration."""

    index: int
    num_classes: int
    num_nodes: int
    unions: int
    elapsed: float
    rule_stats: Dict[str, RuleStats] = field(default_factory=dict)
    #: Number of dirty-frontier classes matched against (None = full scan).
    frontier_size: Optional[int] = None
    #: Rules skipped this iteration because a back-off ban was active.
    banned_rules: List[str] = field(default_factory=list)


@dataclass
class RunnerReport:
    """Summary of a saturation run."""

    stop_reason: str
    iterations: List[IterationReport] = field(default_factory=list)
    total_time: float = 0.0
    #: Times each rule was banned by the back-off scheduler over the run
    #: (rules never banned are omitted).
    scheduler_stats: Dict[str, int] = field(default_factory=dict)
    #: Iteration index this run resumed from (``None`` for uninterrupted
    #: runs; the latest resume wins when a run is resumed repeatedly).
    #: In-memory observability only — deliberately not serialized, so a
    #: resumed run still writes byte-identical snapshot payload structure.
    resumed_at: Optional[int] = None
    #: Saturation backend that executed the run (``"python"`` / ``"dense"``).
    #: In-memory observability only, like :attr:`resumed_at` — the engines
    #: are bit-identical, so serializing this would split cache artifacts
    #: that are in fact interchangeable.
    engine: str = "python"
    #: E-nodes scanned by the e-matcher over the run (engine-specific
    #: metric: the dense engine counts operator-span scans, the reference
    #: engine full-class scans).  In-memory observability only.
    ematch_ops: int = 0

    def ematch_ops_per_second(self) -> float:
        """Effective e-matching rate of the run (0.0 for an empty run)."""
        if self.total_time <= 0.0:
            return 0.0
        return self.ematch_ops / self.total_time

    @property
    def num_iterations(self) -> int:
        """Number of completed iterations."""
        return len(self.iterations)

    @property
    def saturated(self) -> bool:
        """True if the run stopped because no rule produced a new union."""
        return self.stop_reason == StopReason.SATURATED

    def total_unions(self) -> int:
        """Total number of e-class merges performed by the run."""
        return sum(report.unions for report in self.iterations)

    def total_bans(self) -> int:
        """Total number of back-off bans issued over the run."""
        return sum(self.scheduler_stats.values())


@dataclass
class RunnerCheckpoint:
    """A resumable snapshot of a saturation run between two iterations.

    Produced by :meth:`Runner.run` (``checkpoint_every``/``on_checkpoint``)
    after an iteration's effects — including scheduler unbans and the dirty
    frontier hand-off — have fully settled, so resuming replays the exact
    remainder of the interrupted run.  The checkpoint *aliases* live runner
    state (the report, the scheduler): persist it inside the callback (see
    :func:`repro.store.codec.save_checkpoint`) before the run continues.

    Attributes:
        iteration: index of the next iteration to execute.
        dirty: the delta-matching frontier for that iteration (``None`` =
            full scan / non-incremental run).
        limits: the run's resource limits.
        incremental: effective incremental flag of the run.
        debug_check_full: the run's cross-check flag (the verification pass
            may insert e-nodes, so it must survive a resume).
        report: the report accumulated so far (mutated as the run goes on).
        scheduler: the live back-off scheduler (``None`` when disabled).
        elapsed: wall-clock seconds consumed before the checkpoint; resumed
            runs count it against ``limits.time_limit``.
    """

    iteration: int
    dirty: Optional[List[int]]
    limits: RunnerLimits
    incremental: bool
    debug_check_full: bool
    report: RunnerReport
    scheduler: Optional[BackoffScheduler]
    elapsed: float = 0.0


class Runner:
    """Equality-saturation driver, analogous to egg's ``Runner``.

    Example::

        runner = Runner(limits=RunnerLimits(max_iterations=5))
        report = runner.run(egraph, rules)

    Args:
        limits: resource limits (defaults to :class:`RunnerLimits`).
        incremental: after the initial full-scan iteration, match rules only
            against the dirty frontier left by the previous iteration.
            Automatically disabled when any rule carries a ``condition``
            predicate: a condition may read evolving e-graph state, so a
            match rejected once must be re-evaluated on every iteration,
            which only full scans guarantee.
        debug_check_full: assert after every delta iteration that a full
            scan finds no additional unions (slow; for tests/debugging).
    """

    def __init__(self, limits: Optional[RunnerLimits] = None, *,
                 incremental: bool = True,
                 debug_check_full: bool = False) -> None:
        self.limits = limits or RunnerLimits()
        self.incremental = incremental
        self.debug_check_full = debug_check_full

    @classmethod
    def from_checkpoint(cls, checkpoint: RunnerCheckpoint) -> "Runner":
        """Build a runner configured exactly like the checkpointed run."""
        return cls(checkpoint.limits,
                   incremental=checkpoint.incremental,
                   debug_check_full=checkpoint.debug_check_full)

    def run(self, egraph: EGraph, rules: Sequence[Rewrite], *,
            checkpoint_every: Optional[int] = None,
            on_checkpoint: Optional[Callable[[RunnerCheckpoint], None]] = None,
            resume_from: Optional[RunnerCheckpoint] = None) -> RunnerReport:
        """Apply ``rules`` to ``egraph`` until saturation or a limit is hit.

        Args:
            checkpoint_every: invoke ``on_checkpoint`` after every this-many
                completed iterations (counted from iteration 0 of the run,
                so resumed runs keep the original cadence).  Checkpoints are
                only taken when the run is about to continue — never after a
                stop decision — so a restore always has work left to do.
            on_checkpoint: callback receiving a :class:`RunnerCheckpoint`
                that aliases live state; serialize it before returning.
            resume_from: continue a checkpointed run instead of starting
                fresh: the loop picks up at ``checkpoint.iteration`` with
                the checkpoint's dirty frontier, scheduler and report, and
                produces a final e-graph bit-identical to the uninterrupted
                run (``tests/test_store.py`` holds this property across
                hash seeds and schedulers).
        """
        limits = self.limits
        ops_start = getattr(egraph, "match_ops", 0)
        if resume_from is not None:
            incremental = resume_from.incremental
            scheduler = resume_from.scheduler
            report = resume_from.report
            report.resumed_at = resume_from.iteration
            dirty = resume_from.dirty
            first_iteration = resume_from.iteration
            # The checkpointed run already paid this much wall time; count
            # it against the time budget of the resumed run.
            start = time.perf_counter() - resume_from.elapsed
            egraph.rebuild()  # no-op on a well-formed checkpoint
        else:
            incremental = (self.incremental
                           and all(rule.condition is None for rule in rules))
            scheduler = limits.build_scheduler()
            report = RunnerReport(stop_reason=StopReason.ITERATION_LIMIT)
            start = time.perf_counter()
            egraph.rebuild()
            # Discard dirt accumulated before this run: iteration 0 scans
            # the whole e-graph anyway, so pre-existing dirt would only
            # bloat the frontier of iteration 1.
            egraph.take_dirty()
            dirty = None
            first_iteration = 0
        report.engine = getattr(egraph, "engine", "python")
        for iteration in range(first_iteration, limits.max_iterations):
            if time.perf_counter() - start > limits.time_limit:
                report.stop_reason = StopReason.TIME_LIMIT
                break
            iter_start = time.perf_counter()
            frontier_size = None if dirty is None else len(dirty)
            stats = apply_rules(egraph, rules,
                                dirty=dirty,
                                verify_full=self.debug_check_full,
                                scheduler=scheduler)
            if incremental:
                dirty = egraph.take_dirty()
            unions = sum(stat.unions for stat in stats.values())
            num_classes, num_nodes = egraph.total_size()
            report.iterations.append(IterationReport(
                index=iteration,
                num_classes=num_classes,
                num_nodes=num_nodes,
                unions=unions,
                elapsed=time.perf_counter() - iter_start,
                rule_stats=stats,
                frontier_size=frontier_size,
                banned_rules=sorted(name for name, stat in stats.items()
                                    if stat.banned or stat.capped),
            ))
            if unions == 0:
                if scheduler is None or not scheduler.outstanding():
                    report.stop_reason = StopReason.SATURATED
                    break
                # Quiet only because rules are held back — lift the bans
                # (budgets stay grown) and keep going; the unbanned rules
                # re-search their recorded debt next iteration.
                scheduler.unban_all()
            elif num_nodes > limits.max_nodes:
                report.stop_reason = StopReason.NODE_LIMIT
                break
            elif num_classes > limits.max_classes:
                report.stop_reason = StopReason.CLASS_LIMIT
                break
            # The run continues past this iteration: every side effect —
            # frontier hand-off, scheduler unbans — has settled, so this is
            # the one safe place to checkpoint.
            if (checkpoint_every is not None and on_checkpoint is not None
                    and (iteration + 1) % checkpoint_every == 0
                    and iteration + 1 < limits.max_iterations):
                on_checkpoint(RunnerCheckpoint(
                    iteration=iteration + 1,
                    dirty=None if dirty is None else list(dirty),
                    limits=limits,
                    incremental=incremental,
                    debug_check_full=self.debug_check_full,
                    report=report,
                    scheduler=scheduler,
                    elapsed=time.perf_counter() - start,
                ))
        if (report.stop_reason == StopReason.ITERATION_LIMIT
                and scheduler is not None and scheduler.outstanding()):
            report.stop_reason = StopReason.RULES_BANNED
        if scheduler is not None:
            report.scheduler_stats = scheduler.stats()
        report.total_time = time.perf_counter() - start
        report.ematch_ops += getattr(egraph, "match_ops", 0) - ops_start
        return report
