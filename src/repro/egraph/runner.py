"""Saturation runner: applies rewrite rules until convergence or limits."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .egraph import EGraph
from .rewrite import Rewrite, RuleStats, apply_rules

__all__ = ["RunnerLimits", "IterationReport", "RunnerReport", "Runner", "StopReason"]


class StopReason:
    """Why a saturation run stopped."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"


@dataclass
class RunnerLimits:
    """Resource limits for a saturation run.

    Attributes:
        max_iterations: maximum number of rewrite iterations.
        max_nodes: stop when the e-graph exceeds this many e-nodes.
        max_classes: stop when the e-graph exceeds this many e-classes.
        time_limit: wall-clock budget in seconds.
        max_matches_per_rule: cap on matches applied per rule per iteration
            (a simple back-off scheduler preventing explosive rules from
            dominating an iteration).
    """

    max_iterations: int = 10
    max_nodes: int = 200_000
    max_classes: int = 100_000
    time_limit: float = 120.0
    max_matches_per_rule: Optional[int] = 20_000


@dataclass
class IterationReport:
    """Statistics for a single saturation iteration."""

    index: int
    num_classes: int
    num_nodes: int
    unions: int
    elapsed: float
    rule_stats: Dict[str, RuleStats] = field(default_factory=dict)


@dataclass
class RunnerReport:
    """Summary of a saturation run."""

    stop_reason: str
    iterations: List[IterationReport] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def num_iterations(self) -> int:
        """Number of completed iterations."""
        return len(self.iterations)

    @property
    def saturated(self) -> bool:
        """True if the run stopped because no rule produced a new union."""
        return self.stop_reason == StopReason.SATURATED

    def total_unions(self) -> int:
        """Total number of e-class merges performed by the run."""
        return sum(report.unions for report in self.iterations)


class Runner:
    """Equality-saturation driver, analogous to egg's ``Runner``.

    Example::

        runner = Runner(limits=RunnerLimits(max_iterations=5))
        report = runner.run(egraph, rules)
    """

    def __init__(self, limits: Optional[RunnerLimits] = None) -> None:
        self.limits = limits or RunnerLimits()

    def run(self, egraph: EGraph, rules: Sequence[Rewrite]) -> RunnerReport:
        """Apply ``rules`` to ``egraph`` until saturation or a limit is hit."""
        limits = self.limits
        start = time.perf_counter()
        report = RunnerReport(stop_reason=StopReason.ITERATION_LIMIT)
        egraph.rebuild()
        for iteration in range(limits.max_iterations):
            if time.perf_counter() - start > limits.time_limit:
                report.stop_reason = StopReason.TIME_LIMIT
                break
            iter_start = time.perf_counter()
            stats = apply_rules(egraph, rules,
                                max_matches_per_rule=limits.max_matches_per_rule)
            unions = sum(stat.unions for stat in stats.values())
            num_classes, num_nodes = egraph.total_size()
            report.iterations.append(IterationReport(
                index=iteration,
                num_classes=num_classes,
                num_nodes=num_nodes,
                unions=unions,
                elapsed=time.perf_counter() - iter_start,
                rule_stats=stats,
            ))
            if unions == 0:
                report.stop_reason = StopReason.SATURATED
                break
            if num_nodes > limits.max_nodes or num_classes > limits.max_classes:
                report.stop_reason = StopReason.NODE_LIMIT
                break
        report.total_time = time.perf_counter() - start
        return report
