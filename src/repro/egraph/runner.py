"""Saturation runner: applies rewrite rules until convergence or limits.

The runner drives :func:`~repro.egraph.rewrite.apply_rules` in *incremental*
mode by default: iteration 0 matches every rule against the whole e-graph
(the ruleset is new to this run), and each later iteration re-matches only
against the dirty frontier — the classes changed by the previous iteration,
expanded upward by each rule pattern's height.  Pass ``incremental=False``
to restore the original full-scan-per-iteration behaviour, and
``debug_check_full=True`` to assert (expensively) after every delta
iteration that a full scan would not have found more unions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .egraph import EGraph
from .rewrite import Rewrite, RuleStats, apply_rules

__all__ = ["RunnerLimits", "IterationReport", "RunnerReport", "Runner", "StopReason"]


class StopReason:
    """Why a saturation run stopped."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    CLASS_LIMIT = "class_limit"
    TIME_LIMIT = "time_limit"


@dataclass
class RunnerLimits:
    """Resource limits for a saturation run.

    Attributes:
        max_iterations: maximum number of rewrite iterations.
        max_nodes: stop when the e-graph exceeds this many e-nodes.
        max_classes: stop when the e-graph exceeds this many e-classes.
        time_limit: wall-clock budget in seconds.
        max_matches_per_rule: cap on matches applied per rule per iteration
            (a simple back-off scheduler preventing explosive rules from
            dominating an iteration).
    """

    max_iterations: int = 10
    max_nodes: int = 200_000
    max_classes: int = 100_000
    time_limit: float = 120.0
    max_matches_per_rule: Optional[int] = 20_000


@dataclass
class IterationReport:
    """Statistics for a single saturation iteration."""

    index: int
    num_classes: int
    num_nodes: int
    unions: int
    elapsed: float
    rule_stats: Dict[str, RuleStats] = field(default_factory=dict)
    #: Number of dirty-frontier classes matched against (None = full scan).
    frontier_size: Optional[int] = None


@dataclass
class RunnerReport:
    """Summary of a saturation run."""

    stop_reason: str
    iterations: List[IterationReport] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def num_iterations(self) -> int:
        """Number of completed iterations."""
        return len(self.iterations)

    @property
    def saturated(self) -> bool:
        """True if the run stopped because no rule produced a new union."""
        return self.stop_reason == StopReason.SATURATED

    def total_unions(self) -> int:
        """Total number of e-class merges performed by the run."""
        return sum(report.unions for report in self.iterations)


class Runner:
    """Equality-saturation driver, analogous to egg's ``Runner``.

    Example::

        runner = Runner(limits=RunnerLimits(max_iterations=5))
        report = runner.run(egraph, rules)

    Args:
        limits: resource limits (defaults to :class:`RunnerLimits`).
        incremental: after the initial full-scan iteration, match rules only
            against the dirty frontier left by the previous iteration.
            Automatically disabled when any rule carries a ``condition``
            predicate: a condition may read evolving e-graph state, so a
            match rejected once must be re-evaluated on every iteration,
            which only full scans guarantee.
        debug_check_full: assert after every delta iteration that a full
            scan finds no additional unions (slow; for tests/debugging).
    """

    def __init__(self, limits: Optional[RunnerLimits] = None, *,
                 incremental: bool = True,
                 debug_check_full: bool = False) -> None:
        self.limits = limits or RunnerLimits()
        self.incremental = incremental
        self.debug_check_full = debug_check_full

    def run(self, egraph: EGraph, rules: Sequence[Rewrite]) -> RunnerReport:
        """Apply ``rules`` to ``egraph`` until saturation or a limit is hit."""
        limits = self.limits
        incremental = (self.incremental
                       and all(rule.condition is None for rule in rules))
        start = time.perf_counter()
        report = RunnerReport(stop_reason=StopReason.ITERATION_LIMIT)
        egraph.rebuild()
        # Discard dirt accumulated before this run: iteration 0 scans the
        # whole e-graph anyway, so pre-existing dirt would only bloat the
        # frontier of iteration 1.
        egraph.take_dirty()
        dirty: Optional[Set[int]] = None
        for iteration in range(limits.max_iterations):
            if time.perf_counter() - start > limits.time_limit:
                report.stop_reason = StopReason.TIME_LIMIT
                break
            iter_start = time.perf_counter()
            frontier_size = None if dirty is None else len(dirty)
            stats = apply_rules(egraph, rules,
                                max_matches_per_rule=limits.max_matches_per_rule,
                                dirty=dirty,
                                verify_full=self.debug_check_full)
            if incremental:
                dirty = egraph.take_dirty()
                # A capped rule dropped matches that only a rescan can
                # recover: delta matching would never revisit their (now
                # clean) classes, so fall back to a full scan once.
                if any(stat.capped for stat in stats.values()):
                    dirty = None
            unions = sum(stat.unions for stat in stats.values())
            num_classes, num_nodes = egraph.total_size()
            report.iterations.append(IterationReport(
                index=iteration,
                num_classes=num_classes,
                num_nodes=num_nodes,
                unions=unions,
                elapsed=time.perf_counter() - iter_start,
                rule_stats=stats,
                frontier_size=frontier_size,
            ))
            if unions == 0:
                report.stop_reason = StopReason.SATURATED
                break
            if num_nodes > limits.max_nodes:
                report.stop_reason = StopReason.NODE_LIMIT
                break
            if num_classes > limits.max_classes:
                report.stop_reason = StopReason.CLASS_LIMIT
                break
        report.total_time = time.perf_counter() - start
        return report
