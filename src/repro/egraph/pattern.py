"""Pattern language for e-matching and rule right-hand sides.

Patterns are written as s-expressions, e.g. ``"(& ?a (~ ?b))"``.  Tokens
starting with ``?`` are pattern variables; ``0``/``1`` are Boolean constants;
any other bare token is a concrete named variable (rarely needed in rules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .egraph import EGraph
from .enode import ENode, Op

__all__ = [
    "Pattern",
    "PatternVar",
    "PatternNode",
    "MatchPlan",
    "compile_pattern",
    "parse_pattern",
    "Subst",
]

Subst = Dict[str, int]


@dataclass(frozen=True)
class PatternVar:
    """A pattern variable such as ``?a``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PatternNode:
    """An operator pattern with child patterns."""

    op: str
    children: Tuple["Pattern", ...] = ()
    payload: Optional[object] = None

    def __str__(self) -> str:
        if self.op == Op.VAR:
            return str(self.payload)
        if self.op == Op.CONST:
            return "1" if self.payload else "0"
        inner = " ".join(str(child) for child in self.children)
        return f"({self.op} {inner})" if inner else f"({self.op})"


Pattern = Union[PatternVar, PatternNode]


def _tokenize(text: str) -> List[str]:
    return text.replace("(", " ( ").replace(")", " ) ").split()


def _parse_tokens(tokens: List[str], position: int) -> Tuple[Pattern, int]:
    token = tokens[position]
    if token == "(":
        op = tokens[position + 1]
        position += 2
        children: List[Pattern] = []
        while tokens[position] != ")":
            child, position = _parse_tokens(tokens, position)
            children.append(child)
        return PatternNode(op, tuple(children)), position + 1
    if token == ")":
        raise ValueError("unexpected ')' in pattern")
    position += 1
    if token.startswith("?"):
        return PatternVar(token), position
    if token in ("0", "false"):
        return PatternNode(Op.CONST, (), False), position
    if token in ("1", "true"):
        return PatternNode(Op.CONST, (), True), position
    return PatternNode(Op.VAR, (), token), position


def parse_pattern(text: str) -> Pattern:
    """Parse an s-expression pattern string."""
    tokens = _tokenize(text)
    if not tokens:
        raise ValueError("empty pattern")
    pattern, position = _parse_tokens(tokens, 0)
    if position != len(tokens):
        raise ValueError(f"trailing tokens in pattern {text!r}")
    return pattern


def pattern_vars(pattern: Pattern) -> List[str]:
    """Return the pattern variables appearing in ``pattern`` (in order)."""
    result: List[str] = []

    def walk(node: Pattern) -> None:
        if isinstance(node, PatternVar):
            if node.name not in result:
                result.append(node.name)
        else:
            for child in node.children:
                walk(child)

    walk(pattern)
    return result


def match_in_class(egraph: EGraph, pattern: Pattern, class_id: int,
                   subst: Subst) -> Iterator[Subst]:
    """Yield all substitutions matching ``pattern`` against an e-class."""
    class_id = egraph.find(class_id)
    if isinstance(pattern, PatternVar):
        bound = subst.get(pattern.name)
        if bound is None:
            new_subst = dict(subst)
            new_subst[pattern.name] = class_id
            yield new_subst
        elif egraph.find(bound) == class_id:
            yield subst
        return

    nodes = egraph.enodes(class_id)
    egraph.match_ops += len(nodes)
    for node in nodes:
        if node.op != pattern.op:
            continue
        if pattern.op in (Op.VAR, Op.CONST):
            if node.payload == pattern.payload:
                yield subst
            continue
        if len(node.children) != len(pattern.children):
            continue
        yield from _match_children(egraph, pattern.children, node.children, 0, subst)


def _match_children(egraph: EGraph, patterns: Sequence[Pattern],
                    children: Sequence[int], index: int,
                    subst: Subst) -> Iterator[Subst]:
    if index == len(patterns):
        yield subst
        return
    for partial in match_in_class(egraph, patterns[index], children[index], subst):
        yield from _match_children(egraph, patterns, children, index + 1, partial)


def ematch(egraph: EGraph, pattern: Pattern) -> List[Tuple[int, Subst]]:
    """Find all matches of ``pattern`` in the e-graph.

    Returns a list of ``(class_id, substitution)`` pairs.  The pattern is
    compiled into a (cached) :class:`MatchPlan` that drives candidate
    selection from the e-graph's persistent operator index.
    """
    return list(compile_pattern(pattern).search(egraph))


# ----------------------------------------------------------------------
# Compiled match plans.
# ----------------------------------------------------------------------

#: Maximum pattern depth at which pivoting on a non-root operator is still
#: cheaper than scanning the root operator's candidate classes directly.
_MAX_PIVOT_DEPTH = 2

#: The pivot's candidate set must be at least this many times smaller than
#: the root's before an ancestor walk is attempted.
_PIVOT_ADVANTAGE = 4


@dataclass
class MatchPlan:
    """A reusable, compiled e-matching strategy for one pattern.

    Compilation extracts the static facts the matcher needs on every
    iteration — the root operator, the pattern height (deepest position,
    root = 0), and the minimum depth at which each operator occurs — so the
    per-iteration work reduces to cheap set operations on the e-graph's
    persistent operator index:

    * if any operator of the pattern has no candidate class, there can be no
      match anywhere and the rule is skipped outright;
    * candidate roots are generated from the pattern's most selective
      operator: either the root operator's classes directly, or — when a
      sub-operator is much rarer — an ancestor walk of ``depth`` levels up
      the parent pointers from that operator's classes;
    * a ``restrict`` set (the dirty frontier expanded to this plan's height)
      intersects the candidates, which is what makes delta matching O(changed
      region) instead of O(e-graph).
    """

    pattern: Pattern
    root_op: Optional[str]
    height: int
    op_min_depth: Dict[str, int] = field(default_factory=dict)

    def candidate_roots(self, egraph: EGraph,
                        restrict: Optional[AbstractSet[int]] = None
                        ) -> List[int]:
        """Canonical class ids that may root a match, in stable (seq) order.

        The returned list is sorted by the e-graph's insertion seq so the
        match stream — and therefore any truncation of it — is deterministic
        regardless of hash seed.
        """
        if self.root_op is None:
            all_classes = egraph.class_ids()  # already seq-sorted
            if restrict is None:
                return all_classes
            return [cid for cid in all_classes if cid in restrict]
        roots: AbstractSet[int] = egraph.candidate_classes(self.root_op)
        if not roots:
            return []
        if restrict is not None:
            # Delta iteration: the frontier already bounds the work, so the
            # pivot machinery below (which canonicalises every operator's
            # candidate set) would cost more than the scan it prunes.
            return egraph.sorted_by_seq(roots & restrict)
        pivot_classes: Optional[AbstractSet[int]] = None
        pivot_depth = 0
        for op, depth in self.op_min_depth.items():
            if op == self.root_op:
                continue
            classes = egraph.candidate_classes(op)
            if not classes:
                return []
            # Only walk-eligible positions can serve as pivots.
            if (0 < depth <= _MAX_PIVOT_DEPTH
                    and (pivot_classes is None
                         or len(classes) < len(pivot_classes))):
                pivot_classes, pivot_depth = classes, depth
        if (pivot_classes is not None
                and len(pivot_classes) * _PIVOT_ADVANTAGE <= len(roots)):
            ancestors: AbstractSet[int] = pivot_classes
            for _ in range(pivot_depth):
                level = set()
                for class_id in ancestors:
                    level |= egraph.parent_classes(class_id)
                ancestors = level
            roots = ancestors & roots
        return egraph.sorted_by_seq(roots)

    def search(self, egraph: EGraph,
               restrict: Optional[AbstractSet[int]] = None
               ) -> Iterator[Tuple[int, Subst]]:
        """Yield ``(root_class, substitution)`` matches of the pattern.

        ``restrict`` limits the candidate roots to the given canonical class
        ids (``None`` means the whole e-graph).  Matches are produced in a
        deterministic order: roots ascend by insertion seq and the e-nodes
        within each class are visited in :func:`~repro.egraph.egraph
        .enode_sort_key` order.
        """
        if isinstance(self.pattern, PatternVar):
            classes: Iterable[int] = (egraph.class_ids() if restrict is None
                                      else egraph.sorted_by_seq(restrict))
            for class_id in classes:
                root = egraph.find(class_id)
                yield root, {self.pattern.name: root}
            return
        for root in self.candidate_roots(egraph, restrict):
            for subst in match_in_class(egraph, self.pattern, root, {}):
                yield root, subst


@lru_cache(maxsize=None)
def compile_pattern(pattern: Pattern) -> MatchPlan:
    """Compile ``pattern`` into a cached, reusable :class:`MatchPlan`."""
    if isinstance(pattern, PatternVar):
        return MatchPlan(pattern=pattern, root_op=None, height=0)

    op_min_depth: Dict[str, int] = {}
    height = 0

    def walk(node: Pattern, depth: int) -> None:
        nonlocal height
        height = max(height, depth)
        if isinstance(node, PatternVar):
            return
        current = op_min_depth.get(node.op)
        if current is None or depth < current:
            op_min_depth[node.op] = depth
        for child in node.children:
            walk(child, depth + 1)

    walk(pattern, 0)
    return MatchPlan(pattern=pattern, root_op=pattern.op, height=height,
                     op_min_depth=op_min_depth)


def instantiate(egraph: EGraph, pattern: Pattern, subst: Subst) -> int:
    """Insert the instantiation of ``pattern`` under ``subst`` into the e-graph."""
    if isinstance(pattern, PatternVar):
        try:
            return subst[pattern.name]
        except KeyError as error:
            raise KeyError(
                f"pattern variable {pattern.name} unbound during instantiation"
            ) from error
    if pattern.op in (Op.VAR, Op.CONST):
        return egraph.add(ENode(pattern.op, (), pattern.payload))
    children = tuple(instantiate(egraph, child, subst) for child in pattern.children)
    return egraph.add(ENode(pattern.op, children))
