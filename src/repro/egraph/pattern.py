"""Pattern language for e-matching and rule right-hand sides.

Patterns are written as s-expressions, e.g. ``"(& ?a (~ ?b))"``.  Tokens
starting with ``?`` are pattern variables; ``0``/``1`` are Boolean constants;
any other bare token is a concrete named variable (rarely needed in rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .egraph import EGraph
from .enode import ENode, Op

__all__ = ["Pattern", "PatternVar", "PatternNode", "parse_pattern", "Subst"]

Subst = Dict[str, int]


@dataclass(frozen=True)
class PatternVar:
    """A pattern variable such as ``?a``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PatternNode:
    """An operator pattern with child patterns."""

    op: str
    children: Tuple["Pattern", ...] = ()
    payload: Optional[object] = None

    def __str__(self) -> str:
        if self.op == Op.VAR:
            return str(self.payload)
        if self.op == Op.CONST:
            return "1" if self.payload else "0"
        inner = " ".join(str(child) for child in self.children)
        return f"({self.op} {inner})" if inner else f"({self.op})"


Pattern = Union[PatternVar, PatternNode]


def _tokenize(text: str) -> List[str]:
    return text.replace("(", " ( ").replace(")", " ) ").split()


def _parse_tokens(tokens: List[str], position: int) -> Tuple[Pattern, int]:
    token = tokens[position]
    if token == "(":
        op = tokens[position + 1]
        position += 2
        children: List[Pattern] = []
        while tokens[position] != ")":
            child, position = _parse_tokens(tokens, position)
            children.append(child)
        return PatternNode(op, tuple(children)), position + 1
    if token == ")":
        raise ValueError("unexpected ')' in pattern")
    position += 1
    if token.startswith("?"):
        return PatternVar(token), position
    if token in ("0", "false"):
        return PatternNode(Op.CONST, (), False), position
    if token in ("1", "true"):
        return PatternNode(Op.CONST, (), True), position
    return PatternNode(Op.VAR, (), token), position


def parse_pattern(text: str) -> Pattern:
    """Parse an s-expression pattern string."""
    tokens = _tokenize(text)
    if not tokens:
        raise ValueError("empty pattern")
    pattern, position = _parse_tokens(tokens, 0)
    if position != len(tokens):
        raise ValueError(f"trailing tokens in pattern {text!r}")
    return pattern


def pattern_vars(pattern: Pattern) -> List[str]:
    """Return the pattern variables appearing in ``pattern`` (in order)."""
    result: List[str] = []

    def walk(node: Pattern) -> None:
        if isinstance(node, PatternVar):
            if node.name not in result:
                result.append(node.name)
        else:
            for child in node.children:
                walk(child)

    walk(pattern)
    return result


def match_in_class(egraph: EGraph, pattern: Pattern, class_id: int,
                   subst: Subst) -> Iterator[Subst]:
    """Yield all substitutions matching ``pattern`` against an e-class."""
    class_id = egraph.find(class_id)
    if isinstance(pattern, PatternVar):
        bound = subst.get(pattern.name)
        if bound is None:
            new_subst = dict(subst)
            new_subst[pattern.name] = class_id
            yield new_subst
        elif egraph.find(bound) == class_id:
            yield subst
        return

    for node in egraph.enodes(class_id):
        if node.op != pattern.op:
            continue
        if pattern.op in (Op.VAR, Op.CONST):
            if node.payload == pattern.payload:
                yield subst
            continue
        if len(node.children) != len(pattern.children):
            continue
        yield from _match_children(egraph, pattern.children, node.children, 0, subst)


def _match_children(egraph: EGraph, patterns: Sequence[Pattern],
                    children: Sequence[int], index: int,
                    subst: Subst) -> Iterator[Subst]:
    if index == len(patterns):
        yield subst
        return
    for partial in match_in_class(egraph, patterns[index], children[index], subst):
        yield from _match_children(egraph, patterns, children, index + 1, partial)


def ematch(egraph: EGraph, pattern: Pattern,
           op_index: Optional[Dict[str, List[Tuple[int, ENode]]]] = None
           ) -> List[Tuple[int, Subst]]:
    """Find all matches of ``pattern`` in the e-graph.

    Returns a list of ``(class_id, substitution)`` pairs.  When an operator
    snapshot index is supplied (see :meth:`EGraph.op_index`), the search is
    restricted to classes that contain the root operator, which is the main
    e-matching optimisation.
    """
    matches: List[Tuple[int, Subst]] = []
    if isinstance(pattern, PatternVar):
        for class_id in egraph.class_ids():
            matches.append((class_id, {pattern.name: class_id}))
        return matches

    if op_index is not None:
        candidates = op_index.get(pattern.op, ())
        seen_roots = set()
        for class_id, _node in candidates:
            root = egraph.find(class_id)
            if root in seen_roots:
                continue
            seen_roots.add(root)
            for subst in match_in_class(egraph, pattern, root, {}):
                matches.append((root, subst))
        return matches

    for class_id in egraph.class_ids():
        for subst in match_in_class(egraph, pattern, class_id, {}):
            matches.append((class_id, subst))
    return matches


def instantiate(egraph: EGraph, pattern: Pattern, subst: Subst) -> int:
    """Insert the instantiation of ``pattern`` under ``subst`` into the e-graph."""
    if isinstance(pattern, PatternVar):
        try:
            return subst[pattern.name]
        except KeyError as error:
            raise KeyError(
                f"pattern variable {pattern.name} unbound during instantiation"
            ) from error
    if pattern.op in (Op.VAR, Op.CONST):
        return egraph.add(ENode(pattern.op, (), pattern.payload))
    children = tuple(instantiate(egraph, child, subst) for child in pattern.children)
    return egraph.add(ENode(pattern.op, children))
