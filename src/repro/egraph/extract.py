"""Generic e-graph extraction: pick one representative e-node per e-class.

Two extractors are provided here:

* :class:`TreeCostExtractor` — the classic egg-style bottom-up extractor with
  an additive scalar cost per operator (tree cost, shared sub-expressions are
  counted once per use).
* helpers to materialise the chosen representatives into ordinary nested
  expressions and to count operators.

The BoolE-specific DAG extractor that maximises the number of exact full
adders lives in :mod:`repro.core.extraction`; it reuses the utilities here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .egraph import EGraph
from .enode import ENode, Op

__all__ = [
    "CostFunction",
    "ExtractionChoice",
    "ExtractionResult",
    "TreeCostExtractor",
    "DEFAULT_OP_COSTS",
    "default_cost",
    "node_tiebreak_key",
    "expr_of",
    "count_ops",
]

CostFunction = Callable[[ENode, Sequence[float]], float]

#: Default per-operator costs used by the tree extractor.  Structural
#: operators that BoolE wants to surface (FA, XOR3, MAJ) are slightly cheaper
#: than re-expressing them through AND/NOT gates.
DEFAULT_OP_COSTS: Dict[str, float] = {
    Op.VAR: 0.0,
    Op.CONST: 0.0,
    Op.NOT: 0.25,
    Op.AND: 1.0,
    Op.OR: 1.0,
    Op.NAND: 1.0,
    Op.NOR: 1.0,
    Op.XOR: 1.0,
    Op.XNOR: 1.0,
    Op.XOR3: 1.5,
    Op.MAJ: 1.5,
    Op.FA: 0.5,
    Op.HA: 0.5,
    Op.FST: 0.0,
    Op.SND: 0.0,
}


def default_cost(node: ENode, child_costs: Sequence[float]) -> float:
    """Additive cost: per-op weight plus the cost of the chosen children."""
    return DEFAULT_OP_COSTS.get(node.op, 1.0) + sum(child_costs)


@dataclass
class ExtractionChoice:
    """The selected e-node and cost for one e-class."""

    cost: float
    node: ENode


def node_tiebreak_key(egraph: EGraph, node: ENode):
    """Deterministic order among equal-cost extraction candidates.

    Compares by operator name, then the children's stable insertion seqs,
    then the payload rendered as text.  Breaking cost ties with this key
    (instead of keeping whichever node iterated first) makes extracted
    netlists identical across runs and engines.
    """
    return (node.op, tuple(egraph.seq(child) for child in node.children),
            str(node.payload))


def worklist_tables(egraph: EGraph):
    """One deterministic setup scan shared by the worklist extractors.

    Returns ``(class_list, nodes, owner, children, tiebreak, waiting,
    users)``: canonical class ids in seq order; the e-nodes flattened in
    (class seq, ``enode_sort_key``) order with their owning class
    position, child class positions and precomputed tie-break keys; the
    per-node count of distinct unresolved child classes (Kahn in-degrees);
    and the node-level dependency index — child class position → the node
    ids that reference it, in insertion order, so propagation walks users
    deterministically.  Shared by :class:`TreeCostExtractor` and
    :class:`repro.core.extraction.BoolEExtractor` so fixes to the
    mechanics cannot diverge between them.
    """
    class_list = [egraph.find(eclass.id) for eclass in egraph.classes()]
    class_index = {class_id: index
                   for index, class_id in enumerate(class_list)}
    nodes: List[ENode] = []
    owner: List[int] = []
    children: List[Tuple[int, ...]] = []
    tiebreak: List[Tuple] = []
    waiting: List[int] = []
    users: List[List[int]] = [[] for _ in class_list]
    find = egraph.find
    for class_position, class_id in enumerate(class_list):
        for node in egraph.enodes(class_id):
            node_id = len(nodes)
            nodes.append(node)
            owner.append(class_position)
            tiebreak.append(node_tiebreak_key(egraph, node))
            child_positions = tuple(class_index[find(child)]
                                    for child in node.children)
            children.append(child_positions)
            seen = set()
            for child_position in child_positions:
                if child_position not in seen:
                    seen.add(child_position)
                    users[child_position].append(node_id)
            waiting.append(len(seen))
    return class_list, nodes, owner, children, tiebreak, waiting, users


@dataclass
class ExtractionResult:
    """Result of extraction: one chosen e-node per reachable e-class."""

    egraph: EGraph
    choices: Dict[int, ExtractionChoice] = field(default_factory=dict)

    def choice(self, class_id: int) -> ExtractionChoice:
        """Return the choice for (the canonical class of) ``class_id``."""
        return self.choices[self.egraph.find(class_id)]

    def has_choice(self, class_id: int) -> bool:
        """True if extraction reached ``class_id``."""
        return self.egraph.find(class_id) in self.choices

    def node_of(self, class_id: int) -> ENode:
        """Return the chosen e-node of a class."""
        return self.choice(class_id).node

    def cost_of(self, class_id: int) -> float:
        """Return the extraction cost of a class."""
        return self.choice(class_id).cost

    def reachable_classes(self, roots: Sequence[int]) -> List[int]:
        """Return all classes reachable from ``roots`` through chosen nodes."""
        seen: List[int] = []
        seen_set = set()
        stack = [self.egraph.find(root) for root in roots]
        while stack:
            class_id = stack.pop()
            if class_id in seen_set:
                continue
            seen_set.add(class_id)
            seen.append(class_id)
            node = self.node_of(class_id)
            for child in node.children:
                stack.append(self.egraph.find(child))
        return seen


class TreeCostExtractor:
    """Classic bottom-up extractor minimising an additive tree cost.

    Like :class:`repro.core.extraction.BoolEExtractor`, the fixpoint runs on
    a topological (Kahn) worklist over e-nodes with a node-level dependency
    index instead of repeated full passes over every class: an e-node is
    evaluated once all its child classes have a choice, and an improved
    class re-evaluates only the e-nodes that reference it.  The fixpoint it
    reaches is identical to the old repeated-full-pass loop (kept as
    ``repro.core.extraction_reference.reference_tree_extract`` and
    property-tested against it).
    """

    def __init__(self, cost_function: Optional[CostFunction] = None) -> None:
        self.cost_function = cost_function or default_cost

    def extract(self, egraph: EGraph,
                roots: Optional[Sequence[int]] = None) -> ExtractionResult:
        """Compute the minimum-cost representative for every e-class.

        ``roots`` is accepted for interface parity with the DAG extractor but
        the computation is global (costs are per-class).
        """
        egraph.rebuild()
        result = ExtractionResult(egraph=egraph)
        cost_function = self.cost_function

        (class_list, nodes, owner, children, tiebreak, waiting,
         users) = worklist_tables(egraph)

        best_cost: List[float] = [0.0] * len(class_list)
        choice: List[int] = [-1] * len(class_list)

        queue = deque(node_id for node_id in range(len(nodes))
                      if not waiting[node_id])
        queued = bytearray(len(nodes))
        while queue:
            node_id = queue.popleft()
            queued[node_id] = 0
            cost = cost_function(nodes[node_id],
                                 [best_cost[child_position]
                                  for child_position in children[node_id]])
            class_position = owner[node_id]
            current = choice[class_position]
            if current < 0:
                better = True
            elif cost < best_cost[class_position] - 1e-12:
                better = True
            elif cost <= best_cost[class_position]:
                # Equal-or-lower cost: break the tie deterministically
                # rather than keeping whichever node evaluated first.  The
                # band must not admit cost increases — an epsilon-above
                # acceptance would let three nodes a few ulps apart beat
                # each other cyclically and spin the fixpoint forever;
                # requiring cost <= best keeps (cost, tiebreak) strictly
                # decreasing, so the loop terminates.
                better = tiebreak[node_id] < tiebreak[current]
            else:
                better = False
            if not better:
                continue
            propagate = current < 0 or cost != best_cost[class_position]
            best_cost[class_position] = cost
            choice[class_position] = node_id
            if current < 0:
                for user in users[class_position]:
                    remaining = waiting[user] - 1
                    waiting[user] = remaining
                    if not remaining and not queued[user]:
                        queued[user] = 1
                        queue.append(user)
            elif propagate:
                for user in users[class_position]:
                    if not waiting[user] and not queued[user]:
                        queued[user] = 1
                        queue.append(user)

        choices = result.choices
        for class_position, class_id in enumerate(class_list):
            node_id = choice[class_position]
            if node_id >= 0:
                choices[class_id] = ExtractionChoice(
                    cost=best_cost[class_position], node=nodes[node_id])
        return result


def expr_of(result: ExtractionResult, class_id: int, _depth: int = 0):
    """Materialise the extracted expression of ``class_id`` as nested tuples.

    Variables become their name string, constants become booleans, and
    operator nodes become ``(op, child_expr, ...)`` tuples.  Shared structure
    is duplicated (tree view); use :meth:`ExtractionResult.reachable_classes`
    for DAG-aware processing.
    """
    node = result.node_of(class_id)
    if node.op == Op.VAR:
        return node.payload
    if node.op == Op.CONST:
        return bool(node.payload)
    return tuple([node.op] + [expr_of(result, child) for child in node.children])


def count_ops(result: ExtractionResult, roots: Sequence[int]) -> Dict[str, int]:
    """Count chosen operators over the DAG reachable from ``roots``."""
    counts: Dict[str, int] = {}
    for class_id in result.reachable_classes(roots):
        op = result.node_of(class_id).op
        counts[op] = counts.get(op, 0) + 1
    return counts
