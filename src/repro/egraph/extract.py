"""Generic e-graph extraction: pick one representative e-node per e-class.

Two extractors are provided here:

* :class:`TreeCostExtractor` — the classic egg-style bottom-up extractor with
  an additive scalar cost per operator (tree cost, shared sub-expressions are
  counted once per use).
* helpers to materialise the chosen representatives into ordinary nested
  expressions and to count operators.

The BoolE-specific DAG extractor that maximises the number of exact full
adders lives in :mod:`repro.core.extraction`; it reuses the utilities here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .egraph import EGraph
from .enode import ENode, Op

__all__ = [
    "CostFunction",
    "ExtractionChoice",
    "ExtractionResult",
    "TreeCostExtractor",
    "DEFAULT_OP_COSTS",
    "default_cost",
    "node_tiebreak_key",
    "expr_of",
    "count_ops",
]

CostFunction = Callable[[ENode, Sequence[float]], float]

#: Default per-operator costs used by the tree extractor.  Structural
#: operators that BoolE wants to surface (FA, XOR3, MAJ) are slightly cheaper
#: than re-expressing them through AND/NOT gates.
DEFAULT_OP_COSTS: Dict[str, float] = {
    Op.VAR: 0.0,
    Op.CONST: 0.0,
    Op.NOT: 0.25,
    Op.AND: 1.0,
    Op.OR: 1.0,
    Op.NAND: 1.0,
    Op.NOR: 1.0,
    Op.XOR: 1.0,
    Op.XNOR: 1.0,
    Op.XOR3: 1.5,
    Op.MAJ: 1.5,
    Op.FA: 0.5,
    Op.HA: 0.5,
    Op.FST: 0.0,
    Op.SND: 0.0,
}


def default_cost(node: ENode, child_costs: Sequence[float]) -> float:
    """Additive cost: per-op weight plus the cost of the chosen children."""
    return DEFAULT_OP_COSTS.get(node.op, 1.0) + sum(child_costs)


@dataclass
class ExtractionChoice:
    """The selected e-node and cost for one e-class."""

    cost: float
    node: ENode


def node_tiebreak_key(egraph: EGraph, node: ENode):
    """Deterministic order among equal-cost extraction candidates.

    Compares by operator name, then the children's stable insertion seqs,
    then the payload rendered as text.  Breaking cost ties with this key
    (instead of keeping whichever node iterated first) makes extracted
    netlists identical across runs and engines.
    """
    return (node.op, tuple(egraph.seq(child) for child in node.children),
            str(node.payload))


@dataclass
class ExtractionResult:
    """Result of extraction: one chosen e-node per reachable e-class."""

    egraph: EGraph
    choices: Dict[int, ExtractionChoice] = field(default_factory=dict)

    def choice(self, class_id: int) -> ExtractionChoice:
        """Return the choice for (the canonical class of) ``class_id``."""
        return self.choices[self.egraph.find(class_id)]

    def has_choice(self, class_id: int) -> bool:
        """True if extraction reached ``class_id``."""
        return self.egraph.find(class_id) in self.choices

    def node_of(self, class_id: int) -> ENode:
        """Return the chosen e-node of a class."""
        return self.choice(class_id).node

    def cost_of(self, class_id: int) -> float:
        """Return the extraction cost of a class."""
        return self.choice(class_id).cost

    def reachable_classes(self, roots: Sequence[int]) -> List[int]:
        """Return all classes reachable from ``roots`` through chosen nodes."""
        seen: List[int] = []
        seen_set = set()
        stack = [self.egraph.find(root) for root in roots]
        while stack:
            class_id = stack.pop()
            if class_id in seen_set:
                continue
            seen_set.add(class_id)
            seen.append(class_id)
            node = self.node_of(class_id)
            for child in node.children:
                stack.append(self.egraph.find(child))
        return seen


class TreeCostExtractor:
    """Classic bottom-up extractor minimising an additive tree cost."""

    def __init__(self, cost_function: Optional[CostFunction] = None) -> None:
        self.cost_function = cost_function or default_cost

    def extract(self, egraph: EGraph,
                roots: Optional[Sequence[int]] = None) -> ExtractionResult:
        """Compute the minimum-cost representative for every e-class.

        ``roots`` is accepted for interface parity with the DAG extractor but
        the computation is global (costs are per-class).
        """
        egraph.rebuild()
        result = ExtractionResult(egraph=egraph)
        choices = result.choices

        changed = True
        while changed:
            changed = False
            for eclass in egraph.classes():
                class_id = egraph.find(eclass.id)
                best = choices.get(class_id)
                for node in egraph.enodes(class_id):
                    child_choices = []
                    feasible = True
                    for child in node.children:
                        child_choice = choices.get(egraph.find(child))
                        if child_choice is None:
                            feasible = False
                            break
                        child_choices.append(child_choice.cost)
                    if not feasible:
                        continue
                    cost = self.cost_function(node, child_choices)
                    better = best is None or cost < best.cost - 1e-12
                    if not better and best is not None and cost <= best.cost:
                        # Equal-or-lower cost: break the tie deterministically
                        # rather than keeping whichever node iterated first.
                        # The band must not admit cost increases — an
                        # epsilon-above acceptance would let three nodes a
                        # few ulps apart beat each other cyclically and spin
                        # the fixpoint loop forever; requiring
                        # cost <= best.cost keeps (cost, tiebreak) strictly
                        # decreasing, so the loop terminates.
                        better = (node_tiebreak_key(egraph, node)
                                  < node_tiebreak_key(egraph, best.node))
                    if better:
                        best = ExtractionChoice(cost=cost, node=node)
                        choices[class_id] = best
                        changed = True
        return result


def expr_of(result: ExtractionResult, class_id: int, _depth: int = 0):
    """Materialise the extracted expression of ``class_id`` as nested tuples.

    Variables become their name string, constants become booleans, and
    operator nodes become ``(op, child_expr, ...)`` tuples.  Shared structure
    is duplicated (tree view); use :meth:`ExtractionResult.reachable_classes`
    for DAG-aware processing.
    """
    node = result.node_of(class_id)
    if node.op == Op.VAR:
        return node.payload
    if node.op == Op.CONST:
        return bool(node.payload)
    return tuple([node.op] + [expr_of(result, child) for child in node.children])


def count_ops(result: ExtractionResult, roots: Sequence[int]) -> Dict[str, int]:
    """Count chosen operators over the DAG reachable from ``roots``."""
    counts: Dict[str, int] = {}
    for class_id in result.reachable_classes(roots):
        op = result.node_of(class_id).op
        counts[op] = counts.get(op, 0) + 1
    return counts
