"""The e-graph data structure: hash-consed e-nodes grouped into e-classes.

This is a from-scratch Python implementation of the data structure described
in the egg paper (Willsey et al., POPL 2021), providing the operations BoolE
needs: insertion with hash-consing, union, deferred rebuilding (congruence
closure), per-operator indexing for e-matching, and pruning helpers.

Two structures are maintained incrementally to support delta e-matching
(see ``docs/performance.md``):

* an **operator index** mapping each operator to the set of e-class ids that
  have ever contained an e-node with that operator.  Entries may be stale
  (classes merge away); they are canonicalised lazily on read, which keeps
  ``add``/``union`` O(1) while queries stay sound over-approximations.
* a **dirty set** of e-classes touched by ``add``/``union`` (and therefore by
  congruence repair) since the last :meth:`take_dirty`.  Rewrite drivers use
  it to re-match rules only against the changed frontier of the e-graph.

Determinism: every e-class carries a monotone **insertion sequence id** that
survives unions (the merged class keeps the smaller of the two seqs), and
every collection handed out for iteration — :meth:`enodes`,
:meth:`class_ids`, :meth:`classes`, :meth:`take_dirty`, :meth:`peek_dirty` —
is sorted by that seq (e-nodes by a structural key).  Python randomises
``str`` hashing per process (``PYTHONHASHSEED``), so anything that iterates
a set of e-nodes in raw hash order would make saturation results depend on
the seed; sorting at the hand-out points makes the whole saturation
pipeline a pure function of its input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from .enode import ENode, Op
from .unionfind import UnionFind

__all__ = ["EClass", "EGraph", "enode_sort_key"]


def enode_sort_key(node: ENode) -> Tuple[str, Tuple[int, ...], str]:
    """A total, hash-independent order over e-nodes.

    Orders by operator name, then child class ids, then payload rendered as
    text (payloads mix ``str``/``bool`` so they cannot be compared directly).
    Used everywhere a set of e-nodes is handed out for iteration.
    """
    return (node.op, node.children, str(node.payload))


@dataclass
class EClass:
    """An equivalence class of e-nodes.

    Attributes:
        id: canonical id of the class (kept in sync by the e-graph).
        nodes: the e-nodes belonging to this class (children may be stale
            between rebuilds; they are canonicalised lazily).
        parents: list of ``(parent_enode, parent_class_id)`` pairs used for
            congruence repair during rebuilding.
    """

    id: int
    nodes: Set[ENode] = field(default_factory=set)
    parents: List[Tuple[ENode, int]] = field(default_factory=list)


class EGraph:
    """A congruence-closed e-graph over :class:`~repro.egraph.enode.ENode`.

    The public API mirrors egg: :meth:`add`, :meth:`union`, :meth:`rebuild`,
    :meth:`find`, plus convenience constructors for Boolean terms.
    """

    #: Engine tag surfaced in runner reports and service stats.  The dense
    #: struct-of-arrays engine (:class:`repro.egraph.dense.DenseEGraph`)
    #: overrides this with ``"dense"``.
    engine = "python"

    def __init__(self) -> None:
        self._union_find = UnionFind()
        #: E-nodes scanned by the e-matcher (in-memory observability only;
        #: never serialized).  Incremented by the pattern matcher, read by
        #: the runner to report an effective e-matching rate.
        self.match_ops = 0
        self._classes: Dict[int, EClass] = {}
        self._hashcons: Dict[ENode, int] = {}
        self._pending: List[int] = []
        self._clean = True
        self._op_classes: Dict[str, Set[int]] = {}
        self._dirty: Set[int] = set()
        self._enode_cache: Dict[int, List[ENode]] = {}
        # Seq-sorted canonical class ids; rebuilt lazily after mutations so
        # the per-call cost of class_ids()/classes() stays O(n), not
        # O(n log n) (extraction fixpoint loops call them every pass).
        self._class_order: Optional[List[int]] = None
        # Canonical class id -> insertion sequence id.  Seqs are allocated
        # monotonically at ``add`` time and survive unions: the surviving
        # class keeps the smaller seq, giving a stable total order over
        # classes that both engines (full-scan and delta) agree on.
        self._seq: Dict[int, int] = {}
        # Cached num_canonical_nodes(); invalidated with the e-node cache.
        self._num_canonical: Optional[int] = None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        """Number of (canonical) e-classes."""
        return len(self._classes)

    @property
    def num_nodes(self) -> int:
        """Total number of stored e-nodes across all classes.

        Between rebuilds this may count *stale duplicates* — nodes that
        differ only in not-yet-canonicalised children; use
        :meth:`num_canonical_nodes` for a representation-independent count.
        """
        return sum(len(cls.nodes) for cls in self._classes.values())

    def num_canonical_nodes(self) -> int:
        """Number of distinct e-nodes after canonicalising children.

        Unlike :attr:`num_nodes` this is invariant under the merge history
        that produced the e-graph, so two saturation engines reaching the
        same e-graph agree on it exactly.  The count is cached until the
        next mutation (it shares the e-node cache's invalidation), so
        repeated calls between rewrites are O(1).
        """
        count = self._num_canonical
        if count is None:
            count = self._num_canonical = sum(
                len(self.enodes(class_id)) for class_id in self._classes)
        return count

    @property
    def is_clean(self) -> bool:
        """True when the congruence invariant holds (no pending unions)."""
        return self._clean

    def find(self, class_id: int) -> int:
        """Return the canonical id of an e-class."""
        return self._union_find.find(class_id)

    def seq(self, class_id: int) -> int:
        """Stable sort key of an e-class: its insertion sequence id.

        Seqs are assigned monotonically on insertion and survive
        canonicalisation — when two classes merge, the surviving class keeps
        the smaller seq.  Sorting by seq therefore gives the same relative
        order before and after any series of unions.
        """
        return self._seq[self.find(class_id)]

    def sorted_by_seq(self, ids: Iterable[int]) -> List[int]:
        """Sort **canonical** class ids by their insertion seq.

        The ids must be canonical (stale ids raise ``KeyError``); this keeps
        the hot path a plain C-level dict lookup per element.
        """
        return sorted(ids, key=self._seq.__getitem__)

    def _ordered_class_ids(self) -> List[int]:
        order = self._class_order
        if order is None:
            order = self._class_order = self.sorted_by_seq(self._classes.keys())
        return order

    def classes(self) -> Iterator[EClass]:
        """Iterate over the canonical e-classes in stable (seq) order.

        The snapshot is taken eagerly so callers that mutate the e-graph
        mid-iteration see the classes as they were when iteration started.
        """
        classes = self._classes
        return iter([classes[class_id]
                     for class_id in self._ordered_class_ids()])

    def eclass(self, class_id: int) -> EClass:
        """Return the canonical :class:`EClass` containing ``class_id``."""
        return self._classes[self.find(class_id)]

    def enodes(self, class_id: int) -> List[ENode]:
        """Return the canonicalised e-nodes of a class in stable order.

        The list is sorted by :func:`enode_sort_key` so iteration order is
        independent of ``PYTHONHASHSEED``, and cached until the next mutation
        (this is the e-matching hot path); callers must not modify it.
        """
        root = self.find(class_id)
        cached = self._enode_cache.get(root)
        if cached is None:
            # The stored set may hold stale duplicates (same node reached
            # through different pre-merge children); canonicalising into a
            # set first merges them so matching never sees duplicates.
            cached = sorted({node.canonicalize(self.find)
                             for node in self._classes[root].nodes},
                            key=enode_sort_key)
            self._enode_cache[root] = cached
        return cached

    def _invalidate_enode_cache(self) -> None:
        if self._enode_cache:
            self._enode_cache.clear()
        self._class_order = None
        self._num_canonical = None

    def __contains__(self, node: ENode) -> bool:
        return node.canonicalize(self.find) in self._hashcons

    def lookup(self, node: ENode) -> Optional[int]:
        """Return the class id of ``node`` if it is already present."""
        canonical = node.canonicalize(self.find)
        found = self._hashcons.get(canonical)
        return None if found is None else self.find(found)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, node: ENode) -> int:
        """Insert an e-node and return its (canonical) e-class id."""
        canonical = node.canonicalize(self.find)
        existing = self._hashcons.get(canonical)
        if existing is not None:
            return self.find(existing)
        class_id = self._union_find.make_set()
        eclass = EClass(id=class_id)
        eclass.nodes.add(canonical)
        self._classes[class_id] = eclass
        self._seq[class_id] = class_id  # make_set ids are already monotone
        self._hashcons[canonical] = class_id
        # ``canonical.children`` are already canonical ids (canonicalize maps
        # every child through ``find``), so they index ``_classes`` directly.
        for child in canonical.children:
            self._classes[child].parents.append((canonical, class_id))
        self._op_classes.setdefault(canonical.op, set()).add(class_id)
        self._dirty.add(class_id)
        self._invalidate_enode_cache()
        return class_id

    def add_leaf(self, op: str, payload: Hashable) -> int:
        """Insert a leaf node (variable or constant)."""
        return self.add(ENode(op, (), payload))

    def var(self, name: str) -> int:
        """Insert (or look up) the variable ``name``."""
        return self.add_leaf(Op.VAR, name)

    def const(self, value: bool) -> int:
        """Insert (or look up) a Boolean constant."""
        return self.add_leaf(Op.CONST, bool(value))

    def add_term(self, op: str, *children: int) -> int:
        """Insert an operator node over existing class ids."""
        return self.add(ENode(op, tuple(children)))

    def add_expr(self, expr) -> int:
        """Insert a nested tuple expression.

        ``expr`` is either a string (variable name), a bool/int constant, or a
        tuple ``(op, child_expr...)``.  Returns the e-class id of the root.
        """
        if isinstance(expr, bool):
            return self.const(expr)
        if isinstance(expr, int):
            return self.const(bool(expr))
        if isinstance(expr, str):
            return self.var(expr)
        if isinstance(expr, tuple) and expr:
            op = expr[0]
            children = [self.add_expr(child) for child in expr[1:]]
            return self.add_term(op, *children)
        raise TypeError(f"cannot interpret expression {expr!r}")

    # ------------------------------------------------------------------
    # Union and rebuilding
    # ------------------------------------------------------------------
    def union(self, a: int, b: int) -> bool:
        """Assert that classes ``a`` and ``b`` are equivalent.

        Returns True if the e-graph changed (the classes were distinct).
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        # Keep the class with more parents as the leader to move less data.
        if len(self._classes[root_a].parents) < len(self._classes[root_b].parents):
            root_a, root_b = root_b, root_a
        self._union_find.union(root_a, root_b)
        class_a = self._classes[root_a]
        class_b = self._classes.pop(root_b)
        class_a.nodes.update(class_b.nodes)
        class_a.parents.extend(class_b.parents)
        # The survivor keeps the smaller insertion seq so the stable order
        # is insensitive to which id the leader heuristic picked.
        seq_b = self._seq.pop(root_b)
        if seq_b < self._seq[root_a]:
            self._seq[root_a] = seq_b
        self._pending.append(root_a)
        self._clean = False
        self._dirty.add(root_a)
        self._invalidate_enode_cache()
        return True

    def rebuild(self) -> int:
        """Restore the congruence invariant; returns the number of repairs."""
        repairs = 0
        while self._pending:
            todo = {self.find(class_id) for class_id in self._pending}
            self._pending.clear()
            for class_id in todo:
                repairs += self._repair(class_id)
        self._clean = True
        return repairs

    def _repair(self, class_id: int) -> int:
        class_id = self.find(class_id)
        eclass = self._classes.get(class_id)
        if eclass is None:
            return 0
        repairs = 0

        # Re-canonicalise the parents and detect congruent duplicates.
        seen: Dict[ENode, int] = {}
        new_parents: List[Tuple[ENode, int]] = []
        for parent_node, parent_class in eclass.parents:
            canonical = parent_node.canonicalize(self.find)
            stale = self._hashcons.pop(parent_node, None)
            if stale is not None and parent_node != canonical:
                # keep hashcons keyed by canonical form
                pass
            existing = seen.get(canonical)
            parent_root = self.find(parent_class)
            if existing is not None:
                if self.find(existing) != parent_root:
                    self.union(existing, parent_root)
                    repairs += 1
                parent_root = self.find(existing)
            else:
                seen[canonical] = parent_root
            previous = self._hashcons.get(canonical)
            if previous is not None and self.find(previous) != parent_root:
                self.union(previous, parent_root)
                repairs += 1
                parent_root = self.find(previous)
            self._hashcons[canonical] = parent_root
            new_parents.append((canonical, parent_root))

        root = self.find(class_id)
        current = self._classes.get(root)
        if current is None:
            return repairs
        if root == class_id:
            current.parents = new_parents
        else:
            # The class was merged away during repair (self-referential
            # union); its parents were already moved by ``union``.
            current.parents.extend(new_parents)

        # Canonicalise the nodes stored in the (possibly merged) class.
        current.nodes = {node.canonicalize(self.find) for node in current.nodes}
        return repairs

    # ------------------------------------------------------------------
    # Indexing and maintenance helpers
    # ------------------------------------------------------------------
    def class_ids(self) -> List[int]:
        """Return the canonical class ids in stable (seq) order."""
        return list(self._ordered_class_ids())

    def candidate_classes(self, op: str) -> Set[int]:
        """Canonical ids of every e-class that may contain an ``op`` e-node.

        The persistent operator index is a sound over-approximation:
        classes are never missing, but a class may no longer hold the
        operator after pruning.  Stale ids left behind by unions are
        compacted on read.  Callers must treat the result as read-only, and
        must not iterate it directly for matching — order it first with
        :meth:`sorted_by_seq` (``MatchPlan.candidate_roots`` does this) so
        match order is deterministic.
        """
        ids = self._op_classes.get(op)
        if not ids:
            return set()
        canonical = {self.find(class_id) for class_id in ids}
        if len(canonical) != len(ids):
            self._op_classes[op] = set(canonical)
        return canonical

    def parent_classes(self, class_id: int) -> Set[int]:
        """Canonical ids of the classes whose e-nodes use ``class_id`` as a child."""
        eclass = self._classes.get(self.find(class_id))
        if eclass is None:
            return set()
        return {self.find(parent_class) for _node, parent_class in eclass.parents}

    def peek_dirty(self) -> List[int]:
        """Return the current dirty classes (canonical, seq-sorted) without
        clearing them."""
        return self.sorted_by_seq({self.find(class_id)
                                   for class_id in self._dirty})

    def take_dirty(self) -> List[int]:
        """Return and clear the classes touched since the last call.

        A class is *touched* when a new e-node is inserted into it or when it
        absorbs another class through :meth:`union` (including the unions
        triggered by congruence repair during :meth:`rebuild`).  The returned
        ids are canonical with respect to the current union-find state and
        sorted by insertion seq (deterministic iteration order).
        """
        dirty = {self.find(class_id) for class_id in self._dirty}
        self._dirty.clear()
        return self.sorted_by_seq(dirty)

    def prune_duplicates(self, ops: Iterable[str]) -> int:
        """Drop redundant e-nodes that differ only by child permutation.

        For commutative/symmetric operators (the paper prunes ``XOR``, ``MAJ``
        and ``FA`` variants produced by commutativity) only one representative
        per multiset of children is kept inside each e-class.  Returns the
        number of removed e-nodes.
        """
        ops = set(ops)
        removed = 0
        self._invalidate_enode_cache()
        for eclass in self._classes.values():
            kept: Dict[Tuple, ENode] = {}
            new_nodes: Set[ENode] = set()
            # Canonicalise before sorting so the surviving representative of
            # each permutation group does not depend on set iteration (hash)
            # order or on stale child ids.
            for canonical in sorted((node.canonicalize(self.find)
                                     for node in eclass.nodes),
                                    key=enode_sort_key):
                if canonical.op in ops:
                    key = (canonical.op, tuple(sorted(canonical.children)),
                           canonical.payload)
                    if key in kept:
                        removed += 1
                        continue
                    kept[key] = canonical
                new_nodes.add(canonical)
            eclass.nodes = new_nodes
        return removed

    def total_size(self) -> Tuple[int, int]:
        """Return ``(num_classes, num_nodes)``."""
        return self.num_classes, self.num_nodes

    # ------------------------------------------------------------------
    # Snapshot support (repro.store)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Return the complete mutable state as plain Python containers.

        Everything a bit-identical restore needs is included: the union-find
        parent array (exported fully path-compressed — see
        :meth:`~repro.egraph.unionfind.UnionFind.canonical_list` — so the
        bytes depend only on the unions performed, not on which searches
        compressed which paths), the per-class node sets and parent lists,
        the hashcons, pending repairs, the dirty set and the insertion seqs.
        The operator index and the e-node/order caches are *derived* state
        and are rebuilt by :meth:`from_state`.

        Collections that are sets in memory are handed out sorted so the
        exported state (and any file written from it) is independent of
        ``PYTHONHASHSEED``.  The wire encoding lives in
        :mod:`repro.store.codec`; this method only detaches the state from
        the live object (nodes are shared — :class:`ENode` is immutable).
        """
        classes = {}
        for class_id in sorted(self._classes):
            eclass = self._classes[class_id]
            classes[class_id] = (
                sorted(eclass.nodes, key=enode_sort_key),
                list(eclass.parents),
            )
        return {
            "parents_array": self._union_find.canonical_list(),
            "classes": classes,
            "hashcons": dict(self._hashcons),
            "pending": list(self._pending),
            "clean": self._clean,
            "dirty": sorted(self._dirty),
            "seq": dict(self._seq),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "EGraph":
        """Rebuild an e-graph from :meth:`export_state` output.

        The operator index is repopulated from the stored class contents
        (every class that holds an ``op`` node is registered for ``op``,
        which keeps :meth:`candidate_classes` a sound over-approximation)
        and the e-node/order caches start cold.
        """
        egraph = cls()
        egraph._union_find = UnionFind.from_list(state["parents_array"])
        for class_id, (nodes, parents) in state["classes"].items():
            eclass = EClass(id=class_id, nodes=set(nodes),
                            parents=list(parents))
            egraph._classes[class_id] = eclass
            for node in eclass.nodes:
                egraph._op_classes.setdefault(node.op, set()).add(class_id)
        egraph._hashcons = dict(state["hashcons"])
        egraph._pending = list(state["pending"])
        egraph._clean = bool(state["clean"])
        egraph._dirty = set(state["dirty"])
        egraph._seq = dict(state["seq"])
        return egraph

    def dump(self, limit: int = 50) -> str:  # pragma: no cover - debugging aid
        """Return a human-readable dump of the first ``limit`` classes."""
        lines = []
        for count, eclass in enumerate(self._classes.values()):
            if count >= limit:
                lines.append("...")
                break
            nodes = ", ".join(str(node) for node in eclass.nodes)
            lines.append(f"class {eclass.id}: {nodes}")
        return "\n".join(lines)
