"""Union-find (disjoint-set) structure used by the e-graph."""

from __future__ import annotations

from typing import List

__all__ = ["UnionFind"]


class UnionFind:
    """A union-find over dense integer ids with path compression.

    Ids are allocated sequentially with :meth:`make_set`.  Union does not use
    rank/size balancing on purpose: the e-graph needs to control which id
    becomes the canonical representative (egg keeps the first argument as the
    leader so that e-class metadata can be merged deterministically).
    """

    def __init__(self) -> None:
        self._parent: List[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make_set(self) -> int:
        """Allocate a fresh singleton set and return its id."""
        new_id = len(self._parent)
        self._parent.append(new_id)
        return new_id

    def find(self, item: int) -> int:
        """Return the canonical representative of ``item`` (with compression)."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, keep: int, merge: int) -> int:
        """Merge the set of ``merge`` into the set of ``keep``.

        Returns the canonical id (the root of ``keep``).
        """
        keep_root = self.find(keep)
        merge_root = self.find(merge)
        if keep_root != merge_root:
            self._parent[merge_root] = keep_root
        return keep_root

    def in_same_set(self, a: int, b: int) -> bool:
        """Return True if ``a`` and ``b`` are currently equivalent."""
        return self.find(a) == self.find(b)

    # ------------------------------------------------------------------
    # Snapshot support (repro.store)
    # ------------------------------------------------------------------
    def to_list(self) -> List[int]:
        """Return the raw parent array (a copy) for serialization.

        The tree shape (path-compression state) is preserved so a restored
        structure answers every :meth:`find` exactly like the original.
        """
        return list(self._parent)

    def canonical_list(self) -> List[int]:
        """Return the fully path-compressed parent array (a copy).

        Every entry is its root, so the result depends only on the
        partition and the chosen leaders — not on which :meth:`find` calls
        happened to compress which paths.  Snapshots use this form: two
        engines that performed the same unions export identical arrays even
        though their search layers issued different ``find`` sequences.
        (The live array is compressed as a side effect, which is
        unobservable: compression never changes any ``find`` answer.)
        """
        find = self.find
        return [find(item) for item in range(len(self._parent))]

    @classmethod
    def from_list(cls, parents: List[int]) -> "UnionFind":
        """Rebuild a union-find from a parent array produced by :meth:`to_list`."""
        instance = cls()
        instance._parent = list(parents)
        return instance
