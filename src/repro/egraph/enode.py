"""E-node representation and the Boolean operator vocabulary used by BoolE.

An e-node is an operator applied to an ordered tuple of e-class ids (the
labelling function ``lambda`` of the paper's e-graph definition).  Leaf
operators carry a payload (a variable name or a constant value) and have no
children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

__all__ = ["ENode", "Op", "OPERATOR_ARITIES", "is_leaf_op"]


class Op:
    """Canonical operator names used across the BoolE reproduction."""

    VAR = "var"      # leaf: named Boolean variable
    CONST = "const"  # leaf: Boolean constant (payload True/False)
    NOT = "~"
    AND = "&"
    OR = "|"
    XOR = "^"
    XNOR = "xnor"
    NAND = "nand"
    NOR = "nor"
    XOR3 = "xor3"
    MAJ = "maj"
    FA = "fa"        # multi-output full adder over (a, b, c)
    FST = "fst"      # projection: carry output of an FA tuple
    SND = "snd"      # projection: sum output of an FA tuple
    HA = "ha"        # multi-output half adder over (a, b) (extension)


#: Expected operator arities; used for validation when building e-nodes.
OPERATOR_ARITIES = {
    Op.VAR: 0,
    Op.CONST: 0,
    Op.NOT: 1,
    Op.AND: 2,
    Op.OR: 2,
    Op.XOR: 2,
    Op.XNOR: 2,
    Op.NAND: 2,
    Op.NOR: 2,
    Op.XOR3: 3,
    Op.MAJ: 3,
    Op.FA: 3,
    Op.HA: 2,
    Op.FST: 1,
    Op.SND: 1,
}


def is_leaf_op(op: str) -> bool:
    """Return True for operators that carry a payload and take no children."""
    return op in (Op.VAR, Op.CONST)


@dataclass(frozen=True)
class ENode:
    """An operator applied to child e-classes.

    Attributes:
        op: operator name (one of :class:`Op` or any user-defined symbol).
        children: ordered tuple of child e-class ids.
        payload: leaf payload (variable name or constant value), None for
            internal operators.
    """

    op: str
    children: Tuple[int, ...] = ()
    payload: Optional[Hashable] = None

    def __post_init__(self) -> None:
        expected = OPERATOR_ARITIES.get(self.op)
        if expected is not None and expected != len(self.children):
            raise ValueError(
                f"operator {self.op!r} expects {expected} children, "
                f"got {len(self.children)}")

    def canonicalize(self, find) -> "ENode":
        """Return a copy whose children are canonical e-class ids."""
        if not self.children:
            return self
        new_children = tuple(find(child) for child in self.children)
        if new_children == self.children:
            return self
        return ENode(self.op, new_children, self.payload)

    def map_children(self, func) -> "ENode":
        """Return a copy with ``func`` applied to every child id."""
        if not self.children:
            return self
        return ENode(self.op, tuple(func(child) for child in self.children),
                     self.payload)

    def __str__(self) -> str:
        if self.op == Op.VAR:
            return str(self.payload)
        if self.op == Op.CONST:
            return "1" if self.payload else "0"
        inner = " ".join(str(child) for child in self.children)
        return f"({self.op} {inner})"
