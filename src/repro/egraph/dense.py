"""Dense struct-of-arrays e-graph engine with batched e-matching.

:class:`DenseEGraph` implements the same public API (and the same
*observable semantics*, down to snapshot bytes) as the object-graph
:class:`~repro.egraph.egraph.EGraph`, but stores everything as flat integer
structures:

* the union-find is a plain ``List[int]`` parent array with iterative path
  compression;
* operator names and leaf payloads are interned to small integer ids;
* e-nodes are interned rows of a struct-of-arrays node table — an op-code
  column, a payload-id column, and the children flattened into one int
  buffer with CSR-style offsets.  A given ``(op, children, payload)`` shape
  is interned exactly once, so node identity is integer identity and the
  hashcons is a plain ``Dict[int, int]``;
* per-class node sets and parent lists hold node *ids*, not node objects.

E-matching runs as **batched column scans**: a pattern is compiled once
into a linear program of ``expand`` / ``leaf`` / ``check`` steps over slot
columns, and each step sweeps the whole table of partial matches at C speed
(list comprehensions over int tuples) instead of recursing per e-node with
per-step ``dict`` copies.  Because the steps execute in pattern pre-order
and every expansion preserves row order, the match stream is *identical* —
match for match — to the recursive reference matcher, so truncation by the
back-off scheduler's budget cuts the same suffix on both engines.

Bit-identity contract
---------------------

The object-graph engine stays the property-test oracle (the
``extraction_reference.py`` freeze is the template): for any input,
saturating with either engine must produce byte-identical snapshot
artifacts.  That works because this class mirrors ``EGraph``'s mutation
logic *operation for operation* — hashcons insertion/eviction order,
parent-list append order, the rebuild work-set iteration, leader selection
by parent-list length — and :meth:`export_state` decodes the interned ids
back into the exact structures ``EGraph.export_state`` produces (the
union-find array is exported fully path-compressed by both engines, so
search-layer differences cannot leak into snapshots).

Cross-engine round-trips are therefore free: ``DenseEGraph.from_state(
python_graph.export_state())`` and the reverse direction both preserve all
observable state, which is how checkpoints written by one engine resume
under the other.
"""

from __future__ import annotations

from operator import itemgetter
from typing import (
    AbstractSet,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from .egraph import EGraph, enode_sort_key
from .enode import ENode, Op, OPERATOR_ARITIES
from .pattern import (
    _MAX_PIVOT_DEPTH,
    _PIVOT_ADVANTAGE,
    MatchPlan,
    Pattern,
    PatternNode,
    PatternVar,
    Subst,
)

__all__ = ["DenseEGraph", "as_engine", "ENGINES", "DEFAULT_ENGINE"]

#: Recognised values of the ``engine`` option.
ENGINES = ("dense", "python")

#: The default saturation backend.
DEFAULT_ENGINE = "dense"

#: Candidate roots are fed through the batched matcher in chunks of this
#: many classes, so a rule whose budget is exceeded stops matching after
#: the current chunk instead of materialising every match in the e-graph.
_ROOT_CHUNK = 256


class _DenseClass:
    """Per-class storage: node ids and a flat ``[node, class, ...]`` parent
    list.  ``nodes``/``parents`` decode to the object-graph forms so code
    written against :class:`~repro.egraph.egraph.EClass` keeps working."""

    __slots__ = ("id", "node_ids", "parent_pairs", "_graph")

    def __init__(self, class_id: int, graph: "DenseEGraph") -> None:
        self.id = class_id
        self.node_ids: Set[int] = set()
        self.parent_pairs: List[int] = []
        self._graph = graph

    @property
    def nodes(self) -> Set[ENode]:
        decode = self._graph._decode
        return {decode(node_id) for node_id in self.node_ids}

    @property
    def parents(self) -> List[Tuple[ENode, int]]:
        decode = self._graph._decode
        pairs = self.parent_pairs
        return [(decode(pairs[i]), pairs[i + 1])
                for i in range(0, len(pairs), 2)]


class DenseEGraph:
    """A congruence-closed e-graph over interned integer e-nodes.

    Drop-in replacement for :class:`~repro.egraph.egraph.EGraph`: same
    constructors, same queries, same snapshot format.  See the module
    docstring for the representation and the bit-identity contract.
    """

    engine = "dense"

    def __init__(self) -> None:
        # Union-find over class ids (flat parent array).
        self._uf: List[int] = []
        # Interning tables.  Payload ids are keyed by the payload *value*
        # (dict equality), which reproduces ENode equality exactly —
        # including Python's bool/int unification.
        self._op_names: List[str] = []
        self._op_ids: Dict[str, int] = {}
        self._op_rank: List[int] = []
        self._payloads: List[Hashable] = []
        self._payload_ids: Dict[Hashable, int] = {}
        self._payload_rank: List[int] = []
        # Node table (struct of arrays + CSR children).
        self._node_op: List[int] = []
        self._node_payload: List[int] = []
        self._node_off: List[int] = [0]
        self._node_child: List[int] = []
        self._node_ids: Dict[Tuple[int, ...], int] = {}
        self._node_obj: List[Optional[ENode]] = []
        # Canonicalization memo, valid while ``_epoch`` is unchanged (the
        # epoch advances on every successful union).
        self._node_canon: List[int] = []
        self._canon_stamp: List[int] = []
        self._epoch = 0
        # Mirrors of EGraph's mutable state, in the int domain.
        self._classes: Dict[int, _DenseClass] = {}
        self._hashcons: Dict[int, int] = {}
        self._pending: List[int] = []
        self._clean = True
        self._op_classes: Dict[int, Set[int]] = {}
        self._dirty: Set[int] = set()
        self._seq: Dict[int, int] = {}
        # Derived caches (same invalidation discipline as EGraph).
        self._enode_cache: Dict[int, List[int]] = {}
        self._span_cache: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self._decoded_cache: Dict[int, List[ENode]] = {}
        # (op, arity) -> class -> (child tuples in span order, span
        # length): the expand step's working set, shared across rules.
        # Two levels so the per-row lookup in the hottest loop is an
        # int-keyed get instead of a fresh 3-tuple hash.
        self._tail_cache: Dict[
            Tuple[int, int],
            Dict[int, Tuple[List[Tuple[int, ...]], int]]] = {}
        self._class_order: Optional[List[int]] = None
        self._num_canonical: Optional[int] = None
        # Compiled matcher/builder programs, keyed by ``id(pattern)``.
        # Each entry keeps a strong reference to its pattern, which pins
        # the id for the graph's lifetime (patterns hash recursively, so
        # hashing them on every search would dominate small searches).
        self._match_programs: Dict[int, Tuple[Pattern, List[Tuple],
                                              List[Tuple[str, int]]]] = {}
        self._build_programs: Dict[int, Tuple[Pattern, List[Tuple]]] = {}
        #: E-nodes scanned by the batched matcher (in-memory observability
        #: only; never serialized).
        self.match_ops = 0

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def _intern_op(self, op: str) -> int:
        op_id = self._op_ids.get(op)
        if op_id is None:
            op_id = len(self._op_names)
            self._op_ids[op] = op_id
            self._op_names.append(op)
            # Recompute lexicographic ranks; relative ranks of existing ops
            # never change, so cached per-class sort orders stay valid.
            order = sorted(range(len(self._op_names)),
                           key=self._op_names.__getitem__)
            rank = [0] * len(order)
            for position, index in enumerate(order):
                rank[index] = position
            self._op_rank = rank
        return op_id

    def _intern_payload(self, payload: Hashable) -> int:
        payload_id = self._payload_ids.get(payload)
        if payload_id is None:
            payload_id = len(self._payloads)
            self._payload_ids[payload] = payload_id
            self._payloads.append(payload)
            # Rank by str(payload) — the component enode_sort_key compares —
            # with the insertion index as a deterministic tie-break.
            payloads = self._payloads
            order = sorted(range(len(payloads)),
                           key=lambda index: (str(payloads[index]), index))
            rank = [0] * len(order)
            for position, index in enumerate(order):
                rank[index] = position
            self._payload_rank = rank
        return payload_id

    def _intern_node(self, op_id: int, payload_id: int,
                     children: Tuple[int, ...]) -> int:
        key = (op_id, payload_id) + children
        node_id = self._node_ids.get(key)
        if node_id is None:
            node_id = len(self._node_op)
            self._node_ids[key] = node_id
            self._node_op.append(op_id)
            self._node_payload.append(payload_id)
            self._node_child.extend(children)
            self._node_off.append(len(self._node_child))
            self._node_obj.append(None)
            self._node_canon.append(-1)
            self._canon_stamp.append(-1)
        return node_id

    def _intern_enode(self, node: ENode) -> int:
        """Intern an :class:`ENode` verbatim (children left as given)."""
        return self._intern_node(self._intern_op(node.op),
                                 self._intern_payload(node.payload),
                                 tuple(node.children))

    def _decode(self, node_id: int) -> ENode:
        node = self._node_obj[node_id]
        if node is None:
            offsets = self._node_off
            children = tuple(
                self._node_child[offsets[node_id]:offsets[node_id + 1]])
            node = ENode(self._op_names[self._node_op[node_id]], children,
                         self._payloads[self._node_payload[node_id]])
            self._node_obj[node_id] = node
        return node

    def _canonical(self, node_id: int) -> int:
        """Canonical interned form of a node (children mapped through find).

        Memoized per union epoch: between unions the union-find mapping is
        constant, so each node is re-canonicalised at most once per epoch.
        """
        if self._canon_stamp[node_id] == self._epoch:
            return self._node_canon[node_id]
        offsets = self._node_off
        low, high = offsets[node_id], offsets[node_id + 1]
        if low == high:
            result = node_id
        else:
            buffer = self._node_child
            parent = self._uf
            find = self._find
            changed = False
            children = []
            for index in range(low, high):
                child = buffer[index]
                if parent[child] == child:
                    children.append(child)
                    continue
                children.append(find(child))
                changed = True
            if changed:
                result = self._intern_node(self._node_op[node_id],
                                           self._node_payload[node_id],
                                           tuple(children))
            else:
                result = node_id
        self._canon_stamp[node_id] = self._epoch
        self._node_canon[node_id] = result
        return result

    # ------------------------------------------------------------------
    # Union-find
    # ------------------------------------------------------------------
    def _find(self, item: int) -> int:
        parent = self._uf
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    # ------------------------------------------------------------------
    # Basic queries (API parity with EGraph)
    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return len(self._classes)

    @property
    def num_nodes(self) -> int:
        return sum(len(cls.node_ids) for cls in self._classes.values())

    def num_canonical_nodes(self) -> int:
        count = self._num_canonical
        if count is None:
            count = self._num_canonical = sum(
                len(self._canonical_ids(class_id))
                for class_id in self._classes)
        return count

    @property
    def is_clean(self) -> bool:
        return self._clean

    def find(self, class_id: int) -> int:
        parent = self._uf
        if parent[class_id] == class_id:
            return class_id
        return self._find(class_id)

    def seq(self, class_id: int) -> int:
        return self._seq[self._find(class_id)]

    def sorted_by_seq(self, ids: Iterable[int]) -> List[int]:
        return sorted(ids, key=self._seq.__getitem__)

    def _ordered_class_ids(self) -> List[int]:
        order = self._class_order
        if order is None:
            order = self._class_order = self.sorted_by_seq(self._classes.keys())
        return order

    def classes(self) -> Iterator[_DenseClass]:
        classes = self._classes
        return iter([classes[class_id]
                     for class_id in self._ordered_class_ids()])

    def eclass(self, class_id: int) -> _DenseClass:
        return self._classes[self._find(class_id)]

    def _canonical_ids(self, root: int) -> List[int]:
        """Sorted canonical node ids of a class (the int-domain ``enodes``).

        Sorted by ``(op rank, children, payload rank)``, which realises the
        same total order as :func:`~repro.egraph.egraph.enode_sort_key`
        over the decoded nodes.
        """
        cached = self._enode_cache.get(root)
        if cached is None:
            canonical = self._canonical
            op_rank = self._op_rank
            payload_rank = self._payload_rank
            node_op = self._node_op
            node_payload = self._node_payload
            offsets = self._node_off
            buffer = self._node_child

            def sort_key(node_id: int):
                return (op_rank[node_op[node_id]],
                        buffer[offsets[node_id]:offsets[node_id + 1]],
                        payload_rank[node_payload[node_id]])

            cached = sorted({canonical(node_id)
                             for node_id in self._classes[root].node_ids},
                            key=sort_key)
            self._enode_cache[root] = cached
        return cached

    def _op_spans(self, root: int) -> Dict[int, Tuple[int, int]]:
        """Map op-code -> contiguous ``[lo, hi)`` span in the class's sorted
        canonical node-id list (nodes of one op are adjacent by sort order)."""
        spans = self._span_cache.get(root)
        if spans is None:
            ids = self._canonical_ids(root)
            spans = {}
            node_op = self._node_op
            previous = -1
            start = 0
            for index, node_id in enumerate(ids):
                op_id = node_op[node_id]
                if op_id != previous:
                    if previous >= 0:
                        spans[previous] = (start, index)
                    previous = op_id
                    start = index
            if previous >= 0:
                spans[previous] = (start, len(ids))
            self._span_cache[root] = spans
        return spans

    def enodes(self, class_id: int) -> List[ENode]:
        root = self._find(class_id)
        decoded = self._decoded_cache.get(root)
        if decoded is None:
            decode = self._decode
            decoded = [decode(node_id)
                       for node_id in self._canonical_ids(root)]
            self._decoded_cache[root] = decoded
        return decoded

    def _invalidate_caches(self) -> None:
        if self._enode_cache:
            self._enode_cache.clear()
            self._span_cache.clear()
            self._decoded_cache.clear()
        if self._tail_cache:
            self._tail_cache.clear()
        self._class_order = None
        self._num_canonical = None

    def __contains__(self, node: ENode) -> bool:
        return self.lookup(node) is not None

    def lookup(self, node: ENode) -> Optional[int]:
        op_id = self._op_ids.get(node.op)
        if op_id is None:
            return None
        payload_id = self._payload_ids.get(node.payload)
        if payload_id is None:
            return None
        find = self._find
        key = (op_id, payload_id) + tuple(find(child)
                                          for child in node.children)
        node_id = self._node_ids.get(key)
        if node_id is None:
            return None
        found = self._hashcons.get(node_id)
        return None if found is None else find(found)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, node: ENode) -> int:
        """Insert an e-node and return its (canonical) e-class id."""
        find = self._find
        parent = self._uf
        node_id = self._intern_node(
            self._intern_op(node.op), self._intern_payload(node.payload),
            tuple(child if parent[child] == child else find(child)
                  for child in node.children))
        return self._add_node(node_id)

    def _add_node(self, node_id: int) -> int:
        """Insert an interned node whose children are already canonical."""
        existing = self._hashcons.get(node_id)
        if existing is not None:
            if self._uf[existing] == existing:
                return existing
            return self._find(existing)
        class_id = len(self._uf)
        self._uf.append(class_id)
        eclass = _DenseClass(class_id, self)
        eclass.node_ids.add(node_id)
        self._classes[class_id] = eclass
        self._seq[class_id] = class_id  # fresh ids are already monotone
        self._hashcons[node_id] = class_id
        offsets = self._node_off
        buffer = self._node_child
        classes = self._classes
        for index in range(offsets[node_id], offsets[node_id + 1]):
            pairs = classes[buffer[index]].parent_pairs
            pairs.append(node_id)
            pairs.append(class_id)
        self._op_classes.setdefault(self._node_op[node_id],
                                    set()).add(class_id)
        self._dirty.add(class_id)
        # A fresh node lives in a fresh class: no other class's canonical
        # node list (or op spans) can change, so only the order/count
        # caches go stale — unions do the wholesale invalidation.
        self._class_order = None
        self._num_canonical = None
        return class_id

    def add_leaf(self, op: str, payload: Hashable) -> int:
        return self._add_node(self._intern_node(
            self._intern_op(op), self._intern_payload(payload), ()))

    def var(self, name: str) -> int:
        return self.add_leaf(Op.VAR, name)

    def const(self, value: bool) -> int:
        return self.add_leaf(Op.CONST, bool(value))

    def add_term(self, op: str, *children: int) -> int:
        expected = OPERATOR_ARITIES.get(op)
        if expected is not None and expected != len(children):
            raise ValueError(
                f"operator {op!r} expects {expected} children, "
                f"got {len(children)}")
        find = self._find
        parent = self._uf
        return self._add_node(self._intern_node(
            self._intern_op(op), self._intern_payload(None),
            tuple(child if parent[child] == child else find(child)
                  for child in children)))

    def add_expr(self, expr) -> int:
        if isinstance(expr, bool):
            return self.const(expr)
        if isinstance(expr, int):
            return self.const(bool(expr))
        if isinstance(expr, str):
            return self.var(expr)
        if isinstance(expr, tuple) and expr:
            op = expr[0]
            children = [self.add_expr(child) for child in expr[1:]]
            return self.add_term(op, *children)
        raise TypeError(f"cannot interpret expression {expr!r}")

    # ------------------------------------------------------------------
    # Union and rebuilding
    # ------------------------------------------------------------------
    def union(self, a: int, b: int) -> bool:
        parent = self._uf
        root_a = a if parent[a] == a else self._find(a)
        root_b = b if parent[b] == b else self._find(b)
        if root_a == root_b:
            return False
        classes = self._classes
        class_a = classes[root_a]
        class_b = classes[root_b]
        # Keep the class with more parents as the leader to move less data
        # (same tie-break as EGraph.union, so both engines elect the same
        # leaders and export identical parent arrays).
        if len(class_a.parent_pairs) < len(class_b.parent_pairs):
            root_a, root_b = root_b, root_a
            class_a, class_b = class_b, class_a
        self._uf[root_b] = root_a
        self._epoch += 1
        del classes[root_b]
        class_a.node_ids.update(class_b.node_ids)
        class_a.parent_pairs.extend(class_b.parent_pairs)
        seq = self._seq
        seq_b = seq.pop(root_b)
        if seq_b < seq[root_a]:
            seq[root_a] = seq_b
        self._pending.append(root_a)
        self._clean = False
        self._dirty.add(root_a)
        self._invalidate_caches()
        return True

    def rebuild(self) -> int:
        repairs = 0
        while self._pending:
            todo = {self._find(class_id) for class_id in self._pending}
            self._pending.clear()
            for class_id in todo:
                repairs += self._repair(class_id)
        self._clean = True
        return repairs

    def _repair(self, class_id: int) -> int:
        find = self._find
        class_id = find(class_id)
        eclass = self._classes.get(class_id)
        if eclass is None:
            return 0
        repairs = 0
        canonical_of = self._canonical
        stamps = self._canon_stamp
        canon = self._node_canon
        hashcons = self._hashcons
        seen: Dict[int, int] = {}
        new_pairs: List[int] = []
        pairs = eclass.parent_pairs
        # The live list may grow while we scan it (a congruence union can
        # merge another class into this one); iterate by live length, like
        # the reference engine's ``for ... in eclass.parents`` does.
        index = 0
        while index < len(pairs):
            parent_node = pairs[index]
            parent_class = pairs[index + 1]
            index += 2
            # Inline _canonical's epoch-memo hit (re-read the epoch each
            # time — the unions below bump it).
            if stamps[parent_node] == self._epoch:
                canonical = canon[parent_node]
            else:
                canonical = canonical_of(parent_node)
            hashcons.pop(parent_node, None)
            existing = seen.get(canonical)
            parent_root = find(parent_class)
            if existing is not None:
                if find(existing) != parent_root:
                    self.union(existing, parent_root)
                    repairs += 1
                parent_root = find(existing)
            else:
                seen[canonical] = parent_root
            previous = hashcons.get(canonical)
            if previous is not None and find(previous) != parent_root:
                self.union(previous, parent_root)
                repairs += 1
                parent_root = find(previous)
            hashcons[canonical] = parent_root
            new_pairs.append(canonical)
            new_pairs.append(parent_root)
        root = find(class_id)
        current = self._classes.get(root)
        if current is None:
            return repairs
        if root == class_id:
            current.parent_pairs = new_pairs
        else:
            current.parent_pairs.extend(new_pairs)
        current.node_ids = {canonical_of(node_id)
                            for node_id in current.node_ids}
        return repairs

    # ------------------------------------------------------------------
    # Indexing and maintenance helpers
    # ------------------------------------------------------------------
    def class_ids(self) -> List[int]:
        return list(self._ordered_class_ids())

    def candidate_classes(self, op: str) -> Set[int]:
        op_id = self._op_ids.get(op)
        if op_id is None:
            return set()
        ids = self._op_classes.get(op_id)
        if not ids:
            return set()
        find = self._find
        canonical = {find(class_id) for class_id in ids}
        if len(canonical) != len(ids):
            self._op_classes[op_id] = set(canonical)
        return canonical

    def parent_classes(self, class_id: int) -> Set[int]:
        eclass = self._classes.get(self._find(class_id))
        if eclass is None:
            return set()
        find = self._find
        pairs = eclass.parent_pairs
        return {find(pairs[index]) for index in range(1, len(pairs), 2)}

    def peek_dirty(self) -> List[int]:
        find = self._find
        return self.sorted_by_seq({find(class_id)
                                   for class_id in self._dirty})

    def take_dirty(self) -> List[int]:
        find = self._find
        dirty = {find(class_id) for class_id in self._dirty}
        self._dirty.clear()
        return self.sorted_by_seq(dirty)

    def prune_duplicates(self, ops: Iterable[str]) -> int:
        op_ids = {self._op_ids[op] for op in ops if op in self._op_ids}
        removed = 0
        self._invalidate_caches()
        canonical_of = self._canonical
        node_op = self._node_op
        node_payload = self._node_payload
        offsets = self._node_off
        buffer = self._node_child
        op_rank = self._op_rank
        payload_rank = self._payload_rank

        def sort_key(node_id: int):
            return (op_rank[node_op[node_id]],
                    buffer[offsets[node_id]:offsets[node_id + 1]],
                    payload_rank[node_payload[node_id]])

        for eclass in self._classes.values():
            kept: Dict[Tuple, int] = {}
            new_ids: Set[int] = set()
            # Canonicalise first, keep duplicates in the sort (the oracle
            # counts every stale duplicate of a pruned node as removed).
            for node_id in sorted([canonical_of(node_id)
                                   for node_id in eclass.node_ids],
                                  key=sort_key):
                op_id = node_op[node_id]
                if op_id in op_ids:
                    key = (op_id,
                           tuple(sorted(
                               buffer[offsets[node_id]:offsets[node_id + 1]])),
                           node_payload[node_id])
                    if key in kept:
                        removed += 1
                        continue
                    kept[key] = node_id
                new_ids.add(node_id)
            eclass.node_ids = new_ids
        return removed

    def total_size(self) -> Tuple[int, int]:
        return self.num_classes, self.num_nodes

    # ------------------------------------------------------------------
    # Batched e-matching
    # ------------------------------------------------------------------
    def _compile_match(self, pattern: Pattern
                       ) -> Tuple[List[Tuple], List[Tuple[str, int]]]:
        """Compile a pattern into a pre-order program over row slots.

        Instructions (executed over a table of int-tuple rows):

        * ``("expand", src, op_id, arity, base)`` — for each row, branch on
          every ``op_id`` e-node of arity ``arity`` in class ``row[src]``,
          appending the node's children as slots ``base..base+arity-1``;
        * ``("leaf", src, op_id, payload_id)`` — keep one branch per
          matching leaf e-node in ``row[src]`` (payload compared by id);
        * ``("check", src, bound)`` — keep rows with ``row[src] ==
          row[bound]`` (a repeated pattern variable).

        Slots are allocated in pattern pre-order, so slot index == position
        in the row tuple, and executing the steps in order reproduces the
        recursive matcher's depth-first match order exactly.
        """
        cached = self._match_programs.get(id(pattern))
        if cached is not None:
            return cached[1], cached[2]
        steps: List[Tuple] = []
        var_slots: List[Tuple[str, int]] = []
        bound: Dict[str, int] = {}
        slot_count = 1

        def walk(node: Pattern, slot: int) -> None:
            nonlocal slot_count
            if isinstance(node, PatternVar):
                previous = bound.get(node.name)
                if previous is None:
                    bound[node.name] = slot
                    var_slots.append((node.name, slot))
                else:
                    steps.append(("check", slot, previous))
                return
            op_id = self._intern_op(node.op)
            if node.op in (Op.VAR, Op.CONST):
                steps.append(("leaf", slot, op_id,
                              self._intern_payload(node.payload)))
                return
            base = slot_count
            slot_count += len(node.children)
            steps.append(("expand", slot, op_id, len(node.children), base))
            for position, child in enumerate(node.children):
                walk(child, base + position)

        walk(pattern, 0)
        self._match_programs[id(pattern)] = (pattern, steps, var_slots)
        return steps, var_slots

    def _expand_tails(self, class_id: int, op_id: int, arity: int
                      ) -> Tuple[List[Tuple[int, ...]], int]:
        """Child tuples (in span order) of the class's ``op_id``/``arity``
        nodes, plus the scanned span length — the expand step's memo."""
        spans = self._span_cache.get(class_id)
        if spans is None:
            spans = self._op_spans(class_id)
        span = spans.get(op_id)
        if span is None:
            entry: Tuple[List[Tuple[int, ...]], int] = ([], 0)
        else:
            low, high = span
            offsets = self._node_off
            buffer = self._node_child
            tails = []
            for node_id in self._enode_cache[class_id][low:high]:
                start = offsets[node_id]
                if offsets[node_id + 1] - start == arity:
                    tails.append(tuple(buffer[start:start + arity]))
            entry = (tails, high - low)
        self._tail_cache.setdefault((op_id, arity), {})[class_id] = entry
        return entry

    def _run_match(self, steps: List[Tuple],
                   rows: List[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
        node_payload = self._node_payload
        span_get = self._span_cache.get
        op_spans = self._op_spans
        enode_cache = self._enode_cache
        tail_cache = self._tail_cache
        expand_tails = self._expand_tails
        scanned = 0
        for step in steps:
            kind = step[0]
            if kind == "expand":
                _, src, op_id, arity, _base = step
                sub = tail_cache.get((op_id, arity))
                if sub is None:
                    sub = tail_cache[(op_id, arity)] = {}
                sub_get = sub.get
                new_rows: List[Tuple[int, ...]] = []
                append = new_rows.append
                for row in rows:
                    class_id = row[src]
                    entry = sub_get(class_id)
                    if entry is None:
                        entry = expand_tails(class_id, op_id, arity)
                    tails, span_length = entry
                    scanned += span_length
                    for tail in tails:
                        append(row + tail)
                rows = new_rows
            elif kind == "check":
                _, src, bound = step
                rows = [row for row in rows if row[src] == row[bound]]
            else:  # leaf
                _, src, op_id, payload_id = step
                new_rows = []
                append = new_rows.append
                for row in rows:
                    class_id = row[src]
                    spans = span_get(class_id)
                    if spans is None:
                        spans = op_spans(class_id)
                    span = spans.get(op_id)
                    if span is None:
                        continue
                    low, high = span
                    scanned += high - low
                    for node_id in enode_cache[class_id][low:high]:
                        if node_payload[node_id] == payload_id:
                            append(row)
                rows = new_rows
            if not rows:
                break
        self.match_ops += scanned
        return rows

    def _candidate_roots(self, plan: MatchPlan,
                         restrict: Optional[AbstractSet[int]]) -> List[int]:
        """Mirror of :meth:`MatchPlan.candidate_roots` over this engine."""
        roots: AbstractSet[int] = self.candidate_classes(plan.root_op)
        if not roots:
            return []
        if restrict is not None:
            return self.sorted_by_seq(roots & restrict)
        pivot_classes: Optional[AbstractSet[int]] = None
        pivot_depth = 0
        for op, depth in plan.op_min_depth.items():
            if op == plan.root_op:
                continue
            classes = self.candidate_classes(op)
            if not classes:
                return []
            if (0 < depth <= _MAX_PIVOT_DEPTH
                    and (pivot_classes is None
                         or len(classes) < len(pivot_classes))):
                pivot_classes, pivot_depth = classes, depth
        if (pivot_classes is not None
                and len(pivot_classes) * _PIVOT_ADVANTAGE <= len(roots)):
            ancestors: AbstractSet[int] = pivot_classes
            for _ in range(pivot_depth):
                level: Set[int] = set()
                for class_id in ancestors:
                    level |= self.parent_classes(class_id)
                ancestors = level
            roots = ancestors & roots
        return self.sorted_by_seq(roots)

    def plan_search(self, plan: MatchPlan,
                    restrict: Optional[AbstractSet[int]] = None
                    ) -> Iterator[Tuple[int, Subst]]:
        """Batched drop-in for :meth:`MatchPlan.search` on this engine.

        Yields exactly the ``(root, substitution)`` stream the recursive
        matcher would produce, in the same order; candidate roots are
        processed in chunks so callers that stop consuming (budget
        exceeded) do not pay for the rest of the e-graph.
        """
        pattern = plan.pattern
        if isinstance(pattern, PatternVar):
            classes: Iterable[int] = (self.class_ids() if restrict is None
                                      else self.sorted_by_seq(restrict))
            name = pattern.name
            for class_id in classes:
                yield class_id, {name: class_id}
            return
        steps, var_slots = self._compile_match(pattern)
        roots = self._candidate_roots(plan, restrict)
        run = self._run_match
        if len(var_slots) == 1:
            name0, slot0 = var_slots[0]
            for start in range(0, len(roots), _ROOT_CHUNK):
                seed = [(root,)
                        for root in roots[start:start + _ROOT_CHUNK]]
                for row in run(steps, seed):
                    yield row[0], {name0: row[slot0]}
            return
        names = tuple(name for name, _ in var_slots)
        # itemgetter needs two slots to return a tuple; zero-var (ground)
        # patterns fall back to the comprehension, which yields {}.
        if len(var_slots) < 2:
            for start in range(0, len(roots), _ROOT_CHUNK):
                seed = [(root,)
                        for root in roots[start:start + _ROOT_CHUNK]]
                for row in run(steps, seed):
                    yield row[0], {name: row[slot]
                                   for name, slot in var_slots}
            return
        pick = itemgetter(*(slot for _, slot in var_slots))
        for start in range(0, len(roots), _ROOT_CHUNK):
            seed = [(root,) for root in roots[start:start + _ROOT_CHUNK]]
            for row in run(steps, seed):
                yield row[0], dict(zip(names, pick(row)))

    def _compile_build(self, pattern: Pattern) -> List[Tuple]:
        """Compile a rule right-hand side into a post-order stack program.

        Instructions (executed over a stack of class ids):

        * ``("var", name)`` — push ``subst[name]``;
        * ``("leaf", op_id, payload_id)`` — add a leaf node, push its
          class;
        * ``("node", op_id, payload_id, arity)`` — pop ``arity`` children
          (mapped through find), add the node, push its class.

        Post-order emission interns ops/payloads in the same order the
        recursive instantiation would, and arity errors surface at
        compile time — before any mutation, like the recursive version.
        """
        steps: List[Tuple] = []

        def walk(node: Pattern) -> None:
            if isinstance(node, PatternVar):
                steps.append(("var", node.name))
                return
            if node.op in (Op.VAR, Op.CONST):
                steps.append(("leaf", self._intern_op(node.op),
                              self._intern_payload(node.payload)))
                return
            expected = OPERATOR_ARITIES.get(node.op)
            if expected is not None and expected != len(node.children):
                raise ValueError(
                    f"operator {node.op!r} expects {expected} children, "
                    f"got {len(node.children)}")
            for child in node.children:
                walk(child)
            steps.append(("node", self._intern_op(node.op),
                          self._intern_payload(None), len(node.children)))

        walk(pattern)
        if (len(steps) > 1 and steps[-1][0] == "node"
                and steps[-1][3] == len(steps) - 1
                and all(step[0] == "var" for step in steps[:-1])):
            # One operator over pattern variables is the dominant rule
            # shape; collapse it to a single instruction so instantiation
            # skips the stack machine entirely.
            _, op_id, payload_id, arity = steps[-1]
            steps = [("simple", op_id, payload_id,
                      tuple(step[1] for step in steps[:-1]))]
        self._build_programs[id(pattern)] = (pattern, steps)
        return steps

    def instantiate_pattern(self, pattern: Pattern, subst: Subst) -> int:
        """Instantiate a rule right-hand side without building ENodes."""
        cached = self._build_programs.get(id(pattern))
        if cached is not None:
            steps = cached[1]
        else:
            steps = self._compile_build(pattern)
        find = self._find
        intern_node = self._intern_node
        add_node = self._add_node
        first = steps[0]
        if first[0] == "simple":
            parent = self._uf
            children: List[int] = []
            append_child = children.append
            try:
                for name in first[3]:
                    child = subst[name]
                    append_child(child if parent[child] == child
                                 else find(child))
            except KeyError as error:
                raise KeyError(
                    f"pattern variable {name} unbound during "
                    "instantiation") from error
            node_id = intern_node(first[1], first[2], tuple(children))
            existing = self._hashcons.get(node_id)
            if existing is not None and parent[existing] == existing:
                return existing
            return add_node(node_id)
        stack: List[int] = []
        append = stack.append
        for step in steps:
            kind = step[0]
            if kind == "node":
                _, op_id, payload_id, arity = step
                if arity == 2:
                    children = (find(stack[-2]), find(stack[-1]))
                    del stack[-2:]
                else:
                    children = tuple(find(item) for item in stack[-arity:])
                    del stack[-arity:]
                append(add_node(intern_node(op_id, payload_id, children)))
            elif kind == "var":
                name = step[1]
                try:
                    append(subst[name])
                except KeyError as error:
                    raise KeyError(
                        f"pattern variable {name} unbound during "
                        "instantiation") from error
            else:  # leaf
                append(add_node(intern_node(step[1], step[2], ())))
        return stack[0]

    # ------------------------------------------------------------------
    # Snapshot support (repro.store)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Identical structure (and, downstream, identical bytes) to
        :meth:`EGraph.export_state` — interned ids decode back to e-nodes
        and the union-find is exported fully path-compressed."""
        decode = self._decode
        classes = {}
        for class_id in sorted(self._classes):
            eclass = self._classes[class_id]
            pairs = eclass.parent_pairs
            classes[class_id] = (
                sorted((decode(node_id) for node_id in eclass.node_ids),
                       key=enode_sort_key),
                [(decode(pairs[index]), pairs[index + 1])
                 for index in range(0, len(pairs), 2)],
            )
        find = self._find
        return {
            "parents_array": [find(item) for item in range(len(self._uf))],
            "classes": classes,
            "hashcons": {decode(node_id): class_id
                         for node_id, class_id in self._hashcons.items()},
            "pending": list(self._pending),
            "clean": self._clean,
            "dirty": sorted(self._dirty),
            "seq": dict(self._seq),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "DenseEGraph":
        graph = cls()
        graph._uf = list(state["parents_array"])
        intern = graph._intern_enode
        for class_id, (nodes, parents) in state["classes"].items():
            eclass = _DenseClass(class_id, graph)
            eclass.node_ids = {intern(node) for node in nodes}
            flat: List[int] = []
            for node, parent_class in parents:
                flat.append(intern(node))
                flat.append(parent_class)
            eclass.parent_pairs = flat
            graph._classes[class_id] = eclass
            for node_id in eclass.node_ids:
                graph._op_classes.setdefault(graph._node_op[node_id],
                                             set()).add(class_id)
        graph._hashcons = {intern(node): class_id
                           for node, class_id in state["hashcons"].items()}
        graph._pending = list(state["pending"])
        graph._clean = bool(state["clean"])
        graph._dirty = set(state["dirty"])
        graph._seq = dict(state["seq"])
        return graph

    def dump(self, limit: int = 50) -> str:  # pragma: no cover - debugging aid
        lines = []
        for count, eclass in enumerate(self._classes.values()):
            if count >= limit:
                lines.append("...")
                break
            nodes = ", ".join(str(node) for node in eclass.nodes)
            lines.append(f"class {eclass.id}: {nodes}")
        return "\n".join(lines)


def as_engine(egraph, engine: str):
    """Return ``egraph`` represented by the requested engine.

    Conversion round-trips through :meth:`export_state`, which preserves
    every bit of observable state, so switching engines mid-pipeline (e.g.
    resuming a checkpoint written by the other engine) is transparent.
    Returns the input object unchanged when it already is the right engine.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown e-graph engine {engine!r}; expected one of {ENGINES}")
    current = getattr(egraph, "engine", "python")
    if current == engine:
        return egraph
    target = DenseEGraph if engine == "dense" else EGraph
    return target.from_state(egraph.export_state())
