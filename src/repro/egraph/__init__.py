"""A from-scratch e-graph / equality-saturation engine (egg substitute)."""

from .dense import DEFAULT_ENGINE, DenseEGraph, ENGINES, as_engine
from .egraph import EClass, EGraph, enode_sort_key
from .enode import ENode, Op, OPERATOR_ARITIES, is_leaf_op
from .extract import (
    DEFAULT_OP_COSTS,
    ExtractionChoice,
    ExtractionResult,
    TreeCostExtractor,
    count_ops,
    default_cost,
    expr_of,
)
from .pattern import (
    MatchPlan,
    Pattern,
    PatternNode,
    PatternVar,
    compile_pattern,
    ematch,
    instantiate,
    match_in_class,
    parse_pattern,
    pattern_vars,
)
from .rewrite import BackoffScheduler, Rewrite, RuleStats, apply_rules
from .runner import (
    IterationReport,
    Runner,
    RunnerCheckpoint,
    RunnerLimits,
    RunnerReport,
    StopReason,
)
from .unionfind import UnionFind

__all__ = [
    "DEFAULT_ENGINE",
    "DenseEGraph",
    "ENGINES",
    "as_engine",
    "EClass",
    "EGraph",
    "enode_sort_key",
    "ENode",
    "Op",
    "OPERATOR_ARITIES",
    "is_leaf_op",
    "DEFAULT_OP_COSTS",
    "ExtractionChoice",
    "ExtractionResult",
    "TreeCostExtractor",
    "count_ops",
    "default_cost",
    "expr_of",
    "MatchPlan",
    "Pattern",
    "PatternNode",
    "PatternVar",
    "compile_pattern",
    "ematch",
    "instantiate",
    "match_in_class",
    "parse_pattern",
    "pattern_vars",
    "BackoffScheduler",
    "Rewrite",
    "RuleStats",
    "apply_rules",
    "IterationReport",
    "Runner",
    "RunnerCheckpoint",
    "RunnerLimits",
    "RunnerReport",
    "StopReason",
    "UnionFind",
]
