"""Standard-cell library, technology mapper and mapped-netlist utilities."""

from .library import Cell, CellLibrary, default_library
from .mapper import MappingOptions, map_and_blast, technology_map
from .netlist import CellInstance, CellNetlist

__all__ = [
    "Cell",
    "CellLibrary",
    "default_library",
    "MappingOptions",
    "map_and_blast",
    "technology_map",
    "CellInstance",
    "CellNetlist",
]
