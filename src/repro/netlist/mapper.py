"""Cut-based technology mapping of AIGs onto the standard-cell library.

The mapper mirrors the role ASAP7 mapping plays in the paper: it re-expresses
the netlist through library cells (mostly inverting ones), moving logic
boundaries and polarities so that the original adder-tree structure is no
longer visible to structural detectors.  Functional correctness is preserved
(and checked in the test suite by re-blasting and equivalence checking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..aig import AIG, CONST0, CONST1, lit_is_compl, lit_var
from ..cuts import cut_function, enumerate_cuts
from .library import Cell, CellLibrary, default_library
from .netlist import CellInstance, CellNetlist

__all__ = ["MappingOptions", "technology_map", "map_and_blast"]

CONST0_NET = "__const0__"
CONST1_NET = "__const1__"


@dataclass
class MappingOptions:
    """Knobs controlling the technology mapper.

    Attributes:
        cut_size: maximum cut size considered for matching (<= 4).
        max_cuts_per_node: priority-cut budget per node.
        prefer_large_cuts: prefer matches that cover more logic (ABC's default
            area-oriented behaviour); this is what moves logic boundaries.
        prefer_inverting: break ties in favour of inverting cells, mirroring
            their area advantage in CMOS libraries and churning polarities.
    """

    cut_size: int = 4
    max_cuts_per_node: int = 8
    prefer_large_cuts: bool = True
    prefer_inverting: bool = True


def _match_score(cut_size: int, cell: Cell, inverted: bool,
                 options: MappingOptions) -> Tuple:
    size_term = -cut_size if options.prefer_large_cuts else cut_size
    invert_term = 0 if (cell.inverting == options.prefer_inverting) else 1
    return (size_term, cell.area, invert_term, cell.name)


def technology_map(aig: AIG, library: Optional[CellLibrary] = None,
                   options: Optional[MappingOptions] = None) -> CellNetlist:
    """Map an AIG onto the cell library, returning a cell-level netlist."""
    library = library or default_library()
    options = options or MappingOptions()
    match_index = library.match_table(max_arity=options.cut_size)
    cuts = enumerate_cuts(aig, k=options.cut_size,
                          max_cuts_per_node=options.max_cuts_per_node)

    # Fanout counts (primary outputs count as fanout) determine which cuts are
    # admissible: a cut may not swallow a node whose value is needed
    # elsewhere, otherwise the mapper would have to duplicate logic.
    fanout_count: Dict[int, int] = {var: 0 for var in range(aig.num_vars)}
    for gate in aig.gates:
        for fanin in gate.fanin_vars():
            fanout_count[fanin] = fanout_count.get(fanin, 0) + 1
    for lit in aig.outputs:
        fanout_count[lit_var(lit)] = fanout_count.get(lit_var(lit), 0) + 1

    def cut_is_admissible(root: int, leaves: frozenset) -> bool:
        """True if no internal cone node (other than the root) has external fanout."""
        stack = [root]
        seen = set()
        while stack:
            var = stack.pop()
            if var in seen:
                continue
            seen.add(var)
            if var != root and var not in leaves:
                if fanout_count.get(var, 0) > 1:
                    return False
            if var in leaves or not aig.is_gate_var(var):
                continue
            stack.extend(aig.gate_of(var).fanin_vars())
        return True

    # ------------------------------------------------------------------
    # Phase 1 (reverse topological): choose a cell implementation for every
    # node that is required by an output or by a chosen cell's cut leaves.
    # A decision is (cell, input_literals, output_inverted): input literals
    # refer to AIG variables with a phase, output_inverted says the instance
    # drives the complement of the node's function.
    # ------------------------------------------------------------------
    decisions: Dict[int, Tuple[Cell, Tuple[int, ...], bool]] = {}
    needed: set = set()
    for lit in aig.outputs:
        var = lit_var(lit)
        if aig.is_gate_var(var):
            needed.add(var)

    for gate in reversed(aig.gates):
        var = gate.out_var
        if var not in needed:
            continue
        best = None
        best_score = None
        for cut in cuts.get(var, ()):
            if cut.size < 2 or 0 in cut.leaves or var in cut.leaves:
                continue
            if not cut_is_admissible(var, cut.leaves):
                continue
            leaves = cut.sorted_leaves()
            table = cut_function(aig, cut)
            for cell, perm, inverted in match_index.get((cut.size, table), ()):
                score = _match_score(cut.size, cell, inverted, options)
                if best_score is None or score < best_score:
                    # The match table guarantees cut_tt(leaves) equals the
                    # cell function when pin ``i`` is driven by leaf
                    # ``perm[i]`` (see CellLibrary.match_table).
                    pins = tuple(2 * leaves[perm[pin]] for pin in range(cell.num_inputs))
                    best = (cell, pins, inverted)
                    best_score = score
        if best is None:
            # Fallback: implement the bare AND gate (with input phases).
            cell = library.cell("NAND2")
            best = (cell, (gate.fanin0, gate.fanin1), True)
        decisions[var] = best
        for input_lit in best[1]:
            input_var = lit_var(input_lit)
            if aig.is_gate_var(input_var):
                needed.add(input_var)

    # ------------------------------------------------------------------
    # Phase 2 (forward topological): emit instances, inserting inverters when
    # a consumer needs the opposite phase of what an instance produces.
    # ------------------------------------------------------------------
    netlist = CellNetlist(name=f"{aig.name}_mapped")
    netlist.inputs = [aig.input_names[var] for var in aig.inputs]

    produced: Dict[int, Tuple[str, bool]] = {}   # var -> (net, inverted?)
    inverted_nets: Dict[str, str] = {}           # net -> its INV net
    inv_cell = library.cell("INV")
    counter = 0

    for var in aig.inputs:
        produced[var] = (aig.input_names[var], False)

    def net_for_literal(lit: int) -> str:
        nonlocal counter
        if lit == CONST0:
            return CONST0_NET
        if lit == CONST1:
            return CONST1_NET
        var = lit_var(lit)
        net, inverted = produced[var]
        want_inverted = lit_is_compl(lit)
        if want_inverted == inverted:
            return net
        if net not in inverted_nets:
            counter += 1
            inv_net = f"{net}_inv{counter}"
            netlist.instances.append(CellInstance(inv_cell.name, (net,), inv_net))
            inverted_nets[net] = inv_net
        return inverted_nets[net]

    for gate in aig.gates:
        var = gate.out_var
        decision = decisions.get(var)
        if decision is None:
            continue
        cell, input_lits, inverted = decision
        input_nets = tuple(net_for_literal(lit) for lit in input_lits)
        out_net = f"w{var}"
        netlist.instances.append(CellInstance(cell.name, input_nets, out_net))
        produced[var] = (out_net, inverted)

    for lit, name in zip(aig.outputs, aig.output_names):
        netlist.outputs.append((net_for_literal(lit), name))
    return netlist


def map_and_blast(aig: AIG, library: Optional[CellLibrary] = None,
                  options: Optional[MappingOptions] = None) -> AIG:
    """Technology-map ``aig`` and bit-blast the result back into an AIG."""
    library = library or default_library()
    netlist = technology_map(aig, library=library, options=options)
    mapped = netlist.to_aig(library=library)
    return mapped.cleanup()
