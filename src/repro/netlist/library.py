"""A compact standard-cell library (ASAP7-like subset).

The paper maps its benchmark multipliers with the ASAP 7 nm library (161
cells) before running symbolic reasoning.  This module provides a compact
structural stand-in: a set of combinational cells with truth tables, areas
and AIG decompositions ("blasting" functions).  Inverting cells (NAND / NOR /
AOI / OAI / XNOR) are cheaper than their non-inverting counterparts, as in
real libraries, which is what makes mapped netlists polarity-churned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..aig import AIG
from ..aig.truth_table import table_mask, var_table

__all__ = ["Cell", "CellLibrary", "default_library"]

BlastFn = Callable[[AIG, Sequence[int]], int]


@dataclass(frozen=True)
class Cell:
    """One combinational standard cell.

    Attributes:
        name: cell name (e.g. ``"AOI21"``).
        num_inputs: number of input pins.
        function: truth table over the input pins (pin 0 = variable 0).
        area: abstract area cost used by the mapper.
        blast: function emitting the cell's logic into an AIG given input
            literals; returns the output literal.
        inverting: True if the cell's output is an inverting function of its
            inputs (used by the mapper's tie-breaking, mirroring the area
            advantage of inverting CMOS gates).
    """

    name: str
    num_inputs: int
    function: int
    area: float
    blast: BlastFn
    inverting: bool = False


def _tt(aig_builder: BlastFn, num_inputs: int) -> int:
    """Compute a cell's truth table by blasting it into a scratch AIG."""
    aig = AIG(name="cell_tt")
    inputs = [aig.add_input(f"x{i}") for i in range(num_inputs)]
    out = aig_builder(aig, inputs)
    aig.add_output(out)
    mask = table_mask(num_inputs)
    words = {var: var_table(position, num_inputs)
             for position, var in enumerate(aig.inputs)}
    values = aig.simulate(words, mask=mask)
    return aig.output_words(values, mask)[0]


class CellLibrary:
    """A collection of cells indexed by name and by (arity, truth table)."""

    def __init__(self, cells: Sequence[Cell]) -> None:
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell name {cell.name!r}")
            self._cells[cell.name] = cell

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self):
        return iter(self._cells.values())

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def cell(self, name: str) -> Cell:
        """Return the cell named ``name``."""
        return self._cells[name]

    def names(self) -> List[str]:
        """Return all cell names."""
        return sorted(self._cells)

    def cells_of_arity(self, arity: int) -> List[Cell]:
        """Return the cells with the given number of inputs."""
        return [cell for cell in self._cells.values() if cell.num_inputs == arity]

    def match_table(self, max_arity: int = 4
                    ) -> Dict[Tuple[int, int], List[Tuple[Cell, Tuple[int, ...], bool]]]:
        """Build the mapper's match index.

        Returns a map ``(arity, truth_table) -> [(cell, input_permutation,
        output_inverted), ...]`` covering every input permutation of every
        cell and both output phases.  ``input_permutation[i] = j`` means cut
        leaf ``i`` drives cell pin ``j``.
        """
        from itertools import permutations

        index: Dict[Tuple[int, int], List[Tuple[Cell, Tuple[int, ...], bool]]] = {}
        for cell in self._cells.values():
            arity = cell.num_inputs
            if arity > max_arity:
                continue
            mask = table_mask(arity)
            for perm in permutations(range(arity)):
                table = _permute_table(cell.function, perm, arity)
                index.setdefault((arity, table), []).append((cell, perm, False))
                index.setdefault((arity, ~table & mask), []).append((cell, perm, True))
        return index


def _permute_table(table: int, perm: Tuple[int, ...], num_vars: int) -> int:
    result = 0
    for minterm in range(1 << num_vars):
        if (table >> minterm) & 1:
            target = 0
            for position in range(num_vars):
                if (minterm >> position) & 1:
                    target |= 1 << perm[position]
            result |= 1 << target
    return result


# ----------------------------------------------------------------------
# Cell blasting functions.  They intentionally use structural styles that
# differ from the canonical forms in repro.aig.AIG (e.g. XOR via OR/AND form)
# so that re-blasting a mapped netlist restructures the logic.
# ----------------------------------------------------------------------

def _inv(aig: AIG, x: Sequence[int]) -> int:
    return aig.not_(x[0])


def _buf(aig: AIG, x: Sequence[int]) -> int:
    return x[0]


def _nand2(aig: AIG, x: Sequence[int]) -> int:
    return aig.nand_(x[0], x[1])


def _nor2(aig: AIG, x: Sequence[int]) -> int:
    return aig.nor_(x[0], x[1])


def _and2(aig: AIG, x: Sequence[int]) -> int:
    return aig.and_(x[0], x[1])


def _or2(aig: AIG, x: Sequence[int]) -> int:
    return aig.or_(x[0], x[1])


def _xor2(aig: AIG, x: Sequence[int]) -> int:
    # (a | b) & ~(a & b)
    return aig.and_(aig.or_(x[0], x[1]), aig.nand_(x[0], x[1]))


def _xnor2(aig: AIG, x: Sequence[int]) -> int:
    # (a & b) | ~(a | b)
    return aig.or_(aig.and_(x[0], x[1]), aig.nor_(x[0], x[1]))


def _nand3(aig: AIG, x: Sequence[int]) -> int:
    return aig.nand_(x[0], aig.and_(x[1], x[2]))


def _nor3(aig: AIG, x: Sequence[int]) -> int:
    return aig.nor_(x[0], aig.or_(x[1], x[2]))


def _and3(aig: AIG, x: Sequence[int]) -> int:
    return aig.and_(aig.and_(x[0], x[1]), x[2])


def _or3(aig: AIG, x: Sequence[int]) -> int:
    return aig.or_(aig.or_(x[0], x[1]), x[2])


def _nand4(aig: AIG, x: Sequence[int]) -> int:
    return aig.nand_(aig.and_(x[0], x[1]), aig.and_(x[2], x[3]))


def _nor4(aig: AIG, x: Sequence[int]) -> int:
    return aig.nor_(aig.or_(x[0], x[1]), aig.or_(x[2], x[3]))


def _and4(aig: AIG, x: Sequence[int]) -> int:
    return aig.and_(aig.and_(x[0], x[1]), aig.and_(x[2], x[3]))


def _or4(aig: AIG, x: Sequence[int]) -> int:
    return aig.or_(aig.or_(x[0], x[1]), aig.or_(x[2], x[3]))


def _aoi21(aig: AIG, x: Sequence[int]) -> int:
    return aig.not_(aig.or_(aig.and_(x[0], x[1]), x[2]))


def _oai21(aig: AIG, x: Sequence[int]) -> int:
    return aig.not_(aig.and_(aig.or_(x[0], x[1]), x[2]))


def _ao21(aig: AIG, x: Sequence[int]) -> int:
    return aig.or_(aig.and_(x[0], x[1]), x[2])


def _oa21(aig: AIG, x: Sequence[int]) -> int:
    return aig.and_(aig.or_(x[0], x[1]), x[2])


def _aoi22(aig: AIG, x: Sequence[int]) -> int:
    return aig.not_(aig.or_(aig.and_(x[0], x[1]), aig.and_(x[2], x[3])))


def _oai22(aig: AIG, x: Sequence[int]) -> int:
    return aig.not_(aig.and_(aig.or_(x[0], x[1]), aig.or_(x[2], x[3])))


def _ao22(aig: AIG, x: Sequence[int]) -> int:
    return aig.or_(aig.and_(x[0], x[1]), aig.and_(x[2], x[3]))


def _oa22(aig: AIG, x: Sequence[int]) -> int:
    return aig.and_(aig.or_(x[0], x[1]), aig.or_(x[2], x[3]))


def _mux2(aig: AIG, x: Sequence[int]) -> int:
    # x[2] is the select pin.
    return aig.or_(aig.and_(x[2], x[0]), aig.and_(aig.not_(x[2]), x[1]))


def _aoi211(aig: AIG, x: Sequence[int]) -> int:
    return aig.not_(aig.or_(aig.or_(aig.and_(x[0], x[1]), x[2]), x[3]))


def _oai211(aig: AIG, x: Sequence[int]) -> int:
    return aig.not_(aig.and_(aig.and_(aig.or_(x[0], x[1]), x[2]), x[3]))


def _cell(name: str, arity: int, area: float, blast: BlastFn,
          inverting: bool = False) -> Cell:
    return Cell(name=name, num_inputs=arity, function=_tt(blast, arity),
                area=area, blast=blast, inverting=inverting)


_DEFAULT_CELLS: List[Cell] = [
    _cell("INV", 1, 1.0, _inv, inverting=True),
    _cell("BUF", 1, 1.5, _buf),
    _cell("NAND2", 2, 1.5, _nand2, inverting=True),
    _cell("NOR2", 2, 1.5, _nor2, inverting=True),
    _cell("AND2", 2, 2.0, _and2),
    _cell("OR2", 2, 2.0, _or2),
    _cell("XOR2", 2, 3.0, _xor2),
    _cell("XNOR2", 2, 3.0, _xnor2, inverting=True),
    _cell("NAND3", 3, 2.0, _nand3, inverting=True),
    _cell("NOR3", 3, 2.0, _nor3, inverting=True),
    _cell("AND3", 3, 2.5, _and3),
    _cell("OR3", 3, 2.5, _or3),
    _cell("AOI21", 3, 2.0, _aoi21, inverting=True),
    _cell("OAI21", 3, 2.0, _oai21, inverting=True),
    _cell("AO21", 3, 2.5, _ao21),
    _cell("OA21", 3, 2.5, _oa21),
    _cell("MUX2", 3, 3.0, _mux2),
    _cell("NAND4", 4, 2.5, _nand4, inverting=True),
    _cell("NOR4", 4, 2.5, _nor4, inverting=True),
    _cell("AND4", 4, 3.0, _and4),
    _cell("OR4", 4, 3.0, _or4),
    _cell("AOI22", 4, 2.5, _aoi22, inverting=True),
    _cell("OAI22", 4, 2.5, _oai22, inverting=True),
    _cell("AO22", 4, 3.0, _ao22),
    _cell("OA22", 4, 3.0, _oa22),
    _cell("AOI211", 4, 2.5, _aoi211, inverting=True),
    _cell("OAI211", 4, 2.5, _oai211, inverting=True),
]

_DEFAULT_LIBRARY: CellLibrary | None = None


def default_library() -> CellLibrary:
    """Return the shared default library instance."""
    global _DEFAULT_LIBRARY
    if _DEFAULT_LIBRARY is None:
        _DEFAULT_LIBRARY = CellLibrary(_DEFAULT_CELLS)
    return _DEFAULT_LIBRARY
