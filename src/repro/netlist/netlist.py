"""Mapped (cell-level) netlist representation and conversion back to AIG."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..aig import AIG
from .library import CellLibrary, default_library

__all__ = ["CellInstance", "CellNetlist"]


@dataclass(frozen=True)
class CellInstance:
    """One cell instance: a cell name, input net names and an output net name."""

    cell: str
    inputs: Tuple[str, ...]
    output: str


@dataclass
class CellNetlist:
    """A technology-mapped netlist.

    Nets are referenced by name.  Primary inputs are nets named after the
    original AIG inputs; every instance drives exactly one new net; outputs
    point at existing nets.  Instances are stored in topological order.
    """

    name: str = "mapped"
    inputs: List[str] = field(default_factory=list)
    outputs: List[Tuple[str, str]] = field(default_factory=list)  # (net, port name)
    instances: List[CellInstance] = field(default_factory=list)

    @property
    def num_instances(self) -> int:
        """Number of cell instances."""
        return len(self.instances)

    def cell_histogram(self) -> Dict[str, int]:
        """Return a map from cell name to its number of instances."""
        histogram: Dict[str, int] = {}
        for instance in self.instances:
            histogram[instance.cell] = histogram.get(instance.cell, 0) + 1
        return histogram

    def area(self, library: Optional[CellLibrary] = None) -> float:
        """Total area of the mapped netlist."""
        library = library or default_library()
        return sum(library.cell(instance.cell).area for instance in self.instances)

    def to_aig(self, library: Optional[CellLibrary] = None) -> AIG:
        """Bit-blast the mapped netlist back into an AIG.

        Each cell is expanded with its library decomposition; the resulting
        AIG is structurally hashed on the fly (as ABC does when reading a
        mapped netlist back in), so shared logic is merged.
        """
        library = library or default_library()
        aig = AIG(name=f"{self.name}_aig")
        net_lit: Dict[str, int] = {"__const0__": 0, "__const1__": 1}
        for input_name in self.inputs:
            net_lit[input_name] = aig.add_input(input_name)
        for instance in self.instances:
            cell = library.cell(instance.cell)
            try:
                input_lits = [net_lit[net] for net in instance.inputs]
            except KeyError as error:
                raise ValueError(
                    f"instance {instance} references an undriven net") from error
            net_lit[instance.output] = cell.blast(aig, input_lits)
        for net, port in self.outputs:
            if net not in net_lit:
                raise ValueError(f"output {port} references undriven net {net}")
            aig.add_output(net_lit[net], port)
        return aig

    def validate(self, library: Optional[CellLibrary] = None) -> None:
        """Check structural sanity (driven nets, known cells, arity match)."""
        library = library or default_library()
        driven = set(self.inputs) | {"__const0__", "__const1__"}
        for instance in self.instances:
            cell = library.cell(instance.cell)
            if len(instance.inputs) != cell.num_inputs:
                raise ValueError(
                    f"instance of {cell.name} has {len(instance.inputs)} inputs, "
                    f"expected {cell.num_inputs}")
            for net in instance.inputs:
                if net not in driven:
                    raise ValueError(f"net {net} used before being driven")
            if instance.output in driven:
                raise ValueError(f"net {instance.output} has multiple drivers")
            driven.add(instance.output)
        for net, port in self.outputs:
            if net not in driven:
                raise ValueError(f"output {port} references undriven net {net}")
