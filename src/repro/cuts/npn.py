"""NPN classification of small Boolean functions.

Two functions are NPN-equivalent when one can be obtained from the other by
Negating inputs, Permuting inputs, and/or Negating the output.  ABC and
Gamora identify "NPN full adders" — blocks whose sum/carry functions fall in
the XOR3/MAJ3 NPN classes without being exactly equal to XOR3/MAJ3 — while
BoolE distinguishes those from *exact* full adders.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Dict, List, Tuple

from ..aig.truth_table import MAJ3_TABLE, XOR3_TABLE, table_mask

__all__ = [
    "apply_permutation",
    "apply_input_negation",
    "npn_canonical",
    "npn_equivalent",
    "npn_class_of",
    "XOR3_NPN_CANON",
    "MAJ3_NPN_CANON",
]


@lru_cache(maxsize=None)
def _minterm_maps(num_vars: int) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]:
    """Precompute per-permutation and per-negation minterm index maps."""
    size = 1 << num_vars
    perm_maps: List[Tuple[int, ...]] = []
    for perm in permutations(range(num_vars)):
        mapping = []
        for minterm in range(size):
            target = 0
            for position in range(num_vars):
                if (minterm >> position) & 1:
                    target |= 1 << perm[position]
            mapping.append(target)
        perm_maps.append(tuple(mapping))
    return tuple(perm_maps), tuple(range(size))


def apply_permutation(table: int, perm: Tuple[int, ...], num_vars: int) -> int:
    """Permute the input variables of a truth table.

    ``perm[i] = j`` means original variable ``i`` becomes variable ``j``.
    """
    size = 1 << num_vars
    result = 0
    for minterm in range(size):
        if (table >> minterm) & 1:
            target = 0
            for position in range(num_vars):
                if (minterm >> position) & 1:
                    target |= 1 << perm[position]
            result |= 1 << target
    return result


def apply_input_negation(table: int, negation_mask: int, num_vars: int) -> int:
    """Negate the inputs selected by ``negation_mask`` (bit i = negate var i)."""
    size = 1 << num_vars
    result = 0
    for minterm in range(size):
        if (table >> minterm) & 1:
            result |= 1 << (minterm ^ negation_mask)
    return result


def npn_canonical(table: int, num_vars: int) -> int:
    """Return the canonical (minimum) representative of the NPN class."""
    mask = table_mask(num_vars)
    table &= mask
    best = None
    for negation_mask in range(1 << num_vars):
        negated = apply_input_negation(table, negation_mask, num_vars)
        for perm in permutations(range(num_vars)):
            permuted = apply_permutation(negated, perm, num_vars)
            for candidate in (permuted, ~permuted & mask):
                if best is None or candidate < best:
                    best = candidate
    return best if best is not None else 0


def npn_equivalent(table_a: int, table_b: int, num_vars: int) -> bool:
    """Return True if the two functions are NPN-equivalent."""
    return npn_canonical(table_a, num_vars) == npn_canonical(table_b, num_vars)


def npn_class_of(table: int, num_vars: int,
                 classes: Dict[str, int]) -> str:
    """Classify ``table`` against a dictionary of named canonical forms.

    Returns the matching name or ``"other"``.
    """
    canon = npn_canonical(table, num_vars)
    for name, reference in classes.items():
        if canon == reference:
            return name
    return "other"


#: Canonical NPN representatives of the full-adder component functions.
XOR3_NPN_CANON = npn_canonical(XOR3_TABLE, 3)
MAJ3_NPN_CANON = npn_canonical(MAJ3_TABLE, 3)
