"""K-feasible cut enumeration on AIGs.

A cut of a node ``r`` is a set of leaves ``S`` such that every path from a
primary input to ``r`` passes through a leaf (Section II-A of the paper).
Cut enumeration combines the cuts of the two fanins of every AND gate and is
the workhorse of ABC-style structural reasoning and technology mapping.

The implementation keeps a bounded number of cuts per node ("priority cuts"),
which mirrors ABC's behaviour and is the reason purely structural detection
degrades on restructured netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..aig import AIG, cone_truth_table, lit_var

__all__ = ["Cut", "CutSet", "enumerate_cuts", "cut_function"]


@dataclass(frozen=True)
class Cut:
    """A cut: a root variable and a frozen set of leaf variables."""

    root: int
    leaves: FrozenSet[int]

    @property
    def size(self) -> int:
        """Number of leaves."""
        return len(self.leaves)

    def sorted_leaves(self) -> Tuple[int, ...]:
        """Leaves in ascending variable order (canonical input order)."""
        return tuple(sorted(self.leaves))


CutSet = Dict[int, List[Cut]]


def _merge_cuts(leaves_a: FrozenSet[int], leaves_b: FrozenSet[int],
                k: int) -> Optional[FrozenSet[int]]:
    merged = leaves_a | leaves_b
    if len(merged) > k:
        return None
    return merged


def _dominates(small: FrozenSet[int], large: FrozenSet[int]) -> bool:
    return small <= large and small != large


def enumerate_cuts(aig: AIG, k: int = 3,
                   max_cuts_per_node: int = 8,
                   include_trivial: bool = True) -> CutSet:
    """Enumerate K-feasible cuts for every variable of the AIG.

    Args:
        aig: the subject graph.
        k: maximum cut size (the paper uses 3-feasible cuts for FA detection).
        max_cuts_per_node: priority-cut limit; only this many cuts are kept
            per node (smaller cuts are preferred), matching ABC's bounded cut
            storage.
        include_trivial: include the trivial cut ``{node}`` for every node.

    Returns:
        Map from variable index to its list of cuts.  Primary inputs and the
        constant node only get their trivial cut.
    """
    cuts: CutSet = {}
    cuts[0] = [Cut(0, frozenset({0}))] if include_trivial else []
    for var in aig.inputs:
        cuts[var] = [Cut(var, frozenset({var}))]

    for gate in aig.topological_gates():
        var = gate.out_var
        fanin0 = lit_var(gate.fanin0)
        fanin1 = lit_var(gate.fanin1)
        candidates: List[FrozenSet[int]] = []
        seen = set()
        for cut_a in cuts.get(fanin0, []):
            for cut_b in cuts.get(fanin1, []):
                merged = _merge_cuts(cut_a.leaves, cut_b.leaves, k)
                if merged is None or merged in seen:
                    continue
                seen.add(merged)
                candidates.append(merged)
        # Remove dominated cuts (a cut is useless if a subset cut exists).
        filtered: List[FrozenSet[int]] = []
        for leaves in sorted(candidates, key=len):
            if any(_dominates(kept, leaves) for kept in filtered):
                continue
            filtered.append(leaves)
        filtered = filtered[:max_cuts_per_node]
        node_cuts = [Cut(var, leaves) for leaves in filtered]
        if include_trivial:
            node_cuts.append(Cut(var, frozenset({var})))
        cuts[var] = node_cuts
    return cuts


def cut_function(aig: AIG, cut: Cut) -> int:
    """Compute the truth table of the cut root over its sorted leaves."""
    return cone_truth_table(aig, cut.root, cut.sorted_leaves())
