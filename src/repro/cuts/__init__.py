"""Cut enumeration and NPN classification (ABC-style structural substrate)."""

from .enumeration import Cut, CutSet, cut_function, enumerate_cuts
from .npn import (
    MAJ3_NPN_CANON,
    XOR3_NPN_CANON,
    apply_input_negation,
    apply_permutation,
    npn_canonical,
    npn_class_of,
    npn_equivalent,
)

__all__ = [
    "Cut",
    "CutSet",
    "cut_function",
    "enumerate_cuts",
    "MAJ3_NPN_CANON",
    "XOR3_NPN_CANON",
    "apply_input_negation",
    "apply_permutation",
    "npn_canonical",
    "npn_class_of",
    "npn_equivalent",
]
