"""CLI for the saturation service: serve, work, submit, status.

Examples::

    python -m repro.service --root .store serve --port 8765
    python -m repro.service --root .store work --capability gpu
    python -m repro.service submit --arch csa --width 4 --port 8765
    python -m repro.service submit --sweep --archs csa --widths 4,8 \\
        --refine-rounds 0,1,2 --wait
    python -m repro.service status <job-id> --port 8765

``serve`` and ``work`` talk to the store directly; ``submit``, ``status``
and ``stats`` go through a running server over HTTP.  ``submit --sweep``
sends one ``POST /sweeps`` generator request — the server expands the
``archs × widths × refine-rounds`` cross product, plans it once and
materialises it as a job DAG for the fleet.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Dict, List, Optional

from .client import ServiceClient, ServiceError
from .jobs import SPEC_ARCHES, SWEEP_TERMINAL_STATES, TERMINAL_STATES
from .server import ServiceServer
from .worker import ServiceWorker


def _add_common(parser: argparse.ArgumentParser) -> None:
    """Shared flags, accepted both before and after the subcommand.

    The subcommand-level copies default to ``SUPPRESS`` so they only
    override the top-level values when given explicitly — ``--port 9
    serve`` and ``serve --port 9`` both work.
    """
    suppress = argparse.SUPPRESS
    parser.add_argument("--root", default=suppress,
                        help="artifact store directory (serve/work)")
    parser.add_argument("--host", default=suppress)
    parser.add_argument("--port", type=int, default=suppress)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Saturation-as-a-service over a shared artifact store.")
    parser.add_argument("--root", default=".repro-store",
                        help="artifact store directory (serve/work)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    commands = parser.add_subparsers(dest="command", required=True)

    _add_common(commands.add_parser("serve", help="run the HTTP front door"))

    work = commands.add_parser("work", help="run a fleet worker")
    _add_common(work)
    work.add_argument("--max-jobs", type=int, default=None,
                      help="exit after completing this many jobs")
    work.add_argument("--idle-timeout", type=float, default=None,
                      help="exit after this many idle seconds")
    work.add_argument("--ttl", type=float, default=30.0,
                      help="lease heartbeat TTL, seconds")
    work.add_argument("--capability", action="append", default=[],
                      metavar="TAG",
                      help="capability tag this worker offers (repeatable)")

    submit = commands.add_parser("submit",
                                 help="submit a job or sweep over HTTP")
    _add_common(submit)
    submit.add_argument("--arch", choices=SPEC_ARCHES, default="csa")
    submit.add_argument("--width", type=int, default=4)
    submit.add_argument("--raw", action="store_true",
                        help="skip the post-mapping flow")
    submit.add_argument("--name", default="")
    submit.add_argument("--option", action="append", default=[],
                        metavar="FIELD=VALUE",
                        help="BoolEOptions override (repeatable)")
    submit.add_argument("--wait", action="store_true",
                        help="poll the job (or sweep) to a terminal state")
    submit.add_argument("--sweep", action="store_true",
                        help="POST /sweeps with a generator cross product")
    submit.add_argument("--archs", default=None, metavar="A,B",
                        help="sweep arch list (default: --arch)")
    submit.add_argument("--widths", default=None, metavar="N,M",
                        help="sweep width list (default: --width)")
    submit.add_argument("--refine-rounds", default=None, metavar="N,M",
                        help="sweep option sets over refine_rounds values")
    submit.add_argument("--priority", type=int, default=0,
                        help="claim priority for queued sweep jobs")
    submit.add_argument("--require", action="append", default=[],
                        metavar="TAG",
                        help="capability tag the jobs need (repeatable)")

    status = commands.add_parser("status", help="query one job over HTTP")
    _add_common(status)
    status.add_argument("job_id")
    status.add_argument("--events", action="store_true",
                        help="stream the job's event log instead")

    sweep = commands.add_parser("sweep", help="query one sweep over HTTP")
    _add_common(sweep)
    sweep.add_argument("sweep_id")
    sweep.add_argument("--wait", action="store_true",
                       help="poll the sweep to a terminal rollup")

    _add_common(commands.add_parser(
        "stats", help="queue/lease/store summary over HTTP"))
    return parser


def _parse_options(pairs: List[str]) -> Dict:
    options: Dict = {}
    for pair in pairs:
        field_name, separator, raw = pair.partition("=")
        if not separator:
            raise SystemExit(f"--option wants FIELD=VALUE, got {pair!r}")
        try:
            options[field_name] = json.loads(raw)
        except ValueError:
            options[field_name] = raw
    return options


def _cmd_serve(args: argparse.Namespace) -> int:
    server = ServiceServer(args.root, host=args.host, port=args.port)

    async def _main() -> None:
        await server.start()
        print(f"repro.service listening on {server.host}:{server.port} "
              f"(store: {args.root})", flush=True)
        assert server._server is not None
        async with server._server:
            await server._server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def _csv(text: str) -> List[str]:
    return [item for item in (part.strip() for part in text.split(","))
            if item]


def _cmd_work(args: argparse.Namespace) -> int:
    worker = ServiceWorker(args.root, ttl=args.ttl,
                           capabilities=args.capability)
    tags = f" [{', '.join(worker.capabilities)}]" if worker.capabilities \
        else ""
    print(f"worker {worker.owner} polling {args.root}{tags}", flush=True)
    try:
        completed = worker.run_forever(max_jobs=args.max_jobs,
                                       idle_timeout=args.idle_timeout)
    except KeyboardInterrupt:
        completed = worker.jobs_completed
    print(f"worker {worker.owner} exiting after {completed} job(s)",
          flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.host, args.port)
    if args.sweep:
        return _cmd_submit_sweep(client, args)
    for flag in ("archs", "widths", "refine_rounds"):
        if getattr(args, flag) is not None:
            raise SystemExit(
                f"--{flag.replace('_', '-')} needs --sweep")
    request: Dict = {"arch": args.arch, "width": args.width,
                     "mapped": not args.raw,
                     "options": _parse_options(args.option)}
    if args.name:
        request["name"] = args.name
    response = client.submit(request)
    print(json.dumps(response, indent=2, sort_keys=True))
    if args.wait and response.get("state") not in TERMINAL_STATES:
        final = client.wait(str(response["job_id"]))
        print(json.dumps(final, indent=2, sort_keys=True))
    return 0


def _cmd_submit_sweep(client: ServiceClient,
                      args: argparse.Namespace) -> int:
    archs = _csv(args.archs) if args.archs is not None else [args.arch]
    widths_text = (_csv(args.widths) if args.widths is not None
                   else [str(args.width)])
    try:
        widths = [int(width) for width in widths_text]
    except ValueError:
        raise SystemExit(f"--widths wants integers, got {args.widths!r}") \
            from None
    generator: Dict = {"archs": archs, "widths": widths,
                       "mapped": not args.raw,
                       "options": _parse_options(args.option)}
    if args.refine_rounds is not None:
        try:
            rounds = [int(value) for value in _csv(args.refine_rounds)]
        except ValueError:
            raise SystemExit("--refine-rounds wants integers, got "
                             f"{args.refine_rounds!r}") from None
        generator["option_sets"] = [{"refine_rounds": value}
                                    for value in rounds]
    request: Dict = {"generator": generator}
    if args.priority:
        request["priority"] = args.priority
    if args.require:
        request["requires"] = list(args.require)
    response = client.submit_sweep(request)
    print(json.dumps(response, indent=2, sort_keys=True))
    if args.wait and response.get("state") not in SWEEP_TERMINAL_STATES:
        final = client.wait_sweep(str(response["sweep_id"]))
        print(json.dumps(final, indent=2, sort_keys=True))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.host, args.port)
    if args.events:
        for event in client.events(args.job_id):
            print(json.dumps(event, sort_keys=True), flush=True)
        return 0
    print(json.dumps(client.status(args.job_id), indent=2, sort_keys=True))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    client = ServiceClient(args.host, args.port)
    status = (client.wait_sweep(args.sweep_id) if args.wait
              else client.sweep_status(args.sweep_id))
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    client = ServiceClient(args.host, args.port)
    print(json.dumps(client.stats(), indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {"serve": _cmd_serve, "work": _cmd_work,
                "submit": _cmd_submit, "status": _cmd_status,
                "sweep": _cmd_sweep, "stats": _cmd_stats}
    try:
        return handlers[args.command](args)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ConnectionError as error:
        print(f"error: cannot reach service at {args.host}:{args.port} "
              f"({error})", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
