"""Fleet worker: claim a lease, run the phase graph, heartbeat, finish.

A :class:`ServiceWorker` polls the shared store for claimable jobs
(queued, or planned/running with a stale lease — a dead colleague's
work), claims the job's ``final_key`` lease and executes the pipeline.
Crash-recovery is entirely inherited: the phase graph restores the
deepest warm boundary and resumes the deepest ``kind="checkpoint"``
artifact, so a takeover continues a dead worker's saturation
mid-phase instead of restarting it (``JobRecord.resumed_phase`` records
that it happened).

Any number of workers on any number of hosts may run against one store;
the lease protocol (:mod:`repro.service.leases`) guarantees one owner
per final key, and content-addressed idempotent writes make even a
pathological double-execution harmless.

Fault injection for tests: setting ``_REPRO_SERVICE_KILL_WORKER_ONCE``
to a marker-file path hard-kills the worker process (``os._exit(17)``)
right after its first mid-phase checkpoint write — the marker's
``O_EXCL`` creation guarantees exactly one kill, and the checkpoint's
existence guarantees the successor has something to resume from.  This
mirrors ``_REPRO_BATCH_KILL_WORKER_ONCE`` in :mod:`repro.core.batch`.
"""

from __future__ import annotations

import os
import random
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from ..core import BoolEOptions
from ..store import KIND_CHECKPOINT, ArtifactStore
from .jobs import (
    STATE_DONE,
    STATE_FAILED,
    STATE_PLANNED,
    STATE_RUNNING,
    JobRecord,
    JobService,
    plan_summary,
)
from .leases import DEFAULT_TTL, Lease, LeaseManager

_KILL_ENV = "_REPRO_SERVICE_KILL_WORKER_ONCE"

#: Idle back-off cap, as a multiple of ``poll_interval``.
_MAX_BACKOFF_FACTOR = 8

#: Phase name → the legacy key its runtime is filed under in
#: ``BoolEResult.timings``.
_PHASE_TIMINGS = {
    "construct": "construct",
    "saturate-r1": "r1",
    "saturate-r2": "r2",
    "insert-fa": "fa_pairing",
    "extract": "extract",
    "reconstruct": "reconstruct",
}


class _KillAfterCheckpointStore(ArtifactStore):
    """Store proxy that hard-kills the process after a checkpoint write.

    The kill happens *after* the checkpoint artifact is durably on disk,
    so the successor is guaranteed a resume point; the ``O_EXCL`` marker
    file makes the kill fire exactly once across retries.
    """

    def __init__(self, root: Union[str, Path], marker: str) -> None:
        super().__init__(root)
        self._marker = marker

    def put(self, key: str, payload: Dict, *, kind: str,
            meta: Optional[Dict] = None) -> Path:
        path = super().put(key, payload, kind=kind, meta=meta)
        if kind == KIND_CHECKPOINT:
            try:
                descriptor = os.open(self._marker,
                                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return path
            os.close(descriptor)
            os._exit(17)
        return path


class ServiceWorker:
    """One worker process of the fleet."""

    def __init__(self, store: Union[ArtifactStore, str, Path], *,
                 owner: Optional[str] = None,
                 ttl: float = DEFAULT_TTL,
                 options: Optional[BoolEOptions] = None,
                 poll_interval: float = 0.25,
                 capabilities: Optional[Sequence[str]] = None) -> None:
        self.service = JobService(store, options)
        self.leases = LeaseManager(self.service.store, owner=owner, ttl=ttl)
        self.poll_interval = poll_interval
        #: Tags this worker offers; jobs requiring others are invisible
        #: to it.  The empty tuple claims only tag-free jobs.
        self.capabilities: Tuple[str, ...] = tuple(
            capabilities if capabilities is not None else ())
        self.jobs_completed = 0

    @property
    def owner(self) -> str:
        return self.leases.owner

    # ------------------------------------------------------------------
    def _run_store(self) -> ArtifactStore:
        marker = os.environ.get(_KILL_ENV)
        if marker:
            return _KillAfterCheckpointStore(self.service.store.root, marker)
        return self.service.store

    def _heartbeat_loop(self, lease: Lease, stop: threading.Event,
                        deposed: threading.Event) -> None:
        interval = max(0.05, lease.ttl / 4.0)
        while not stop.wait(interval):
            if not self.leases.heartbeat(lease):
                deposed.set()
                return

    # ------------------------------------------------------------------
    def run_once(self) -> Optional[str]:
        """Claim and execute one job; returns its id, or ``None`` idle.

        Walks the claimable queue (highest priority first, then oldest;
        dependency-blocked and capability-mismatched jobs are already
        filtered out); keys whose lease another worker holds are simply
        skipped (the back-off of the losing racer), so concurrent
        workers drain disjoint shards of a sweep.
        """
        for record in self.service.claimable(self.capabilities):
            lease = self.leases.claim(record.final_key)
            if lease is None:
                continue
            try:
                return self._execute(record, lease)
            finally:
                self.leases.release(lease)
        return None

    def _idle_delay(self, idle_streak: int) -> float:
        """Jittered exponential back-off for consecutive idle polls.

        Doubles per idle poll up to ``8 × poll_interval``, scaled by a
        uniform [0.5, 1.0) jitter so a fleet of workers that went idle
        together does not stampede the store index in lock-step.  The
        jitter is scheduling noise only — it never touches cache keys or
        serialized output.  One claim resets the streak to zero.
        """
        factor = min(_MAX_BACKOFF_FACTOR, 2 ** idle_streak)
        return self.poll_interval * factor * random.uniform(0.5, 1.0)

    def run_forever(self, *, max_jobs: Optional[int] = None,
                    idle_timeout: Optional[float] = None) -> int:
        """Poll-and-execute until stopped; returns jobs completed.

        ``max_jobs`` bounds the number of jobs to run (for tests and
        drain-style CLIs); ``idle_timeout`` exits after that many
        seconds with nothing claimable.  Idle polls back off
        exponentially with jitter (see :meth:`_idle_delay`); any claim
        snaps the delay back to ``poll_interval``.
        """
        completed = 0
        idle_streak = 0
        idle_since = time.monotonic()
        while True:
            job_id = self.run_once()
            if job_id is not None:
                completed += 1
                idle_streak = 0
                idle_since = time.monotonic()
                if max_jobs is not None and completed >= max_jobs:
                    return completed
                continue
            if (idle_timeout is not None
                    and time.monotonic() - idle_since >= idle_timeout):
                return completed
            delay = self._idle_delay(idle_streak)
            if idle_timeout is not None:
                # Never oversleep past the idle deadline.
                remaining = idle_timeout - (time.monotonic() - idle_since)
                delay = min(delay, max(0.0, remaining))
            idle_streak += 1
            time.sleep(delay)

    # ------------------------------------------------------------------
    def _execute(self, record: JobRecord, lease: Lease) -> Optional[str]:
        service = self.service
        now = time.time()
        record.state = STATE_PLANNED
        record.worker = self.owner
        record.attempts += 1
        record.updated = now
        record.error = None
        record.add_event("claimed", now, worker=self.owner,
                         taken_over_from=lease.taken_over_from)
        service.save(record)

        try:
            pipeline, aig, plan = service.plan_spec(record.spec)
            now = time.time()
            record.state = STATE_RUNNING
            record.updated = now
            record.add_event("running", now, plan=plan_summary(plan))
            service.save(record)

            stop = threading.Event()
            deposed = threading.Event()
            beat = threading.Thread(target=self._heartbeat_loop,
                                    args=(lease, stop, deposed), daemon=True)
            beat.start()
            try:
                result = pipeline.run(aig, store=self._run_store())
            finally:
                stop.set()
                beat.join()
            if deposed.is_set():
                # Another worker took the stale-looking lease over; the
                # terminal state is theirs to write.  Our artifacts are
                # content-addressed, so nothing needs undoing.
                return None

            now = time.time()
            record.state = STATE_DONE
            record.updated = now
            record.result = result.summary()
            record.resumed_phase = result.resumed_phase
            for phase_name in pipeline.phases:
                timing_key = _PHASE_TIMINGS.get(phase_name, phase_name)
                if timing_key in result.timings:
                    record.add_event(
                        "phase", now, name=phase_name,
                        runtime=result.timings[timing_key],
                        resumed=(phase_name == result.resumed_phase))
            record.add_event("done", now, worker=self.owner,
                             cache_hit=result.cache_hit,
                             extraction_cache_hit=result.extraction_cache_hit,
                             resumed_phase=result.resumed_phase,
                             **result.saturation_stats())
            service.save(record)
            self.jobs_completed += 1
            return record.job_id
        except Exception as error:  # noqa: BLE001 - terminal state capture
            now = time.time()
            record.state = STATE_FAILED
            record.updated = now
            record.error = f"{type(error).__name__}: {error}"
            record.add_event("failed", now, error=record.error)
            service.save(record)
            return record.job_id
