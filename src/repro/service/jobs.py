"""Durable job model for the saturation service.

A *job* is one request to run the BoolE pipeline over one netlist with
one options set.  Jobs are persisted as ``kind="job"`` artifacts in the
same :class:`~repro.store.ArtifactStore` the pipeline caches into, keyed
by a stable digest of the planner's ``final_key`` — so two submissions
that would produce interchangeable results collapse onto one record, and
submission dedups against both finished artifacts *and* in-flight jobs
before any work is spawned.

States (``JobRecord.state``):

``queued``
    submitted, waiting for a worker to claim the final key's lease;
``planned``
    a worker claimed the lease and is re-planning against the store;
``running``
    the worker is executing the phase graph;
``done`` / ``failed``
    terminal; ``done`` records the result summary, ``failed`` the error.

``duplicate`` never appears on a record: it is the *submission-level*
state returned when a new request collapses onto a live record.

Job records are mutable coordination state at a stable key — unlike
every other artifact kind they are excluded from the store's
byte-identity guarantees (see ``docs/serialization.md``).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..aig import AIG
from ..core import BoolEOptions, BoolEPipeline
from ..core.phases import PipelinePlan
from ..store import (
    KIND_CHECKPOINT,
    KIND_JOB,
    ArtifactStore,
    SnapshotError,
    aig_from_wire,
    aig_to_wire,
    canonical_digest,
)

STATE_QUEUED = "queued"
STATE_PLANNED = "planned"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
#: Submission-level only: the request collapsed onto a live record.
STATE_DUPLICATE = "duplicate"

#: States a persisted record can carry.
JOB_STATES = (STATE_QUEUED, STATE_PLANNED, STATE_RUNNING,
              STATE_DONE, STATE_FAILED)
#: Records in these states have (or await) an active worker.
LIVE_STATES = frozenset({STATE_QUEUED, STATE_PLANNED, STATE_RUNNING})
TERMINAL_STATES = frozenset({STATE_DONE, STATE_FAILED})

#: Netlist generators a spec may name instead of shipping an AIG.
SPEC_ARCHES = ("rca", "csa", "booth", "wallace")

_MAX_WIDTH = 64

#: BoolEOptions fields a spec may override over the wire.
_OPTION_FIELDS = frozenset(
    spec_field.name for spec_field in dataclasses.fields(BoolEOptions))


def job_key(final_key: str) -> str:
    """Stable job-record key for a planner ``final_key``.

    The record cannot live at ``final_key`` itself — the result artifact
    does — so it lives at a derived digest.  Same final key, same job id:
    that equality is what dedups submissions.
    """
    return canonical_digest({"kind": "job-key", "final": final_key})


def _build_arch_aig(arch: str, width: int, mapped: bool) -> AIG:
    """Materialise a generator-described netlist (post-mapped by default)."""
    from ..generators import (
        booth_multiplier,
        csa_multiplier,
        ripple_carry_adder,
        wallace_multiplier,
    )

    if arch == "rca":
        aig = ripple_carry_adder(width)[0]
    elif arch == "csa":
        aig = csa_multiplier(width).aig
    elif arch == "booth":
        aig = booth_multiplier(width).aig
    elif arch == "wallace":
        aig = wallace_multiplier(width).aig
    else:  # pragma: no cover - guarded by from_request
        raise ValueError(f"unknown arch {arch!r}")
    if mapped:
        from ..opt import post_mapping_flow
        aig = post_mapping_flow(aig)
    return aig


@dataclass
class JobSpec:
    """What to run: a netlist plus pipeline-option overrides.

    The netlist is always materialised to its wire form at submission
    time, so workers replay exactly the submitted structure without
    needing the generators (or their current implementation) to agree
    across hosts.  ``origin`` keeps the human-readable provenance when
    the spec came in as ``arch``/``width``.
    """

    aig_wire: Dict
    options: Dict = field(default_factory=dict)
    name: str = ""
    origin: Optional[Dict] = None

    @classmethod
    def from_request(cls, request: Dict) -> "JobSpec":
        """Validate and normalise a wire-level submission request.

        Accepts either ``{"aig": <wire>}`` or
        ``{"arch": "csa", "width": 4, "mapped": true}``, plus optional
        ``name`` and ``options`` (whitelisted ``BoolEOptions`` fields).
        Raises ``ValueError`` on anything malformed.
        """
        if not isinstance(request, dict):
            raise ValueError("job request must be a JSON object")
        options = request.get("options", {})
        if not isinstance(options, dict):
            raise ValueError("options must be an object")
        unknown = sorted(set(options) - _OPTION_FIELDS)
        if unknown:
            raise ValueError(f"unknown option fields: {', '.join(unknown)}")
        name = request.get("name", "")
        if not isinstance(name, str):
            raise ValueError("name must be a string")

        if "aig" in request:
            wire = request["aig"]
            if not isinstance(wire, dict):
                raise ValueError("aig must be a wire object")
            # Round-trip now so malformed netlists fail at submission,
            # not inside a worker.
            aig = aig_from_wire(wire)
            return cls(aig_wire=aig_to_wire(aig), options=dict(options),
                       name=name or "submitted-aig")

        arch = request.get("arch")
        if arch not in SPEC_ARCHES:
            raise ValueError(
                f"arch must be one of {', '.join(SPEC_ARCHES)} "
                "(or provide an explicit aig)")
        width = request.get("width")
        if not isinstance(width, int) or isinstance(width, bool) \
                or not 1 <= width <= _MAX_WIDTH:
            raise ValueError(f"width must be an int in [1, {_MAX_WIDTH}]")
        mapped = request.get("mapped", True)
        if not isinstance(mapped, bool):
            raise ValueError("mapped must be a boolean")
        aig = _build_arch_aig(arch, width, mapped)
        origin = {"arch": arch, "width": width, "mapped": mapped}
        default_name = f"{arch}-{width}" + ("" if mapped else "-raw")
        return cls(aig_wire=aig_to_wire(aig), options=dict(options),
                   name=name or default_name, origin=origin)

    def build_aig(self) -> AIG:
        return aig_from_wire(self.aig_wire)

    def build_options(self,
                      defaults: Optional[BoolEOptions] = None
                      ) -> BoolEOptions:
        """Service defaults overridden by this spec's option fields."""
        base = defaults if defaults is not None else BoolEOptions()
        return dataclasses.replace(base, **self.options)

    def options_signature(self) -> Tuple[Tuple[str, object], ...]:
        """Hashable identity of the overrides (pipeline-cache key)."""
        return tuple(sorted(self.options.items()))

    def to_payload(self) -> Dict:
        payload: Dict = {
            "name": self.name,
            "aig": self.aig_wire,
            "options": dict(self.options),
        }
        if self.origin is not None:
            payload["origin"] = dict(self.origin)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict) -> "JobSpec":
        origin = payload.get("origin")
        return cls(
            aig_wire=payload["aig"],
            options=dict(payload.get("options", {})),
            name=payload.get("name", ""),
            origin=dict(origin) if isinstance(origin, dict) else None,
        )


@dataclass
class JobRecord:
    """Durable state of one job, serialised as a ``kind="job"`` artifact."""

    job_id: str
    spec: JobSpec
    state: str
    base_key: str
    final_key: str
    extraction_key: Optional[str]
    created: float
    updated: float
    worker: Optional[str] = None
    attempts: int = 0
    error: Optional[str] = None
    resumed_phase: Optional[str] = None
    result: Dict = field(default_factory=dict)
    events: List[Dict] = field(default_factory=list)

    def to_payload(self) -> Dict:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_payload(),
            "state": self.state,
            "base_key": self.base_key,
            "final_key": self.final_key,
            "extraction_key": self.extraction_key,
            "created": self.created,
            "updated": self.updated,
            "worker": self.worker,
            "attempts": self.attempts,
            "error": self.error,
            "resumed_phase": self.resumed_phase,
            "result": dict(self.result),
            "events": [dict(event) for event in self.events],
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "JobRecord":
        return cls(
            job_id=payload["job_id"],
            spec=JobSpec.from_payload(payload["spec"]),
            state=payload["state"],
            base_key=payload["base_key"],
            final_key=payload["final_key"],
            extraction_key=payload.get("extraction_key"),
            created=payload.get("created", 0.0),
            updated=payload.get("updated", 0.0),
            worker=payload.get("worker"),
            attempts=payload.get("attempts", 0),
            error=payload.get("error"),
            resumed_phase=payload.get("resumed_phase"),
            result=dict(payload.get("result", {})),
            events=[dict(event) for event in payload.get("events", [])],
        )

    def add_event(self, event: str, at: float, **fields: object) -> Dict:
        """Append a phase-transition event (served by ``/jobs/<id>/events``)."""
        entry: Dict = {"seq": len(self.events), "event": event, "at": at}
        entry.update(fields)
        self.events.append(entry)
        return entry

    def public_view(self) -> Dict:
        """The record as served over HTTP: everything but the netlist."""
        payload = self.to_payload()
        spec = dict(payload["spec"])
        spec.pop("aig", None)
        payload["spec"] = spec
        return payload


def plan_summary(plan: PipelinePlan) -> Dict:
    """Compact wire form of a plan, incl. the saturation-work counter.

    ``saturations`` is the number of saturation phase bodies execution
    would run — the counter the warm-resubmission acceptance check
    asserts is zero.
    """
    saturating = {"saturate-r1", "saturate-r2"}
    executed = plan.executed_phases
    return {
        "name": plan.name,
        "base_key": plan.base_key,
        "final_key": plan.final_key,
        "extraction_key": plan.extraction_key,
        "fully_warm": plan.is_fully_warm,
        "predicts_cache_hit": plan.predicts_cache_hit,
        "cold_phases": plan.cold_phases,
        "executed_phases": executed,
        "restore_phase": plan.restore_phase,
        "resume_phase": plan.resume_phase,
        "saturations": sum(1 for name in executed if name in saturating),
    }


class JobService:
    """Submission, status and bookkeeping shared by server and worker.

    Everything durable lives in the :class:`~repro.store.ArtifactStore`;
    a ``JobService`` holds no state beyond a pipeline cache, so any
    number of servers and workers on any number of hosts coordinate
    through the store alone.
    """

    def __init__(self, store: Union[ArtifactStore, str, Path],
                 options: Optional[BoolEOptions] = None) -> None:
        self.store = (store if isinstance(store, ArtifactStore)
                      else ArtifactStore(store))
        self.defaults = options if options is not None else BoolEOptions()
        self._pipelines: Dict[Tuple[Tuple[str, object], ...],
                              BoolEPipeline] = {}

    # ------------------------------------------------------------------
    # Pipeline / planning
    # ------------------------------------------------------------------
    def pipeline_for(self, spec: JobSpec) -> BoolEPipeline:
        signature = spec.options_signature()
        pipeline = self._pipelines.get(signature)
        if pipeline is None:
            pipeline = BoolEPipeline(spec.build_options(self.defaults),
                                     store=self.store)
            self._pipelines[signature] = pipeline
        return pipeline

    def plan_spec(self, spec: JobSpec,
                  aig: Optional[AIG] = None
                  ) -> Tuple[BoolEPipeline, AIG, PipelinePlan]:
        pipeline = self.pipeline_for(spec)
        if aig is None:
            aig = spec.build_aig()
        plan = pipeline.plan(aig, store=self.store)
        if plan.final_key is None:  # pragma: no cover - store always set
            raise RuntimeError("planner produced no final key")
        return pipeline, aig, plan

    # ------------------------------------------------------------------
    # Record persistence
    # ------------------------------------------------------------------
    def load(self, job_id: str) -> Optional[JobRecord]:
        try:
            payload = self.store.get(job_id, expected_kind=KIND_JOB)
        except SnapshotError:
            return None
        if payload is None:
            return None
        return JobRecord.from_payload(payload)

    def save(self, record: JobRecord) -> None:
        self.store.put(record.job_id, record.to_payload(), kind=KIND_JOB,
                       meta={"state": record.state, "name": record.spec.name,
                             "final_key": record.final_key})

    def records(self) -> List[JobRecord]:
        """All job records, oldest submission first (then by id)."""
        loaded: List[JobRecord] = []
        for key, kind in sorted(self.store.kinds().items()):
            if kind != KIND_JOB:
                continue
            record = self.load(key)
            if record is not None:
                loaded.append(record)
        return sorted(loaded, key=lambda record: (record.created,
                                                  record.job_id))

    def claimable(self) -> List[JobRecord]:
        """Jobs a worker may (try to) claim, oldest first.

        Queued jobs, plus planned/running jobs whose lease went stale —
        the owner died, so the next worker takes over and (thanks to the
        phase graph) resumes from the dead worker's deepest checkpoint.
        """
        ready: List[JobRecord] = []
        for record in self.records():
            if record.state == STATE_QUEUED:
                ready.append(record)
            elif record.state in (STATE_PLANNED, STATE_RUNNING):
                lease = self.store.read_lease(record.final_key)
                if self.store.lease_is_stale(lease):
                    ready.append(record)
        return ready

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: Dict) -> Dict:
        """Plan a submission and serve/dedup/enqueue it.

        Returns a wire-level response: ``state`` is the submission
        outcome (``done`` served warm inline, ``duplicate`` collapsed
        onto a live job, ``queued`` enqueued for the fleet), ``plan`` the
        classification that decided it, ``job`` the current record.
        """
        spec = JobSpec.from_request(request)
        return self.submit_spec(spec)

    def submit_spec(self, spec: JobSpec) -> Dict:
        pipeline, aig, plan = self.plan_spec(spec)
        final_key = plan.final_key or ""
        job_id = job_key(final_key)
        existing = self.load(job_id)
        now = time.time()

        if plan.is_fully_warm:
            # Every boundary artifact is in the store: serving the result
            # costs one snapshot load, so do it inline on the front door.
            result = pipeline.run(aig, store=self.store)
            record = existing if existing is not None else JobRecord(
                job_id=job_id, spec=spec, state=STATE_DONE,
                base_key=plan.base_key or "", final_key=final_key,
                extraction_key=plan.extraction_key,
                created=now, updated=now)
            record.state = STATE_DONE
            record.updated = now
            record.error = None
            record.result = result.summary()
            record.add_event("served-warm", now, final_key=final_key)
            self.save(record)
            return {
                "job_id": job_id,
                "state": STATE_DONE,
                "duplicate": existing is not None,
                "warm": True,
                "plan": plan_summary(plan),
                "result": record.result,
                "job": record.public_view(),
            }

        if existing is not None and existing.state in LIVE_STATES:
            # In-flight dedup: same final key, same job — no new work.
            return {
                "job_id": job_id,
                "state": STATE_DUPLICATE,
                "duplicate": True,
                "warm": False,
                "plan": plan_summary(plan),
                "job": existing.public_view(),
            }

        # New job, or a terminal record whose artifacts were evicted
        # (done-but-cold) or which failed: (re-)queue it.
        record = JobRecord(
            job_id=job_id, spec=spec, state=STATE_QUEUED,
            base_key=plan.base_key or "", final_key=final_key,
            extraction_key=plan.extraction_key,
            created=existing.created if existing is not None else now,
            updated=now,
            attempts=existing.attempts if existing is not None else 0)
        record.add_event("queued", now, cold_phases=plan.cold_phases,
                         resume_phase=plan.resume_phase)
        self.save(record)
        return {
            "job_id": job_id,
            "state": STATE_QUEUED,
            "duplicate": False,
            "warm": False,
            "plan": plan_summary(plan),
            "job": record.public_view(),
        }

    # ------------------------------------------------------------------
    # Status / stats
    # ------------------------------------------------------------------
    def progress(self, record: JobRecord) -> Dict:
        """Per-phase progress for ``GET /jobs/<id>``: a fresh read-only
        plan against the store, with checkpoint presence and ages."""
        _, _, plan = self.plan_spec(record.spec)
        now = time.time()
        phases: List[Dict] = []
        for phase_plan in plan.phases:
            entry: Dict = {
                "name": phase_plan.name,
                "classification": phase_plan.classification,
                "cache_key": phase_plan.cache_key,
                "checkpoint_key": phase_plan.checkpoint_key,
            }
            checkpoint_key = phase_plan.checkpoint_key
            if checkpoint_key is not None and self.store.probe(
                    checkpoint_key, expected_kind=KIND_CHECKPOINT):
                entry["checkpoint_present"] = True
                try:
                    mtime = self.store.path_for(checkpoint_key).stat().st_mtime
                    entry["checkpoint_age"] = max(0.0, now - mtime)
                except OSError:  # pragma: no cover - raced with a delete
                    pass
            phases.append(entry)
        return {
            "fully_warm": plan.is_fully_warm,
            "cold_phases": plan.cold_phases,
            "restore_phase": plan.restore_phase,
            "resume_phase": plan.resume_phase,
            "resumed_phase": record.resumed_phase,
            "phases": phases,
        }

    def status(self, job_id: str) -> Optional[Dict]:
        record = self.load(job_id)
        if record is None:
            return None
        view = record.public_view()
        view["progress"] = self.progress(record)
        return view

    def stats(self) -> Dict:
        """Queue depth, lease table, store summary and saturation-engine
        telemetry for ``GET /stats``."""
        states: Dict = {state: 0 for state in JOB_STATES}
        saturation: Dict = {"runs": 0, "ematch_ops": 0,
                            "saturation_seconds": 0.0, "engines": {}}
        for record in self.records():
            states[record.state] = states.get(record.state, 0) + 1
            for event in record.events:
                # Workers stamp completed cold runs with the engine that
                # saturated them and the e-nodes it scanned (warm serves
                # carry no ops — nothing was matched).
                if event.get("event") != "done" or not event.get("ematch_ops"):
                    continue
                saturation["runs"] += 1
                saturation["ematch_ops"] += event["ematch_ops"]
                saturation["saturation_seconds"] += event.get(
                    "saturation_seconds", 0.0)
                engine = event.get("engine") or "unknown"
                saturation["engines"][engine] = (
                    saturation["engines"].get(engine, 0) + 1)
        seconds = saturation["saturation_seconds"]
        saturation["ematch_ops_per_s"] = (
            round(saturation["ematch_ops"] / seconds, 1) if seconds else 0.0)
        saturation["engines"] = dict(sorted(saturation["engines"].items()))
        leases: Dict = {}
        for key, payload in sorted(self.store.leases().items()):
            entry = dict(payload)
            entry["stale"] = self.store.lease_is_stale(payload or None)
            leases[key] = entry
        entries = self.store.entries()
        kinds: Dict = {}
        for entry_record in entries:
            kinds[entry_record.kind] = kinds.get(entry_record.kind, 0) + 1
        return {
            "jobs": states,
            "queue_depth": states[STATE_QUEUED],
            "saturation": saturation,
            "leases": leases,
            "store": {
                "artifacts": len(entries),
                "total_bytes": self.store.total_bytes(),
                "kinds": dict(sorted(kinds.items())),
            },
        }
