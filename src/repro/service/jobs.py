"""Durable job model for the saturation service.

A *job* is one request to run the BoolE pipeline over one netlist with
one options set.  Jobs are persisted as ``kind="job"`` artifacts in the
same :class:`~repro.store.ArtifactStore` the pipeline caches into, keyed
by a stable digest of the planner's ``final_key`` — so two submissions
that would produce interchangeable results collapse onto one record, and
submission dedups against both finished artifacts *and* in-flight jobs
before any work is spawned.

States (``JobRecord.state``):

``queued``
    submitted, waiting for a worker to claim the final key's lease;
``planned``
    a worker claimed the lease and is re-planning against the store;
``running``
    the worker is executing the phase graph;
``done`` / ``failed``
    terminal; ``done`` records the result summary, ``failed`` the error.

``duplicate`` never appears on a record: it is the *submission-level*
state returned when a new request collapses onto a live record.

Job records are mutable coordination state at a stable key — unlike
every other artifact kind they are excluded from the store's
byte-identity guarantees (see ``docs/serialization.md``).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..aig import AIG
from ..core import BatchJob, BatchPlan, BoolEOptions, BoolEPipeline, \
    plan_batch
from ..core.phases import PipelinePlan
from ..store import (
    KIND_CHECKPOINT,
    KIND_JOB,
    KIND_SWEEP,
    ArtifactStore,
    SnapshotError,
    aig_from_wire,
    aig_to_wire,
    canonical_digest,
)

STATE_QUEUED = "queued"
STATE_PLANNED = "planned"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
#: Submission-level only: the request collapsed onto a live record.
STATE_DUPLICATE = "duplicate"

#: States a persisted record can carry.
JOB_STATES = (STATE_QUEUED, STATE_PLANNED, STATE_RUNNING,
              STATE_DONE, STATE_FAILED)
#: Records in these states have (or await) an active worker.
LIVE_STATES = frozenset({STATE_QUEUED, STATE_PLANNED, STATE_RUNNING})
TERMINAL_STATES = frozenset({STATE_DONE, STATE_FAILED})

#: Rollup states of a sweep record (computed from its member jobs).
SWEEP_RUNNING = "running"
SWEEP_DONE = "done"
SWEEP_FAILED = "failed"
SWEEP_TERMINAL_STATES = frozenset({SWEEP_DONE, SWEEP_FAILED})

#: Schedule classes a sweep item can land in: served inline from the
#: warm store, queued as an independent cold leader, queued behind a
#: prefix leader (dependency-gated), or collapsed onto a canonical job.
SWEEP_SCHEDULES = ("inline", "pool", "dependent", "duplicate")

#: Netlist generators a spec may name instead of shipping an AIG.
SPEC_ARCHES = ("rca", "csa", "booth", "wallace")

_MAX_WIDTH = 64
#: Server-side generator expansion cap: a cross product beyond this is a
#: client error, not a fleet-sized denial of service.
_MAX_SWEEP_JOBS = 256

#: BoolEOptions fields a spec may override over the wire.
_OPTION_FIELDS = frozenset(
    spec_field.name for spec_field in dataclasses.fields(BoolEOptions))


def job_key(final_key: str) -> str:
    """Stable job-record key for a planner ``final_key``.

    The record cannot live at ``final_key`` itself — the result artifact
    does — so it lives at a derived digest.  Same final key, same job id:
    that equality is what dedups submissions.
    """
    return canonical_digest({"kind": "job-key", "final": final_key})


def sweep_key(final_keys: Sequence[str]) -> str:
    """Stable sweep-record key for a planned batch's final keys.

    Content-derived on purpose: resubmitting the same sweep (same
    specs against the same codec version) lands on the same record, so
    sweeps dedup exactly like jobs do.  The member order is irrelevant —
    a sweep is a set of jobs plus a plan, not a sequence.
    """
    return canonical_digest({"kind": "sweep-key",
                             "finals": sorted(final_keys)})


def _build_arch_aig(arch: str, width: int, mapped: bool) -> AIG:
    """Materialise a generator-described netlist (post-mapped by default)."""
    from ..generators import (
        booth_multiplier,
        csa_multiplier,
        ripple_carry_adder,
        wallace_multiplier,
    )

    if arch == "rca":
        aig = ripple_carry_adder(width)[0]
    elif arch == "csa":
        aig = csa_multiplier(width).aig
    elif arch == "booth":
        aig = booth_multiplier(width).aig
    elif arch == "wallace":
        aig = wallace_multiplier(width).aig
    else:  # pragma: no cover - guarded by from_request
        raise ValueError(f"unknown arch {arch!r}")
    if mapped:
        from ..opt import post_mapping_flow
        aig = post_mapping_flow(aig)
    return aig


@dataclass
class JobSpec:
    """What to run: a netlist plus pipeline-option overrides.

    The netlist is always materialised to its wire form at submission
    time, so workers replay exactly the submitted structure without
    needing the generators (or their current implementation) to agree
    across hosts.  ``origin`` keeps the human-readable provenance when
    the spec came in as ``arch``/``width``.
    """

    aig_wire: Dict
    options: Dict = field(default_factory=dict)
    name: str = ""
    origin: Optional[Dict] = None

    @classmethod
    def from_request(cls, request: Dict) -> "JobSpec":
        """Validate and normalise a wire-level submission request.

        Accepts either ``{"aig": <wire>}`` or
        ``{"arch": "csa", "width": 4, "mapped": true}``, plus optional
        ``name`` and ``options`` (whitelisted ``BoolEOptions`` fields).
        Raises ``ValueError`` on anything malformed.
        """
        if not isinstance(request, dict):
            raise ValueError("job request must be a JSON object")
        options = request.get("options", {})
        if not isinstance(options, dict):
            raise ValueError("options must be an object")
        unknown = sorted(set(options) - _OPTION_FIELDS)
        if unknown:
            raise ValueError(f"unknown option fields: {', '.join(unknown)}")
        name = request.get("name", "")
        if not isinstance(name, str):
            raise ValueError("name must be a string")

        if "aig" in request:
            wire = request["aig"]
            if not isinstance(wire, dict):
                raise ValueError("aig must be a wire object")
            # Round-trip now so malformed netlists fail at submission,
            # not inside a worker.
            aig = aig_from_wire(wire)
            return cls(aig_wire=aig_to_wire(aig), options=dict(options),
                       name=name or "submitted-aig")

        arch = request.get("arch")
        if arch not in SPEC_ARCHES:
            raise ValueError(
                f"arch must be one of {', '.join(SPEC_ARCHES)} "
                "(or provide an explicit aig)")
        width = request.get("width")
        if not isinstance(width, int) or isinstance(width, bool) \
                or not 1 <= width <= _MAX_WIDTH:
            raise ValueError(f"width must be an int in [1, {_MAX_WIDTH}]")
        mapped = request.get("mapped", True)
        if not isinstance(mapped, bool):
            raise ValueError("mapped must be a boolean")
        aig = _build_arch_aig(arch, width, mapped)
        origin = {"arch": arch, "width": width, "mapped": mapped}
        default_name = f"{arch}-{width}" + ("" if mapped else "-raw")
        return cls(aig_wire=aig_to_wire(aig), options=dict(options),
                   name=name or default_name, origin=origin)

    def build_aig(self) -> AIG:
        return aig_from_wire(self.aig_wire)

    def build_options(self,
                      defaults: Optional[BoolEOptions] = None
                      ) -> BoolEOptions:
        """Service defaults overridden by this spec's option fields."""
        base = defaults if defaults is not None else BoolEOptions()
        return dataclasses.replace(base, **self.options)

    def options_signature(self) -> Tuple[Tuple[str, object], ...]:
        """Hashable identity of the overrides (pipeline-cache key)."""
        return tuple(sorted(self.options.items()))

    def to_payload(self) -> Dict:
        payload: Dict = {
            "name": self.name,
            "aig": self.aig_wire,
            "options": dict(self.options),
        }
        if self.origin is not None:
            payload["origin"] = dict(self.origin)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict) -> "JobSpec":
        origin = payload.get("origin")
        return cls(
            aig_wire=payload["aig"],
            options=dict(payload.get("options", {})),
            name=payload.get("name", ""),
            origin=dict(origin) if isinstance(origin, dict) else None,
        )


@dataclass
class JobRecord:
    """Durable state of one job, serialised as a ``kind="job"`` artifact.

    The scheduling fields added for sweeps — ``depends_on``,
    ``priority``, ``requires``, ``sweep_id`` — are queue metadata, not
    content: they never enter any cache fingerprint, and records written
    before they existed deserialise with neutral defaults.
    """

    job_id: str
    spec: JobSpec
    state: str
    base_key: str
    final_key: str
    extraction_key: Optional[str]
    created: float
    updated: float
    worker: Optional[str] = None
    attempts: int = 0
    error: Optional[str] = None
    resumed_phase: Optional[str] = None
    result: Dict = field(default_factory=dict)
    events: List[Dict] = field(default_factory=list)
    #: Store keys that must exist before a worker may claim this job —
    #: the DAG edges of a sweep (each is a prefix leader's final key,
    #: checked with a cheap :meth:`~repro.store.ArtifactStore.probe`).
    depends_on: List[str] = field(default_factory=list)
    #: Claim-ordering key: higher first, age breaks ties.
    priority: int = 0
    #: Capability tags a worker must offer to claim this job.
    requires: List[str] = field(default_factory=list)
    #: Sweep record this job was materialised by, if any.
    sweep_id: Optional[str] = None

    def to_payload(self) -> Dict:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_payload(),
            "state": self.state,
            "base_key": self.base_key,
            "final_key": self.final_key,
            "extraction_key": self.extraction_key,
            "created": self.created,
            "updated": self.updated,
            "worker": self.worker,
            "attempts": self.attempts,
            "error": self.error,
            "resumed_phase": self.resumed_phase,
            "result": dict(self.result),
            "events": [dict(event) for event in self.events],
            "depends_on": list(self.depends_on),
            "priority": self.priority,
            "requires": list(self.requires),
            "sweep_id": self.sweep_id,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "JobRecord":
        return cls(
            job_id=payload["job_id"],
            spec=JobSpec.from_payload(payload["spec"]),
            state=payload["state"],
            base_key=payload["base_key"],
            final_key=payload["final_key"],
            extraction_key=payload.get("extraction_key"),
            created=payload.get("created", 0.0),
            updated=payload.get("updated", 0.0),
            worker=payload.get("worker"),
            attempts=payload.get("attempts", 0),
            error=payload.get("error"),
            resumed_phase=payload.get("resumed_phase"),
            result=dict(payload.get("result", {})),
            events=[dict(event) for event in payload.get("events", [])],
            depends_on=[str(key) for key in payload.get("depends_on", [])],
            priority=int(payload.get("priority", 0)),
            requires=[str(tag) for tag in payload.get("requires", [])],
            sweep_id=payload.get("sweep_id"),
        )

    def add_event(self, event: str, at: float, **fields: object) -> Dict:
        """Append a phase-transition event (served by ``/jobs/<id>/events``)."""
        entry: Dict = {"seq": len(self.events), "event": event, "at": at}
        entry.update(fields)
        self.events.append(entry)
        return entry

    def public_view(self) -> Dict:
        """The record as served over HTTP: everything but the netlist."""
        payload = self.to_payload()
        spec = dict(payload["spec"])
        spec.pop("aig", None)
        payload["spec"] = spec
        return payload


def plan_summary(plan: PipelinePlan) -> Dict:
    """Compact wire form of a plan, incl. the saturation-work counter.

    ``saturations`` is the number of saturation phase bodies execution
    would run — the counter the warm-resubmission acceptance check
    asserts is zero.
    """
    saturating = {"saturate-r1", "saturate-r2"}
    executed = plan.executed_phases
    return {
        "name": plan.name,
        "base_key": plan.base_key,
        "final_key": plan.final_key,
        "extraction_key": plan.extraction_key,
        "fully_warm": plan.is_fully_warm,
        "predicts_cache_hit": plan.predicts_cache_hit,
        "cold_phases": plan.cold_phases,
        "executed_phases": executed,
        "restore_phase": plan.restore_phase,
        "resume_phase": plan.resume_phase,
        "saturations": sum(1 for name in executed if name in saturating),
    }


def _capability_tags(value: object) -> List[str]:
    """Validate a wire-level capability-tag list (sorted, deduped)."""
    if not isinstance(value, list) or not all(
            isinstance(tag, str) and tag for tag in value):
        raise ValueError("requires must be a list of capability tags")
    return sorted(set(value))


def _priority_value(value: object) -> int:
    """Validate a wire-level priority (plain int; bool is a type error)."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError("priority must be an integer")
    return value


def _expand_generator(generator: object) -> List[Dict]:
    """Expand a generator spec into per-job requests (cross product)."""
    if not isinstance(generator, dict):
        raise ValueError("generator must be a JSON object")
    known = {"arch", "archs", "widths", "mapped", "options", "option_sets"}
    unknown = sorted(set(generator) - known)
    if unknown:
        raise ValueError(
            f"unknown generator fields: {', '.join(unknown)}")
    archs = generator.get("archs")
    if archs is None and "arch" in generator:
        archs = [generator["arch"]]
    if not isinstance(archs, list) or not archs:
        raise ValueError("generator needs a non-empty archs list (or arch)")
    widths = generator.get("widths")
    if not isinstance(widths, list) or not widths:
        raise ValueError("generator needs a non-empty widths list")
    mapped = generator.get("mapped", True)
    base_options = generator.get("options", {})
    if not isinstance(base_options, dict):
        raise ValueError("options must be an object")
    option_sets = generator.get("option_sets", [{}])
    if not isinstance(option_sets, list) or not option_sets:
        raise ValueError("option_sets must be a non-empty list")
    entries: List[Dict] = []
    for arch in archs:
        for width in widths:
            for option_set in option_sets:
                if not isinstance(option_set, dict):
                    raise ValueError("each option set must be an object")
                entries.append({
                    "arch": arch, "width": width, "mapped": mapped,
                    "options": {**base_options, **option_set}})
    return entries


def _sweep_rollup(states: Dict[str, int]) -> str:
    """Aggregate member-job states into the sweep's rollup state."""
    total = sum(states.values())
    if total and states.get(STATE_DONE, 0) == total:
        return SWEEP_DONE
    live = sum(states.get(state, 0) for state in sorted(LIVE_STATES))
    if states.get(STATE_FAILED, 0) and not live:
        return SWEEP_FAILED
    return SWEEP_RUNNING


@dataclass
class SweepRecord:
    """Durable aggregate state of one server-planned sweep.

    Serialised as a ``kind="sweep"`` artifact at :func:`sweep_key` of the
    member jobs' final keys.  ``items`` records one entry per submitted
    spec — ``{"name", "job_id", "final_key", "schedule", "depends_on"}``
    in submission order — and ``counts`` the per-schedule-class totals
    the planner decided.  ``state`` / ``result`` are the terminal rollup,
    refreshed from the member job records on every
    :meth:`JobService.sweep_status` read (sweeps have no worker of their
    own, so observation is the only actor that can roll them up).
    """

    sweep_id: str
    state: str
    created: float
    updated: float
    priority: int = 0
    requires: List[str] = field(default_factory=list)
    counts: Dict = field(default_factory=dict)
    plan: Dict = field(default_factory=dict)
    items: List[Dict] = field(default_factory=list)
    result: Dict = field(default_factory=dict)

    def to_payload(self) -> Dict:
        return {
            "sweep_id": self.sweep_id,
            "state": self.state,
            "created": self.created,
            "updated": self.updated,
            "priority": self.priority,
            "requires": list(self.requires),
            "counts": dict(self.counts),
            "plan": dict(self.plan),
            "items": [dict(item) for item in self.items],
            "result": dict(self.result),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "SweepRecord":
        return cls(
            sweep_id=payload["sweep_id"],
            state=payload["state"],
            created=payload.get("created", 0.0),
            updated=payload.get("updated", 0.0),
            priority=int(payload.get("priority", 0)),
            requires=[str(tag) for tag in payload.get("requires", [])],
            counts=dict(payload.get("counts", {})),
            plan=dict(payload.get("plan", {})),
            items=[dict(item) for item in payload.get("items", [])],
            result=dict(payload.get("result", {})),
        )


class JobService:
    """Submission, status and bookkeeping shared by server and worker.

    Everything durable lives in the :class:`~repro.store.ArtifactStore`;
    a ``JobService`` holds no state beyond a pipeline cache, so any
    number of servers and workers on any number of hosts coordinate
    through the store alone.
    """

    def __init__(self, store: Union[ArtifactStore, str, Path],
                 options: Optional[BoolEOptions] = None) -> None:
        self.store = (store if isinstance(store, ArtifactStore)
                      else ArtifactStore(store))
        self.defaults = options if options is not None else BoolEOptions()
        self._pipelines: Dict[Tuple[object, ...], BoolEPipeline] = {}

    # ------------------------------------------------------------------
    # Pipeline / planning
    # ------------------------------------------------------------------
    def pipeline_for_options(self,
                             options: Optional[BoolEOptions]
                             ) -> BoolEPipeline:
        """One cached pipeline per distinct resolved options object.

        Keyed on :meth:`~repro.core.BoolEOptions.cache_token`, the same
        identity the batch overlay planner uses, so sweep planning and
        single-job submission share pipelines (and their parsed rulesets
        and memoized fingerprints).
        """
        resolved = options if options is not None else self.defaults
        token = resolved.cache_token()
        pipeline = self._pipelines.get(token)
        if pipeline is None:
            pipeline = BoolEPipeline(resolved, store=self.store)
            self._pipelines[token] = pipeline
        return pipeline

    def pipeline_for(self, spec: JobSpec) -> BoolEPipeline:
        return self.pipeline_for_options(spec.build_options(self.defaults))

    def plan_spec(self, spec: JobSpec,
                  aig: Optional[AIG] = None
                  ) -> Tuple[BoolEPipeline, AIG, PipelinePlan]:
        pipeline = self.pipeline_for(spec)
        if aig is None:
            aig = spec.build_aig()
        plan = pipeline.plan(aig, store=self.store)
        if plan.final_key is None:  # pragma: no cover - store always set
            raise RuntimeError("planner produced no final key")
        return pipeline, aig, plan

    # ------------------------------------------------------------------
    # Record persistence
    # ------------------------------------------------------------------
    def load(self, job_id: str) -> Optional[JobRecord]:
        try:
            payload = self.store.get(job_id, expected_kind=KIND_JOB)
        except SnapshotError:
            return None
        if payload is None:
            return None
        return JobRecord.from_payload(payload)

    def save(self, record: JobRecord) -> None:
        self.store.put(record.job_id, record.to_payload(), kind=KIND_JOB,
                       meta={"state": record.state, "name": record.spec.name,
                             "final_key": record.final_key})

    def records(self) -> List[JobRecord]:
        """All job records, oldest submission first (then by id)."""
        loaded: List[JobRecord] = []
        for key, kind in sorted(self.store.kinds().items()):
            if kind != KIND_JOB:
                continue
            record = self.load(key)
            if record is not None:
                loaded.append(record)
        return sorted(loaded, key=lambda record: (record.created,
                                                  record.job_id))

    def claimable(self,
                  capabilities: Optional[Sequence[str]] = None
                  ) -> List[JobRecord]:
        """Jobs a worker may (try to) claim, highest priority first.

        Queued jobs, plus planned/running jobs whose lease went stale —
        the owner died, so the next worker takes over and (thanks to the
        phase graph) resumes from the dead worker's deepest checkpoint.
        Three scheduling gates apply on top:

        * **dependencies** — a record whose ``depends_on`` keys are not
          all in the store yet is invisible (cheap existence probes, no
          deserialisation): its prefix leader has not landed the shared
          boundary artifact, so claiming it would re-saturate the prefix;
        * **capabilities** — with ``capabilities`` given (a worker's tag
          set, possibly empty), records requiring tags the worker does
          not offer are skipped; ``None`` disables the filter (the
          admin's whole-queue view);
        * **priority** — survivors sort by ``(-priority, created,
          job_id)``: explicit priority first, then age.
        """
        offered = (None if capabilities is None
                   else frozenset(capabilities))
        ready: List[JobRecord] = []
        for record in self.records():
            if record.state == STATE_QUEUED:
                pass
            elif record.state in (STATE_PLANNED, STATE_RUNNING):
                lease = self.store.read_lease(record.final_key)
                if not self.store.lease_is_stale(lease):
                    continue
            else:
                continue
            if (offered is not None
                    and not frozenset(record.requires) <= offered):
                continue
            if record.depends_on \
                    and not self.store.probe_all(record.depends_on):
                continue
            ready.append(record)
        ready.sort(key=lambda record: (-record.priority, record.created,
                                       record.job_id))
        return ready

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: Dict) -> Dict:
        """Plan a submission and serve/dedup/enqueue it.

        Returns a wire-level response: ``state`` is the submission
        outcome (``done`` served warm inline, ``duplicate`` collapsed
        onto a live job, ``queued`` enqueued for the fleet), ``plan`` the
        classification that decided it, ``job`` the current record.
        """
        spec = JobSpec.from_request(request)
        return self.submit_spec(spec)

    def _serve_warm(self, spec: JobSpec, aig: AIG, plan: PipelinePlan,
                    now: float,
                    sweep_id: Optional[str] = None
                    ) -> Tuple[JobRecord, bool]:
        """Run a fully-warm spec inline and persist its done record.

        Every boundary artifact is in the store, so serving the result
        costs one snapshot load — no worker round-trip.  Returns the
        record and whether one already existed.
        """
        pipeline = self.pipeline_for(spec)
        result = pipeline.run(aig, store=self.store)
        final_key = plan.final_key or ""
        job_id = job_key(final_key)
        existing = self.load(job_id)
        record = existing if existing is not None else JobRecord(
            job_id=job_id, spec=spec, state=STATE_DONE,
            base_key=plan.base_key or "", final_key=final_key,
            extraction_key=plan.extraction_key,
            created=now, updated=now)
        record.state = STATE_DONE
        record.updated = now
        record.error = None
        record.result = result.summary()
        if sweep_id is not None:
            record.sweep_id = sweep_id
            record.add_event("served-warm", now, final_key=final_key,
                             sweep_id=sweep_id)
        else:
            record.add_event("served-warm", now, final_key=final_key)
        self.save(record)
        return record, existing is not None

    def submit_spec(self, spec: JobSpec) -> Dict:
        pipeline, aig, plan = self.plan_spec(spec)
        final_key = plan.final_key or ""
        job_id = job_key(final_key)
        existing = self.load(job_id)
        now = time.time()

        if plan.is_fully_warm:
            record, was_existing = self._serve_warm(spec, aig, plan, now)
            return {
                "job_id": job_id,
                "state": STATE_DONE,
                "duplicate": was_existing,
                "warm": True,
                "plan": plan_summary(plan),
                "result": record.result,
                "job": record.public_view(),
            }

        if existing is not None and existing.state in LIVE_STATES:
            # In-flight dedup: same final key, same job — no new work.
            return {
                "job_id": job_id,
                "state": STATE_DUPLICATE,
                "duplicate": True,
                "warm": False,
                "plan": plan_summary(plan),
                "job": existing.public_view(),
            }

        # New job, or a terminal record whose artifacts were evicted
        # (done-but-cold) or which failed: (re-)queue it.
        record = JobRecord(
            job_id=job_id, spec=spec, state=STATE_QUEUED,
            base_key=plan.base_key or "", final_key=final_key,
            extraction_key=plan.extraction_key,
            created=existing.created if existing is not None else now,
            updated=now,
            attempts=existing.attempts if existing is not None else 0)
        record.add_event("queued", now, cold_phases=plan.cold_phases,
                         resume_phase=plan.resume_phase)
        self.save(record)
        return {
            "job_id": job_id,
            "state": STATE_QUEUED,
            "duplicate": False,
            "warm": False,
            "plan": plan_summary(plan),
            "job": record.public_view(),
        }

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def expand_sweep_request(self, request: Dict) -> Tuple[
            List[Tuple[JobSpec, int, List[str]]], int, List[str]]:
        """Validate a sweep request into ``(spec, priority, requires)``.

        Accepts ``{"jobs": [<job request>, ...]}`` or
        ``{"generator": {...}}`` — a cross product of
        ``archs × widths × option_sets`` expanded server-side — plus
        top-level ``priority`` / ``requires`` defaults each job request
        may override.  Job names are uniquified with ``#<n>`` suffixes so
        every sweep item is addressable.  Returns the members plus the
        sweep-level priority and capability tags; raises ``ValueError``
        on malformed input or an expansion beyond the server cap.
        """
        if not isinstance(request, dict):
            raise ValueError("sweep request must be a JSON object")
        priority = _priority_value(request.get("priority", 0))
        requires = _capability_tags(request.get("requires", []))
        if ("jobs" in request) == ("generator" in request):
            raise ValueError(
                "sweep request needs exactly one of jobs or generator")
        if "jobs" in request:
            entries = request["jobs"]
            if not isinstance(entries, list):
                raise ValueError("jobs must be a list of job requests")
        else:
            entries = _expand_generator(request["generator"])
        if not entries:
            raise ValueError("sweep expands to zero jobs")
        if len(entries) > _MAX_SWEEP_JOBS:
            raise ValueError(f"sweep expands to {len(entries)} jobs "
                             f"(cap {_MAX_SWEEP_JOBS})")
        members: List[Tuple[JobSpec, int, List[str]]] = []
        seen_names: Dict[str, int] = {}
        for entry in entries:
            if not isinstance(entry, dict):
                raise ValueError("each sweep job must be a JSON object")
            entry = dict(entry)
            job_priority = _priority_value(entry.pop("priority", priority))
            job_requires = _capability_tags(entry.pop("requires", requires))
            spec = JobSpec.from_request(entry)
            count = seen_names.get(spec.name, 0)
            seen_names[spec.name] = count + 1
            if count:
                spec.name = f"{spec.name}#{count + 1}"
            members.append((spec, job_priority, job_requires))
        return members, priority, requires

    def plan_sweep(self, specs: Sequence[JobSpec]
                   ) -> Tuple[List[BatchJob], BatchPlan]:
        """Batch-plan the specs: one store-index read plus the overlay.

        Delegates to :func:`repro.core.plan_batch` — the same scheduling
        brain :class:`~repro.core.BatchPipeline` uses in-process — with
        this service's pipeline cache, so a sweep sharing one saturated
        prefix plans as one cold leader and N-1 dependents.
        """
        jobs = [BatchJob(name=spec.name, aig=spec.build_aig(),
                         options=spec.build_options(self.defaults))
                for spec in specs]
        return jobs, plan_batch(jobs, self.pipeline_for_options, self.store)

    def _enqueue_sweep_member(self, spec: JobSpec, plan: PipelinePlan,
                              now: float, *, sweep_id: str,
                              depends_on: List[str], priority: int,
                              requires: List[str],
                              schedule: str) -> JobRecord:
        """Queue one sweep member (unless a live record already covers it).

        Cross-sweep dedup: a live record at the same final key keeps its
        own scheduling metadata untouched — resetting it could strand a
        claimed lease.  New or terminal records are (re-)queued with the
        sweep's DAG edges and scheduling tags.
        """
        final_key = plan.final_key or ""
        jid = job_key(final_key)
        existing = self.load(jid)
        if existing is not None and existing.state in LIVE_STATES:
            return existing
        record = JobRecord(
            job_id=jid, spec=spec, state=STATE_QUEUED,
            base_key=plan.base_key or "", final_key=final_key,
            extraction_key=plan.extraction_key,
            created=existing.created if existing is not None else now,
            updated=now,
            attempts=existing.attempts if existing is not None else 0,
            depends_on=list(depends_on), priority=priority,
            requires=list(requires), sweep_id=sweep_id)
        record.add_event("queued", now, cold_phases=plan.cold_phases,
                         resume_phase=plan.resume_phase, schedule=schedule,
                         sweep_id=sweep_id)
        self.save(record)
        return record

    def submit_sweep(self, request: Dict) -> Dict:
        """Plan a whole sweep once, server-side, and materialise it.

        The batch overlay planner classifies every member against one
        read of the store index; the classification *is* the schedule:

        * ``inline`` — fully warm against the store right now, served on
          the front door (one snapshot load, no worker);
        * ``duplicate`` — collapses onto an earlier member's identical
          final key (same job id, no record written);
        * ``dependent`` — shares a saturated prefix an earlier cold
          member will write; queued with ``depends_on=[<leader's final
          key>]`` so no worker claims it before the leader lands;
        * ``pool`` — an independent cold job, queued for the fleet.

        A ``kind="sweep"`` record tracks the aggregate.  Raises
        ``ValueError`` (HTTP 400) when any member fails to plan.
        """
        members, priority, requires = self.expand_sweep_request(request)
        jobs, plan = self.plan_sweep([spec for spec, _, _ in members])
        errors = sorted((item.name, item.error) for item in plan.items
                        if item.error is not None)
        if errors:
            details = "; ".join(f"{name}: {error}"
                                for name, error in errors)
            raise ValueError(f"sweep failed to plan: {details}")
        finals = {item.name: item.final_key or "" for item in plan.items}
        sweep_id = sweep_key(list(finals.values()))
        existing_sweep = self.load_sweep(sweep_id)
        now = time.time()

        counts: Dict[str, int] = {schedule: 0
                                  for schedule in SWEEP_SCHEDULES}
        items: List[Dict] = []
        for (spec, job_priority, job_requires), job, item in zip(
                members, jobs, plan.items):
            item_plan = item.plan
            if item_plan is None:  # pragma: no cover - errors raised above
                raise RuntimeError(f"missing plan for {item.name}")
            final_key = finals[item.name]
            depends_on: List[str] = []
            if item.duplicate_of is not None:
                # Same final key as the canonical member — same job id,
                # so its record (and result) is already the dedup target.
                schedule = "duplicate"
            elif item_plan.is_fully_warm:
                schedule = "inline"
                self._serve_warm(spec, job.aig, item_plan, now,
                                 sweep_id=sweep_id)
            else:
                if item.prefix_leader is not None:
                    schedule = "dependent"
                    depends_on = [finals[item.prefix_leader]]
                else:
                    schedule = "pool"
                self._enqueue_sweep_member(
                    spec, item_plan, now, sweep_id=sweep_id,
                    depends_on=depends_on, priority=job_priority,
                    requires=job_requires, schedule=schedule)
            counts[schedule] += 1
            items.append({
                "name": item.name,
                "job_id": job_key(final_key),
                "final_key": final_key,
                "schedule": schedule,
                "depends_on": list(depends_on),
            })

        sweep = SweepRecord(
            sweep_id=sweep_id, state=SWEEP_RUNNING,
            created=(existing_sweep.created
                     if existing_sweep is not None else now),
            updated=now, priority=priority, requires=list(requires),
            counts=counts, plan=dict(plan.summary()), items=items)
        self.save_sweep(sweep)
        status = self.sweep_status(sweep_id)
        if status is None:  # pragma: no cover - just written
            raise RuntimeError("sweep record vanished after write")
        return {
            "sweep_id": sweep_id,
            "state": status["state"],
            "duplicate": existing_sweep is not None,
            "counts": dict(counts),
            "plan": dict(plan.summary()),
            "jobs": [dict(entry) for entry in items],
            "sweep": status,
        }

    def load_sweep(self, sweep_id: str) -> Optional[SweepRecord]:
        try:
            payload = self.store.get(sweep_id, expected_kind=KIND_SWEEP)
        except SnapshotError:
            return None
        if payload is None:
            return None
        return SweepRecord.from_payload(payload)

    def save_sweep(self, record: SweepRecord) -> None:
        self.store.put(record.sweep_id, record.to_payload(),
                       kind=KIND_SWEEP,
                       meta={"state": record.state,
                             "jobs": len(record.items)})

    def sweep_records(self) -> List[SweepRecord]:
        """All sweep records, oldest first (then by id)."""
        loaded: List[SweepRecord] = []
        for key, kind in sorted(self.store.kinds().items()):
            if kind != KIND_SWEEP:
                continue
            record = self.load_sweep(key)
            if record is not None:
                loaded.append(record)
        return sorted(loaded, key=lambda record: (record.created,
                                                  record.sweep_id))

    def sweep_status(self, sweep_id: str) -> Optional[Dict]:
        """The ``GET /sweeps/<id>`` view, rolled up from member jobs.

        Sweeps have no worker of their own, so observation is what
        advances them: every read recomputes the rollup from the member
        job records and persists it when it changed (or when a terminal
        rollup has no result summary yet).  ``progress`` additionally
        reports which queued members are still blocked on un-landed
        dependency artifacts — the live depth of the DAG.
        """
        record = self.load_sweep(sweep_id)
        if record is None:
            return None
        states: Dict[str, int] = {}
        job_states: Dict[str, str] = {}
        blocked = 0
        for item in record.items:
            job = self.load(str(item.get("job_id", "")))
            state = job.state if job is not None else STATE_QUEUED
            job_states[str(item.get("name", ""))] = state
            states[state] = states.get(state, 0) + 1
            if job is not None and state == STATE_QUEUED \
                    and job.depends_on \
                    and self.store.missing_keys(job.depends_on):
                blocked += 1
        rollup = _sweep_rollup(states)
        if rollup != record.state or (
                rollup in SWEEP_TERMINAL_STATES and not record.result):
            record.state = rollup
            record.updated = time.time()
            if rollup in SWEEP_TERMINAL_STATES:
                record.result = {"jobs": len(record.items),
                                 "states": dict(sorted(states.items()))}
            self.save_sweep(record)
        view = record.to_payload()
        view["progress"] = {
            "states": dict(sorted(states.items())),
            "job_states": job_states,
            "blocked_on_dependency": blocked,
        }
        return view

    # ------------------------------------------------------------------
    # Status / stats
    # ------------------------------------------------------------------
    def progress(self, record: JobRecord) -> Dict:
        """Per-phase progress for ``GET /jobs/<id>``: a fresh read-only
        plan against the store, with checkpoint presence and ages."""
        _, _, plan = self.plan_spec(record.spec)
        now = time.time()
        phases: List[Dict] = []
        for phase_plan in plan.phases:
            entry: Dict = {
                "name": phase_plan.name,
                "classification": phase_plan.classification,
                "cache_key": phase_plan.cache_key,
                "checkpoint_key": phase_plan.checkpoint_key,
            }
            checkpoint_key = phase_plan.checkpoint_key
            if checkpoint_key is not None and self.store.probe(
                    checkpoint_key, expected_kind=KIND_CHECKPOINT):
                entry["checkpoint_present"] = True
                try:
                    mtime = self.store.path_for(checkpoint_key).stat().st_mtime
                    entry["checkpoint_age"] = max(0.0, now - mtime)
                except OSError:  # pragma: no cover - raced with a delete
                    pass
            phases.append(entry)
        return {
            "fully_warm": plan.is_fully_warm,
            "cold_phases": plan.cold_phases,
            "restore_phase": plan.restore_phase,
            "resume_phase": plan.resume_phase,
            "resumed_phase": record.resumed_phase,
            "phases": phases,
        }

    def status(self, job_id: str) -> Optional[Dict]:
        record = self.load(job_id)
        if record is None:
            return None
        view = record.public_view()
        view["progress"] = self.progress(record)
        return view

    def stats(self) -> Dict:
        """Queue depth, lease table, store summary and saturation-engine
        telemetry for ``GET /stats``."""
        states: Dict = {state: 0 for state in JOB_STATES}
        saturation: Dict = {"runs": 0, "ematch_ops": 0,
                            "saturation_seconds": 0.0, "engines": {}}
        job_state_by_id: Dict[str, str] = {}
        blocked_jobs = 0
        for record in self.records():
            states[record.state] = states.get(record.state, 0) + 1
            job_state_by_id[record.job_id] = record.state
            if record.state == STATE_QUEUED and record.depends_on \
                    and not self.store.probe_all(record.depends_on):
                blocked_jobs += 1
            for event in record.events:
                # Workers stamp completed cold runs with the engine that
                # saturated them and the e-nodes it scanned (warm serves
                # carry no ops — nothing was matched).
                if event.get("event") != "done" or not event.get("ematch_ops"):
                    continue
                saturation["runs"] += 1
                saturation["ematch_ops"] += event["ematch_ops"]
                saturation["saturation_seconds"] += event.get(
                    "saturation_seconds", 0.0)
                engine = event.get("engine") or "unknown"
                saturation["engines"][engine] = (
                    saturation["engines"].get(engine, 0) + 1)
        seconds = saturation["saturation_seconds"]
        saturation["ematch_ops_per_s"] = (
            round(saturation["ematch_ops"] / seconds, 1) if seconds else 0.0)
        saturation["engines"] = dict(sorted(saturation["engines"].items()))
        leases: Dict = {}
        for key, payload in sorted(self.store.leases().items()):
            entry = dict(payload)
            entry["stale"] = self.store.lease_is_stale(payload or None)
            leases[key] = entry
        entries = self.store.entries()
        kinds: Dict = {}
        for entry_record in entries:
            kinds[entry_record.kind] = kinds.get(entry_record.kind, 0) + 1
        # Sweep rollups are recomputed live from the job states gathered
        # above (the durable sweep state only refreshes on /sweeps/<id>
        # reads, so it can lag the fleet).
        sweep_states: Dict[str, int] = {}
        schedules: Dict[str, int] = {schedule: 0
                                     for schedule in SWEEP_SCHEDULES}
        live_sweeps = 0
        sweeps = self.sweep_records()
        for sweep in sweeps:
            member_states: Dict[str, int] = {}
            for item in sweep.items:
                state = job_state_by_id.get(str(item.get("job_id", "")),
                                            STATE_QUEUED)
                member_states[state] = member_states.get(state, 0) + 1
            rollup = (_sweep_rollup(member_states) if sweep.items
                      else sweep.state)
            sweep_states[rollup] = sweep_states.get(rollup, 0) + 1
            if rollup not in SWEEP_TERMINAL_STATES:
                live_sweeps += 1
            for schedule, count in sorted(sweep.counts.items()):
                schedules[schedule] = schedules.get(schedule, 0) + count
        return {
            "jobs": states,
            "queue_depth": states[STATE_QUEUED],
            "saturation": saturation,
            "leases": leases,
            "store": {
                "artifacts": len(entries),
                "total_bytes": self.store.total_bytes(),
                "kinds": dict(sorted(kinds.items())),
            },
            "sweeps": {
                "total": len(sweeps),
                "live": live_sweeps,
                "states": dict(sorted(sweep_states.items())),
                "schedules": dict(sorted(schedules.items())),
                "blocked_on_dependency": blocked_jobs,
            },
        }
