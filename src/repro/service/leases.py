"""Advisory leases over artifact-store keys.

A lease is a JSON sidecar next to a key's object slot
(``objects/<k[:2]>/<key>.json.gz.lease``, see
:meth:`~repro.store.ArtifactStore.lease_path_for`) holding the owner id
and a TTL'd heartbeat.  Workers claim the lease on a job's ``final_key``
before computing it, so multiple hosts' fleets carve up a sweep with no
coordinator beyond the shared filesystem:

* **claim** — ``os.open(O_CREAT | O_EXCL)``: the filesystem picks
  exactly one winner per slot; losers back off to other keys;
* **heartbeat** — the owner periodically rewrites the sidecar
  (atomic temp + rename) with a fresh timestamp, first re-reading it to
  detect that someone took the lease over (heartbeat returns ``False``
  and the deposed owner must abandon the job);
* **takeover** — a lease whose heartbeat is older than its TTL is
  *stale*: any worker may remove it and re-race the O_EXCL claim —
  again exactly one winner.  Combined with the phase graph's
  checkpoint/resume, the successor continues the dead worker's job
  from its deepest checkpoint.

Leases are advisory: nothing in :class:`~repro.store.ArtifactStore`
enforces them, and because store writes are content-addressed and
idempotent, a double execution during a pathological race costs wasted
work, never a wrong or torn artifact.  ``ArtifactStore.verify``/``gc``
collect stale sidecars so a crashed fleet self-heals.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..store import ArtifactStore

#: Default heartbeat-expiry window, seconds.  Heartbeats are expected
#: every few seconds, so an order of magnitude of slack keeps takeover
#: prompt without false-positive steals under load.
DEFAULT_TTL = 30.0


def default_owner() -> str:
    """Hostname+pid owner id, unique per worker process per host."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass
class Lease:
    """A successfully claimed lease on one store key."""

    key: str
    owner: str
    path: Path
    acquired: float
    ttl: float
    #: Set when the claim displaced a stale previous owner.
    taken_over_from: Optional[str] = None


class LeaseManager:
    """Claim, heartbeat and release leases against one artifact store."""

    def __init__(self, store: Union[ArtifactStore, str, Path], *,
                 owner: Optional[str] = None,
                 ttl: float = DEFAULT_TTL) -> None:
        self.store = (store if isinstance(store, ArtifactStore)
                      else ArtifactStore(store))
        self.owner = owner if owner is not None else default_owner()
        self.ttl = float(ttl)

    # ------------------------------------------------------------------
    def _payload(self, acquired: float, heartbeat: float) -> Dict:
        return {"owner": self.owner, "acquired": acquired,
                "heartbeat": heartbeat, "ttl": self.ttl}

    def _write_exclusive(self, path: Path, payload: Dict) -> bool:
        """Create ``path`` with ``payload`` iff it does not exist."""
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            descriptor = os.open(path,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(descriptor, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, sort_keys=True)
        return True

    def _overwrite(self, path: Path, payload: Dict) -> None:
        """Atomically replace ``path`` (temp + rename, heartbeat path)."""
        temp = path.with_name(path.name + f".tmp-{self.owner.rsplit(':', 1)[-1]}")
        with open(temp, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, sort_keys=True)
        os.replace(temp, path)

    # ------------------------------------------------------------------
    def claim(self, key: str) -> Optional[Lease]:
        """Try to acquire the lease on ``key``; ``None`` when held.

        Fresh claims race on ``O_EXCL`` creation — exactly one caller
        wins.  A stale lease (heartbeat older than its TTL, or an
        unreadable sidecar) is removed and the claim retried once; the
        unlink/recreate window re-races through ``O_EXCL`` again, so
        concurrent takeovers still elect a single winner.
        """
        path = self.store.lease_path_for(key)
        now = time.time()
        if self._write_exclusive(path, self._payload(now, now)):
            return Lease(key=key, owner=self.owner, path=path,
                         acquired=now, ttl=self.ttl)

        current = self.store.read_lease(key)
        if not self.store.lease_is_stale(current, now=now):
            return None
        # Stale (or corrupt): take it over.  Ignore a concurrent unlink.
        previous = (current or {}).get("owner")
        try:
            os.unlink(path)
        except OSError as error:  # pragma: no cover - takeover race
            if error.errno != errno.ENOENT:
                raise
        now = time.time()
        if self._write_exclusive(path, self._payload(now, now)):
            return Lease(key=key, owner=self.owner, path=path,
                         acquired=now, ttl=self.ttl,
                         taken_over_from=(previous if isinstance(previous, str)
                                          else None))
        return None

    def heartbeat(self, lease: Lease) -> bool:
        """Refresh ``lease``; ``False`` when ownership was lost.

        Re-reads the sidecar first: if another worker took the lease
        over (or collected it), the deposed owner must stop working the
        key — its artifacts stay valid (content-addressed), but the
        terminal job state belongs to the new owner.
        """
        current = self.store.read_lease(lease.key)
        if current is None or current.get("owner") != self.owner:
            return False
        self._overwrite(lease.path,
                        self._payload(lease.acquired, time.time()))
        return True

    def release(self, lease: Lease) -> None:
        """Drop the lease (only if still ours); idempotent."""
        current = self.store.read_lease(lease.key)
        if current is not None and current.get("owner") != self.owner:
            return
        try:
            os.unlink(lease.path)
        except OSError as error:
            if error.errno != errno.ENOENT:  # pragma: no cover
                raise
