"""Asyncio HTTP front door for the saturation service.

A deliberately minimal HTTP/1.1 layer over ``asyncio.start_server`` —
stdlib-only, matching the repo's zero-dependency policy.  One request
per connection (``Connection: close``), JSON bodies, and one streaming
endpoint (newline-delimited JSON events).

Endpoints (see ``docs/service.md``):

* ``POST /jobs`` — submit a job spec; fully-warm results are served
  inline from the store (no worker round-trip), cold keys are enqueued;
* ``POST /sweeps`` — submit a job list or a generator cross product;
  planned once server-side and materialised as a DAG of jobs (inline /
  pool / dependent / duplicate — see ``JobService.submit_sweep``);
* ``GET /jobs/<id>`` — record + per-phase progress (classification,
  checkpoint presence/ages, ``resumed_phase``);
* ``GET /jobs/<id>/events`` — phase transitions as NDJSON, streamed
  until the job reaches a terminal state;
* ``GET /sweeps/<id>`` — sweep record + live member rollup;
* ``GET /healthz`` — liveness;
* ``GET /stats`` — queue depth, lease table, store summary, sweeps.

Blocking :class:`~repro.service.jobs.JobService` calls (planning, warm
inline serves) run in the default thread-pool executor so slow clients
never stall the accept loop.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, TypeVar, Union

_T = TypeVar("_T")

from ..core import BoolEOptions
from ..store import ArtifactStore
from .jobs import TERMINAL_STATES, JobService

_MAX_BODY = 32 * 1024 * 1024
_MAX_HEADER_LINE = 64 * 1024

#: How often the events endpoint re-reads the job record.
_EVENT_POLL_SECONDS = 0.2
#: Hard cap on one events stream, seconds.
_EVENT_STREAM_TIMEOUT = 300.0

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error"}


class _BadRequest(Exception):
    """Malformed HTTP or JSON from the client (mapped to 400/413)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class ServiceServer:
    """The async front door; all durable state lives in the store."""

    def __init__(self, store: Union[ArtifactStore, str, Path], *,
                 host: str = "127.0.0.1", port: int = 0,
                 options: Optional[BoolEOptions] = None) -> None:
        self.service = JobService(store, options)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting (resolves ``port=0`` to the real one)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- background-thread mode (tests, examples, embedded use) --------
    def start_background(self) -> None:
        """Run the server in a daemon thread; returns once bound."""
        ready = threading.Event()

        def _run() -> None:
            asyncio.run(self._background_main(ready))

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="repro-service-server")
        self._thread.start()
        if not ready.wait(timeout=30.0):  # pragma: no cover - startup hang
            raise RuntimeError("service server failed to start")

    async def _background_main(self, ready: threading.Event) -> None:
        await self.start()
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        ready.set()
        await self._stop_event.wait()
        await self.stop()

    def stop_background(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            stop_event = self._stop_event
            self._loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
            except _BadRequest as error:
                await self._send_json(writer, error.status,
                                      {"error": str(error)})
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            await self._dispatch(writer, method, path, body)
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_head(self, reader: asyncio.StreamReader
                         ) -> Tuple[str, str, Dict]:
        request_line = await reader.readline()
        if not request_line:
            raise _BadRequest("empty request")
        try:
            method, target, _version = (
                request_line.decode("ascii").split(None, 2))
        except ValueError:
            raise _BadRequest("malformed request line") from None
        headers: Dict = {}
        while True:
            line = await reader.readline()
            if len(line) > _MAX_HEADER_LINE:
                raise _BadRequest("header line too long")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict) -> bytes:
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest("bad Content-Length") from None
        if length < 0 or length > _MAX_BODY:
            raise _BadRequest("body too large", status=413)
        if length == 0:
            return b""
        return await reader.readexactly(length)

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: Dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("ascii") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, writer: asyncio.StreamWriter, method: str,
                        path: str, body: bytes) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {"ok": True})
            return
        if path == "/stats" and method == "GET":
            stats = await self._call(self.service.stats)
            await self._send_json(writer, 200, stats)
            return
        if path == "/jobs" and method == "POST":
            await self._handle_submit(writer, body)
            return
        if path == "/sweeps" and method == "POST":
            await self._handle_submit_sweep(writer, body)
            return
        if path.startswith("/sweeps/"):
            parts = [part for part in path.split("/") if part]
            if method != "GET":
                await self._send_json(writer, 405,
                                      {"error": "method not allowed"})
                return
            if len(parts) == 2:
                await self._handle_sweep_status(writer, parts[1])
                return
        if path.startswith("/jobs/"):
            parts = [part for part in path.split("/") if part]
            if method != "GET":
                await self._send_json(writer, 405,
                                      {"error": "method not allowed"})
                return
            if len(parts) == 2:
                await self._handle_status(writer, parts[1])
                return
            if len(parts) == 3 and parts[2] == "events":
                await self._handle_events(writer, parts[1])
                return
        await self._send_json(writer, 404, {"error": f"no route {path}"})

    async def _call(self, func: Callable[..., _T], *args: object) -> _T:
        """Run a blocking JobService call off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, func, *args)

    async def _handle_submit(self, writer: asyncio.StreamWriter,
                             body: bytes) -> None:
        try:
            request = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            await self._send_json(writer, 400, {"error": "invalid JSON body"})
            return
        try:
            response = await self._call(self.service.submit, request)
        except ValueError as error:
            await self._send_json(writer, 400, {"error": str(error)})
            return
        await self._send_json(writer, 200, response)

    async def _handle_submit_sweep(self, writer: asyncio.StreamWriter,
                                   body: bytes) -> None:
        try:
            request = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            await self._send_json(writer, 400, {"error": "invalid JSON body"})
            return
        try:
            response = await self._call(self.service.submit_sweep, request)
        except ValueError as error:
            await self._send_json(writer, 400, {"error": str(error)})
            return
        await self._send_json(writer, 200, response)

    async def _handle_sweep_status(self, writer: asyncio.StreamWriter,
                                   sweep_id: str) -> None:
        try:
            status = await self._call(self.service.sweep_status, sweep_id)
        except ValueError:
            status = None  # malformed id: same 404 as an unknown one
        if status is None:
            await self._send_json(writer, 404,
                                  {"error": f"unknown sweep {sweep_id}"})
            return
        await self._send_json(writer, 200, status)

    async def _handle_status(self, writer: asyncio.StreamWriter,
                             job_id: str) -> None:
        try:
            status = await self._call(self.service.status, job_id)
        except ValueError:
            status = None  # malformed id: same 404 as an unknown one
        if status is None:
            await self._send_json(writer, 404,
                                  {"error": f"unknown job {job_id}"})
            return
        await self._send_json(writer, 200, status)

    async def _handle_events(self, writer: asyncio.StreamWriter,
                             job_id: str) -> None:
        """Stream job events as NDJSON until the job is terminal."""
        try:
            record = await self._call(self.service.load, job_id)
        except ValueError:
            record = None
        if record is None:
            await self._send_json(writer, 404,
                                  {"error": f"unknown job {job_id}"})
            return
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("ascii"))
        await writer.drain()

        sent = 0
        deadline = (asyncio.get_running_loop().time()
                    + _EVENT_STREAM_TIMEOUT)
        while True:
            for event in record.events[sent:]:
                line = json.dumps(event, sort_keys=True) + "\n"
                writer.write(line.encode("utf-8"))
            if len(record.events) > sent:
                await writer.drain()
                sent = len(record.events)
            if record.state in TERMINAL_STATES:
                return
            if asyncio.get_running_loop().time() >= deadline:
                return  # stream cap; client re-connects for the rest
            await asyncio.sleep(_EVENT_POLL_SECONDS)
            refreshed = await self._call(self.service.load, job_id)
            if refreshed is None:  # pragma: no cover - record collected
                return
            record = refreshed
