"""repro.service: saturation-as-a-service over the shared artifact store.

The pipeline (PRs 3–6) is a pure, resumable, content-addressed, plannable
function; this package is the long-lived production layer on top of it
(documented in ``docs/service.md``):

* :mod:`repro.service.jobs` — the durable job model: ``JobSpec`` /
  ``JobRecord`` persisted as ``kind="job"`` artifacts keyed by the
  planner's final content key, so submission dedups against finished
  artifacts *and* in-flight jobs before any work is spawned; plus
  server-side sweeps (``SweepRecord``): a whole batch planned once with
  the prefix-sharing overlay and materialised as a DAG of jobs
  (``depends_on`` edges, ``priority`` ordering, ``requires``
  capability tags) the fleet drains without re-planning;
* :mod:`repro.service.leases` — advisory lease sidecars in the store
  (owner + TTL heartbeat, atomic claim, stale takeover) letting multiple
  hosts' fleets claim disjoint shards of a sweep with no coordination
  beyond the shared store;
* :mod:`repro.service.server` — the asyncio HTTP front door
  (``POST /jobs``, ``POST /sweeps``, ``GET /jobs/<id>``,
  ``GET /jobs/<id>/events``, ``GET /sweeps/<id>``, ``GET /healthz``,
  ``GET /stats``); warm results are served inline in milliseconds,
  cold keys are enqueued for the fleet;
* :mod:`repro.service.worker` — the fleet worker loop: claim a lease,
  run the phase-graph pipeline (kill/resume semantics inherited for
  free), heartbeat, write the terminal job state;
* :mod:`repro.service.client` — a small blocking HTTP client used by
  tests, examples and the CLI (``python -m repro.service``).
"""

from .client import ServiceClient, ServiceError
from .jobs import (
    JOB_STATES,
    LIVE_STATES,
    STATE_DONE,
    STATE_DUPLICATE,
    STATE_FAILED,
    STATE_PLANNED,
    STATE_QUEUED,
    STATE_RUNNING,
    SWEEP_DONE,
    SWEEP_FAILED,
    SWEEP_RUNNING,
    SWEEP_SCHEDULES,
    SWEEP_TERMINAL_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobService,
    JobSpec,
    SweepRecord,
    job_key,
    sweep_key,
)
from .leases import Lease, LeaseManager, default_owner
from .server import ServiceServer
from .worker import ServiceWorker

__all__ = [
    "JOB_STATES",
    "LIVE_STATES",
    "STATE_DONE",
    "STATE_DUPLICATE",
    "STATE_FAILED",
    "STATE_PLANNED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "SWEEP_DONE",
    "SWEEP_FAILED",
    "SWEEP_RUNNING",
    "SWEEP_SCHEDULES",
    "SWEEP_TERMINAL_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobService",
    "JobSpec",
    "SweepRecord",
    "job_key",
    "sweep_key",
    "Lease",
    "LeaseManager",
    "default_owner",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceWorker",
]
