"""Small blocking HTTP client for the saturation service.

Used by tests, :mod:`examples.service_demo` and the CLI.  One request
per connection (matching the server's ``Connection: close`` policy),
stdlib :mod:`http.client` only.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional

from .jobs import SWEEP_TERMINAL_STATES, TERMINAL_STATES


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Blocking client bound to one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, *,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            body: Optional[str] = None
            headers: Dict[str, str] = {}
            if payload is not None:
                body = json.dumps(payload, sort_keys=True)
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            try:
                document = json.loads(text) if text else {}
            except ValueError:
                document = {"error": text}
            if response.status >= 400:
                raise ServiceError(response.status,
                                   str(document.get("error", text)))
            if not isinstance(document, dict):
                raise ServiceError(response.status, "non-object response")
            return document
        finally:
            connection.close()

    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/stats")

    def submit(self, request: Dict) -> Dict:
        """POST a job spec; returns the submission response."""
        return self._request("POST", "/jobs", payload=request)

    def submit_sweep(self, request: Dict) -> Dict:
        """POST a sweep request (job list or generator cross product)."""
        return self._request("POST", "/sweeps", payload=request)

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")

    def sweep_status(self, sweep_id: str) -> Dict:
        return self._request("GET", f"/sweeps/{sweep_id}")

    def events(self, job_id: str) -> Iterator[Dict]:
        """Stream a job's NDJSON events until the server closes."""
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            connection.request("GET", f"/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                text = response.read().decode("utf-8")
                try:
                    document = json.loads(text)
                except ValueError:
                    document = {"error": text}
                raise ServiceError(response.status,
                                   str(document.get("error", text)))
            for raw_line in response:
                line = raw_line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                if isinstance(event, dict):
                    yield event
        finally:
            connection.close()

    # ------------------------------------------------------------------
    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll_interval: float = 0.2,
             deadline: Optional[float] = None) -> Dict:
        """Poll ``/jobs/<id>`` until terminal; returns the final status.

        ``deadline`` (a ``time.monotonic`` instant) overrides
        ``timeout`` — multi-job waits pass one shared deadline so the
        whole batch, not each member, gets the budget.  Raises
        ``TimeoutError`` when the job is still live at the deadline —
        the job itself keeps running server-side.
        """
        if deadline is None:
            deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.get('state')!r} "
                    "at the wait deadline")
            time.sleep(poll_interval)

    def sweep(self, requests: List[Dict], *,
              timeout: float = 300.0) -> List[Dict]:
        """Submit several specs and wait for all of them; returns the
        final status documents in submission order.

        ``timeout`` is one shared wall-clock budget for the whole sweep:
        every wait polls against the same deadline, so N slow jobs can
        never stretch the call to N × timeout.
        """
        deadline = time.monotonic() + timeout
        responses = [self.submit(request) for request in requests]
        finals: List[Dict] = []
        for response in responses:
            job_id = str(response["job_id"])
            if response.get("state") in TERMINAL_STATES:
                finals.append(self.status(job_id))
            else:
                finals.append(self.wait(job_id, deadline=deadline))
        return finals

    def wait_sweep(self, sweep_id: str, *, timeout: float = 300.0,
                   poll_interval: float = 0.2) -> Dict:
        """Poll ``/sweeps/<id>`` until its rollup is terminal.

        One shared wall-clock deadline, same semantics as :meth:`wait`;
        each poll also advances the server-side rollup (sweeps roll up
        on read).
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.sweep_status(sweep_id)
            if status.get("state") in SWEEP_TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"sweep {sweep_id} still {status.get('state')!r} "
                    "at the wait deadline")
            time.sleep(poll_interval)
