"""The ``dch``-style optimisation script and the post-mapping flow helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..aig import AIG
from ..netlist import MappingOptions, map_and_blast
from .restructure import (
    RestructureOptions,
    rebalance_and_trees,
    restructure_majorities,
    restructure_xor_trees,
)

__all__ = ["DchOptions", "dch_optimize", "post_mapping_flow"]


@dataclass
class DchOptions:
    """Options for the dch-style optimisation script.

    Attributes:
        restructure: options shared by the XOR/MAJ restructuring passes.
        rebalance: run the AND-tree balancing pass.
        rounds: number of times the script is repeated.
    """

    restructure: RestructureOptions = field(default_factory=RestructureOptions)
    rebalance: bool = True
    rounds: int = 1


def dch_optimize(aig: AIG, options: Optional[DchOptions] = None) -> AIG:
    """Run the dch-style optimisation script on an AIG.

    The script chains XOR-tree flattening/rebalancing, majority re-expression
    and AND-tree balancing.  It preserves functionality while fragmenting the
    adder-tree structure (Table II's "dch-optimised" configuration).
    """
    options = options or DchOptions()
    result = aig
    for _ in range(max(1, options.rounds)):
        result = restructure_xor_trees(result, options.restructure)
        result = restructure_majorities(result, options.restructure)
        if options.rebalance:
            result = rebalance_and_trees(result)
    return result


def post_mapping_flow(aig: AIG, optimize: bool = True,
                      dch_options: Optional[DchOptions] = None,
                      mapping_options: Optional[MappingOptions] = None) -> AIG:
    """The paper's post-mapping benchmark flow.

    Optionally runs dch-style optimisation, then technology-maps the netlist
    onto the ASAP7-like library and bit-blasts it back into an AIG — the
    representation every reasoning tool (ABC baseline, Gamora, BoolE) consumes.
    """
    result = dch_optimize(aig, dch_options) if optimize else aig
    return map_and_blast(result, options=mapping_options)
