"""Structure-changing AIG optimisation passes (``dch``-style).

The passes implemented here play the role of ABC's ``dch`` logic optimisation
in the paper's Table II flow: they preserve functionality but restructure the
netlist — flattening and re-balancing XOR and AND/OR trees across adder-block
boundaries and re-expressing majority cones — so that the block-boundary
signals cut enumeration relies on partially disappear.  Every pass is a
semantics-preserving AIG-to-AIG transformation (checked by equivalence tests).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..aig import AIG, lit_is_compl, lit_not, lit_var
from ..aig.truth_table import MAJ3_TABLE, XOR2_TABLE, table_mask
from ..cuts import cut_function, enumerate_cuts

__all__ = ["RestructureOptions", "restructure_xor_trees", "restructure_majorities",
           "rebalance_and_trees"]


@dataclass
class RestructureOptions:
    """Knobs for the restructuring passes.

    Attributes:
        max_xor_leaves: maximum size of a flattened XOR group; groups larger
            than an FA sum (3 leaves) only form when merging across block
            boundaries is allowed for a node.
        merge_fraction: fraction of eligible XOR roots whose groups may absorb
            nested XOR leaves from *other* blocks (deterministic per-node
            choice); this models the selective restructuring real optimisers
            perform under area/delay pressure.
        rewrite_majorities: re-express detected MAJ3 cones through an
            alternative AND/OR decomposition.
        seed: salt for the deterministic per-node merge decision.
    """

    max_xor_leaves: int = 6
    merge_fraction: float = 0.35
    rewrite_majorities: bool = True
    seed: int = 0


def _node_selected(var: int, fraction: float, seed: int) -> bool:
    """Deterministic pseudo-random per-node decision (stable across runs)."""
    if fraction >= 1.0:
        return True
    if fraction <= 0.0:
        return False
    digest = hashlib.sha256(f"{seed}:{var}".encode("ascii")).digest()
    value = int.from_bytes(digest[:4], "big") / 2**32
    return value < fraction


def _detect_xor2_nodes(aig: AIG, cuts) -> Dict[int, Tuple[int, int, bool]]:
    """Find nodes computing XOR2/XNOR2 of a 2-leaf cut.

    Returns a map ``var -> (leaf_a, leaf_b, is_xnor)``.
    """
    xors: Dict[int, Tuple[int, int, bool]] = {}
    mask2 = table_mask(2)
    for var, node_cuts in cuts.items():
        if not aig.is_gate_var(var):
            continue
        for cut in node_cuts:
            if cut.size != 2 or 0 in cut.leaves:
                continue
            table = cut_function(aig, cut)
            leaves = cut.sorted_leaves()
            if table == XOR2_TABLE:
                xors[var] = (leaves[0], leaves[1], False)
                break
            if table == (~XOR2_TABLE & mask2):
                xors[var] = (leaves[0], leaves[1], True)
                break
    return xors


def _collect_xor_group(aig: AIG, root: int, xors: Dict[int, Tuple[int, int, bool]],
                       options: RestructureOptions) -> Optional[Tuple[List[int], bool]]:
    """Flatten the XOR tree rooted at ``root``.

    Returns ``(leaf_vars, parity)`` where the root's function equals the XOR
    of the positive leaf variables complemented iff ``parity`` is True, or
    None if the root is not an XOR node.
    """
    if root not in xors:
        return None
    allow_merge = _node_selected(root, options.merge_fraction, options.seed)
    leaf_a, leaf_b, parity = xors[root]
    leaves = [leaf_a, leaf_b]
    changed = True
    while changed:
        changed = False
        for index, leaf in enumerate(leaves):
            if leaf not in xors:
                continue
            sub_a, sub_b, sub_parity = xors[leaf]
            new_leaves = leaves[:index] + leaves[index + 1:]
            for sub in (sub_a, sub_b):
                if sub in new_leaves:
                    # x ^ x cancels; removing both keeps the function.
                    new_leaves.remove(sub)
                else:
                    new_leaves.append(sub)
            if len(new_leaves) > options.max_xor_leaves:
                continue
            if len(new_leaves) > 3 and not allow_merge:
                continue
            leaves = new_leaves
            parity ^= sub_parity
            changed = True
            break
    if len(leaves) < 2:
        return None
    return leaves, parity


def restructure_xor_trees(aig: AIG, options: Optional[RestructureOptions] = None) -> AIG:
    """Flatten and re-balance XOR trees (sorted-leaf left chains).

    XOR roots whose flattened group crosses a block boundary (more than three
    leaves) are rebuilt directly from the deeper leaves, eliminating the
    intermediate sum signals of the absorbed blocks from that cone.
    """
    options = options or RestructureOptions()
    cuts = enumerate_cuts(aig, k=2, max_cuts_per_node=6)
    xors = _detect_xor2_nodes(aig, cuts)

    groups: Dict[int, Tuple[List[int], bool]] = {}
    for var in xors:
        group = _collect_xor_group(aig, var, xors, options)
        if group is not None:
            groups[var] = group

    new = AIG(name=aig.name)
    mapping: Dict[int, int] = {0: 0}
    for var in aig.inputs:
        mapping[var] = new.add_input(aig.input_names[var])

    def map_lit(lit: int) -> int:
        mapped = mapping[lit_var(lit)]
        return lit_not(mapped) if lit_is_compl(lit) else mapped

    for gate in aig.gates:
        var = gate.out_var
        group = groups.get(var)
        if group is not None:
            leaves, parity = group
            ordered = sorted(leaves)
            acc = mapping[ordered[0]]
            for leaf in ordered[1:]:
                acc = new.xor_(acc, mapping[leaf])
            mapping[var] = lit_not(acc) if parity else acc
        else:
            mapping[var] = new.and_(map_lit(gate.fanin0), map_lit(gate.fanin1))

    for lit, name in zip(aig.outputs, aig.output_names):
        new.add_output(map_lit(lit), name)
    return new.cleanup()


def restructure_majorities(aig: AIG, options: Optional[RestructureOptions] = None) -> AIG:
    """Re-express MAJ3 cones as ``(a | b) & (c | (a & b))``.

    This keeps the majority function but changes its local decomposition (and
    the polarity of internal nodes), the way mapping through AOI/OAI cells
    does.
    """
    options = options or RestructureOptions()
    if not options.rewrite_majorities:
        return aig.copy()
    cuts = enumerate_cuts(aig, k=3, max_cuts_per_node=8)
    mask3 = table_mask(3)
    majorities: Dict[int, Tuple[Tuple[int, int, int], bool]] = {}
    for var, node_cuts in cuts.items():
        if not aig.is_gate_var(var):
            continue
        for cut in node_cuts:
            if cut.size != 3 or 0 in cut.leaves:
                continue
            table = cut_function(aig, cut)
            if table == MAJ3_TABLE:
                majorities[var] = (cut.sorted_leaves(), False)
                break
            if table == (~MAJ3_TABLE & mask3):
                majorities[var] = (cut.sorted_leaves(), True)
                break

    new = AIG(name=aig.name)
    mapping: Dict[int, int] = {0: 0}
    for var in aig.inputs:
        mapping[var] = new.add_input(aig.input_names[var])

    def map_lit(lit: int) -> int:
        mapped = mapping[lit_var(lit)]
        return lit_not(mapped) if lit_is_compl(lit) else mapped

    for gate in aig.gates:
        var = gate.out_var
        match = majorities.get(var)
        if match is not None:
            (a, b, c), parity = match
            la, lb, lc = mapping[a], mapping[b], mapping[c]
            rebuilt = new.and_(new.or_(la, lb), new.or_(lc, new.and_(la, lb)))
            mapping[var] = lit_not(rebuilt) if parity else rebuilt
        else:
            mapping[var] = new.and_(map_lit(gate.fanin0), map_lit(gate.fanin1))

    for lit, name in zip(aig.outputs, aig.output_names):
        new.add_output(map_lit(lit), name)
    return new.cleanup()


def rebalance_and_trees(aig: AIG, max_leaves: int = 8) -> AIG:
    """Flatten single-fanout AND chains and rebuild them over sorted leaves.

    This is the AND/OR analogue of :func:`restructure_xor_trees` and models
    ABC's ``balance`` pass.  Multi-fanout nodes are kept as boundaries so no
    logic is duplicated.
    """
    fanouts = aig.fanout_map()

    new = AIG(name=aig.name)
    mapping: Dict[int, int] = {0: 0}
    for var in aig.inputs:
        mapping[var] = new.add_input(aig.input_names[var])

    def map_lit(lit: int) -> int:
        mapped = mapping[lit_var(lit)]
        return lit_not(mapped) if lit_is_compl(lit) else mapped

    def collect_and_leaves(lit: int, depth: int = 0) -> List[int]:
        """Collect the conjunction leaves (original literals) under ``lit``."""
        var = lit_var(lit)
        if (lit_is_compl(lit) or not aig.is_gate_var(var)
                or len(fanouts.get(var, ())) > 1 or depth >= 4):
            return [lit]
        gate = aig.gate_of(var)
        leaves = collect_and_leaves(gate.fanin0, depth + 1)
        leaves += collect_and_leaves(gate.fanin1, depth + 1)
        if len(leaves) > max_leaves:
            return [lit]
        return leaves

    for gate in aig.gates:
        var = gate.out_var
        leaves = collect_and_leaves(gate.fanin0) + collect_and_leaves(gate.fanin1)
        if len(leaves) > max_leaves:
            mapping[var] = new.and_(map_lit(gate.fanin0), map_lit(gate.fanin1))
            continue
        ordered = sorted(set(leaves))
        if len(ordered) != len(leaves):
            # Duplicate literals collapse (x & x); complementary pairs would
            # make the whole conjunction false, handled by and_ simplification.
            pass
        acc = map_lit(ordered[0])
        for leaf in ordered[1:]:
            acc = new.and_(acc, map_lit(leaf))
        mapping[var] = acc

    for lit, name in zip(aig.outputs, aig.output_names):
        new.add_output(map_lit(lit), name)
    return new.cleanup()
