"""Logic optimisation passes (dch-style restructuring)."""

from .dch import DchOptions, dch_optimize, post_mapping_flow
from .restructure import (
    RestructureOptions,
    rebalance_and_trees,
    restructure_majorities,
    restructure_xor_trees,
)

__all__ = [
    "DchOptions",
    "dch_optimize",
    "post_mapping_flow",
    "RestructureOptions",
    "rebalance_and_trees",
    "restructure_majorities",
    "restructure_xor_trees",
]
