"""Adder building blocks and adder-tree circuits.

The generators in this module return fresh :class:`~repro.aig.AIG` objects or
emit logic into an existing AIG builder.  They provide the ground-truth adder
structures that BoolE and the baselines try to recover from mapped/optimised
netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..aig import AIG

__all__ = [
    "FABlock",
    "ripple_carry_adder",
    "carry_save_reduce",
    "ripple_carry_sum",
    "build_ripple_carry_adder",
    "csa_upper_bound_fa",
    "booth_upper_bound_fa",
]


@dataclass(frozen=True)
class FABlock:
    """Record of one adder cell instantiated by a generator.

    Attributes:
        kind: ``"FA"`` for a full adder or ``"HA"`` for a half adder.
        inputs: the input literals of the cell.
        sum_lit: literal of the sum output.
        carry_lit: literal of the carry output.
    """

    kind: str
    inputs: Tuple[int, ...]
    sum_lit: int
    carry_lit: int


def ripple_carry_sum(aig: AIG, a_bits: Sequence[int], b_bits: Sequence[int],
                     carry_in: int = 0,
                     blocks: List[FABlock] | None = None) -> List[int]:
    """Add two bit-vectors inside ``aig`` with a ripple-carry chain.

    Args:
        aig: target AIG builder.
        a_bits: literals of the first operand, LSB first.
        b_bits: literals of the second operand, LSB first (same length as a).
        carry_in: literal of the incoming carry (defaults to constant 0).
        blocks: optional list collecting the instantiated FA/HA blocks.

    Returns:
        The sum literals, LSB first, with one extra bit for the final carry.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("operands must have equal width")
    carry = carry_in
    sums: List[int] = []
    for a, b in zip(a_bits, b_bits):
        operands = [lit for lit in (a, b, carry) if lit != 0]
        if len(operands) == 3:
            s, c = aig.full_adder(*operands)
            if blocks is not None:
                blocks.append(FABlock("FA", tuple(operands), s, c))
        elif len(operands) == 2:
            s, c = aig.half_adder(*operands)
            if blocks is not None:
                blocks.append(FABlock("HA", tuple(operands), s, c))
        elif len(operands) == 1:
            s, c = operands[0], 0
        else:
            s, c = 0, 0
        sums.append(s)
        carry = c
    sums.append(carry)
    return sums


def carry_save_reduce(aig: AIG, columns: List[List[int]],
                      blocks: List[FABlock] | None = None) -> List[List[int]]:
    """Perform one level of 3:2 carry-save reduction on partial-product columns.

    Each column is a list of literals with the same weight.  Groups of three
    literals in a column are replaced by a full adder (sum stays in the same
    column, carry moves to the next column); a leftover pair becomes a half
    adder.

    Returns:
        The reduced column structure.
    """
    width = len(columns)
    reduced: List[List[int]] = [[] for _ in range(width + 1)]
    for weight, column in enumerate(columns):
        index = 0
        while len(column) - index >= 3:
            a, b, c = column[index], column[index + 1], column[index + 2]
            s, carry = aig.full_adder(a, b, c)
            if blocks is not None:
                blocks.append(FABlock("FA", (a, b, c), s, carry))
            reduced[weight].append(s)
            reduced[weight + 1].append(carry)
            index += 3
        if len(column) - index == 2:
            a, b = column[index], column[index + 1]
            s, carry = aig.half_adder(a, b)
            if blocks is not None:
                blocks.append(FABlock("HA", (a, b), s, carry))
            reduced[weight].append(s)
            reduced[weight + 1].append(carry)
            index += 2
        elif len(column) - index == 1:
            reduced[weight].append(column[index])
            index += 1
    while reduced and not reduced[-1]:
        reduced.pop()
    return reduced


def ripple_carry_adder(width: int, name: str = "") -> Tuple[AIG, List[FABlock]]:
    """Build a standalone ``width``-bit ripple-carry adder AIG.

    Inputs are ``a0..a{width-1}, b0..b{width-1}, cin``; outputs are the sum
    bits and the final carry.

    Returns:
        ``(aig, blocks)`` where blocks records every instantiated FA.
    """
    aig = AIG(name=name or f"rca_{width}")
    a_bits = [aig.add_input(f"a{i}") for i in range(width)]
    b_bits = [aig.add_input(f"b{i}") for i in range(width)]
    carry_in = aig.add_input("cin")
    blocks: List[FABlock] = []
    sums = ripple_carry_sum(aig, a_bits, b_bits, carry_in=carry_in, blocks=blocks)
    for i, lit in enumerate(sums[:-1]):
        aig.add_output(lit, f"s{i}")
    aig.add_output(sums[-1], "cout")
    return aig, blocks


def build_ripple_carry_adder(width: int) -> AIG:
    """Convenience wrapper returning only the ripple-carry adder AIG."""
    aig, _ = ripple_carry_adder(width)
    return aig


def csa_upper_bound_fa(width: int) -> int:
    """Theoretical upper bound on FA count in an ``n``-bit CSA multiplier.

    The paper states the bound ``(n - 1)^2 - 1`` for an n-bit carry-save array
    multiplier (Section V, RQ1).
    """
    if width < 2:
        return 0
    return (width - 1) ** 2 - 1


def booth_upper_bound_fa(width: int) -> int:
    """Upper bound on FA count for the radix-4 Booth multiplier generator.

    Booth encoding roughly halves the number of partial products, so the adder
    tree contains roughly half the FAs of the CSA array.  The bound used here
    matches what exhaustive cut enumeration reports on our pre-mapping Booth
    netlists (see ``repro.baselines.abc_atree``); it is the reproduction
    analogue of the paper's Booth upper-bound curve.
    """
    if width < 2:
        return 0
    num_pp = width // 2 + 1
    return max(0, (num_pp - 1) * width - num_pp)
