"""Multiplier generators: carry-save-array (CSA) and radix-4 Booth multipliers.

These are the benchmark circuits of the BoolE paper.  Each generator returns
the AIG together with the list of adder blocks it instantiated, which serves
as the ground-truth adder tree (the theoretical upper bound on recoverable
full adders).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..aig import AIG, CONST0, lit_not
from .adders import FABlock, carry_save_reduce, ripple_carry_sum

__all__ = [
    "MultiplierCircuit",
    "csa_multiplier",
    "booth_multiplier",
    "wallace_multiplier",
    "generate_multiplier",
]


@dataclass
class MultiplierCircuit:
    """A generated multiplier together with its ground-truth adder tree.

    Attributes:
        aig: the generated AIG.
        width: operand bitwidth.
        architecture: ``"csa"``, ``"booth"`` or ``"wallace"``.
        signed: True for two's-complement semantics (Booth).
        blocks: FA/HA blocks instantiated by the generator (ground truth).
    """

    aig: AIG
    width: int
    architecture: str
    signed: bool
    blocks: List[FABlock]

    @property
    def num_full_adders(self) -> int:
        """Number of ground-truth full adders in the generated netlist."""
        return sum(1 for block in self.blocks if block.kind == "FA")

    @property
    def num_half_adders(self) -> int:
        """Number of ground-truth half adders in the generated netlist."""
        return sum(1 for block in self.blocks if block.kind == "HA")


def csa_multiplier(width: int, name: str = "") -> MultiplierCircuit:
    """Build an unsigned ``width``-bit carry-save-array multiplier.

    The construction is the textbook CSA array: ``width`` rows of partial
    products are accumulated row by row in carry-save form, followed by a
    ripple-carry vector-merge adder.  The resulting circuit contains exactly
    ``(width - 1)**2 - 1`` full adders, matching the theoretical upper bound
    quoted in the paper.

    Inputs are named ``a0..a{n-1}, b0..b{n-1}``; outputs ``p0..p{2n-1}``.
    """
    if width < 1:
        raise ValueError("width must be positive")
    aig = AIG(name=name or f"csa_mult_{width}")
    a_bits = [aig.add_input(f"a{i}") for i in range(width)]
    b_bits = [aig.add_input(f"b{i}") for i in range(width)]
    blocks: List[FABlock] = []

    # Partial products pp[i][j] = a_j & b_i, weight i + j.
    pp = [[aig.and_(a_bits[j], b_bits[i]) for j in range(width)]
          for i in range(width)]

    if width == 1:
        aig.add_output(pp[0][0], "p0")
        aig.add_output(CONST0, "p1")
        return MultiplierCircuit(aig, width, "csa", False, blocks)

    product: List[Optional[int]] = [None] * (2 * width)
    product[0] = pp[0][0]

    # Row-by-row carry-save accumulation.  ``sums``/``carries`` hold the
    # partial-sum and carry vectors leaving the previous adder row.
    sums = pp[0][:]            # weights 0..width-1
    carries = [CONST0] * width  # aligned with the *next* row's weights
    for i in range(1, width):
        new_sums: List[int] = [CONST0] * width
        new_carries: List[int] = [CONST0] * width
        for j in range(width):
            p_bit = pp[i][j]
            s_prev = sums[j + 1] if j + 1 < width else CONST0
            c_prev = carries[j]
            operands = [lit for lit in (p_bit, s_prev, c_prev) if lit != CONST0]
            if len(operands) == 3:
                s, c = aig.full_adder(*operands)
                blocks.append(FABlock("FA", tuple(operands), s, c))
            elif len(operands) == 2:
                s, c = aig.half_adder(*operands)
                blocks.append(FABlock("HA", tuple(operands), s, c))
            elif len(operands) == 1:
                s, c = operands[0], CONST0
            else:
                s, c = CONST0, CONST0
            new_sums[j] = s
            new_carries[j] = c
        product[i] = new_sums[0]
        sums = new_sums
        carries = new_carries

    # Vector-merge: add the remaining sum and carry vectors with ripple carry.
    merge_a = [sums[j + 1] if j + 1 < width else CONST0 for j in range(width)]
    merge_b = carries[:width]
    merged = ripple_carry_sum(aig, merge_a, merge_b, carry_in=CONST0,
                              blocks=blocks)
    for j in range(width):
        product[width + j] = merged[j]
    # ``merged`` has one extra carry bit but for width x width multiplication
    # the product fits in 2*width bits; the final carry is always zero here
    # because merge_a[width-1] is the constant 0.

    for position in range(2 * width):
        lit = product[position]
        aig.add_output(CONST0 if lit is None else lit, f"p{position}")
    return MultiplierCircuit(aig, width, "csa", False, blocks)


def _booth_digit(aig: AIG, b2: int, b1: int, b0: int) -> Tuple[int, int, int]:
    """Decode one radix-4 Booth digit from bits ``(b2, b1, b0)``.

    Returns ``(one, two, neg)`` control literals: ``one`` selects ±A,
    ``two`` selects ±2A, and ``neg`` selects the negative versions.
    """
    one = aig.xor_(b1, b0)
    two = aig.or_(aig.and_(b2, aig.and_(lit_not(b1), lit_not(b0))),
                  aig.and_(lit_not(b2), aig.and_(b1, b0)))
    neg = b2
    return one, two, neg


def booth_multiplier(width: int, name: str = "") -> MultiplierCircuit:
    """Build a signed ``width``-bit radix-4 Booth-encoded multiplier.

    Operands and the ``2*width``-bit product use two's-complement encoding.
    Partial products are generated with radix-4 Booth recoding (digits in
    {-2,-1,0,1,2}), sign-extended to the full product width, and reduced with
    a carry-save adder tree followed by a ripple-carry vector-merge adder.
    """
    if width < 2:
        raise ValueError("booth multiplier requires width >= 2")
    aig = AIG(name=name or f"booth_mult_{width}")
    a_bits = [aig.add_input(f"a{i}") for i in range(width)]
    b_bits = [aig.add_input(f"b{i}") for i in range(width)]
    blocks: List[FABlock] = []
    out_width = 2 * width

    def b_at(index: int) -> int:
        if index < 0:
            return CONST0
        if index >= width:
            return b_bits[width - 1]  # sign extension of the multiplier
        return b_bits[index]

    def a_at(index: int) -> int:
        if index >= width:
            return a_bits[width - 1]  # sign extension of the multiplicand
        return a_bits[index]

    num_digits = (width + 2) // 2
    columns: List[List[int]] = [[] for _ in range(out_width)]

    for digit_index in range(num_digits):
        base = 2 * digit_index
        one, two, neg = _booth_digit(aig, b_at(base + 1), b_at(base), b_at(base - 1))
        # Partial product bits: (one ? A : 0) | (two ? A << 1 : 0), then
        # conditionally inverted; the +1 of two's complement negation is a
        # separate correction bit added into column ``base``.
        for position in range(base, out_width):
            rel = position - base
            bit_one = aig.and_(one, a_at(rel))
            bit_two = aig.and_(two, a_at(rel - 1)) if rel >= 1 else CONST0
            raw = aig.or_(bit_one, bit_two)
            pp_bit = aig.xor_(raw, neg)
            columns[position].append(pp_bit)
        # Two's-complement correction bit (+1 whenever the digit is negated;
        # for the all-ones "digit 0 with neg=1" case this exactly cancels the
        # all-ones partial product).
        columns[base].append(neg)

    # Reduce the partial-product columns to two rows with 3:2 compressors.
    while max(len(column) for column in columns) > 2:
        columns = carry_save_reduce(aig, columns, blocks=blocks)
        columns = columns[:out_width]
        while len(columns) < out_width:
            columns.append([])

    row_a = [column[0] if len(column) >= 1 else CONST0 for column in columns]
    row_b = [column[1] if len(column) >= 2 else CONST0 for column in columns]
    merged = ripple_carry_sum(aig, row_a, row_b, carry_in=CONST0, blocks=blocks)
    for position in range(out_width):
        aig.add_output(merged[position], f"p{position}")
    return MultiplierCircuit(aig, width, "booth", True, blocks)


def wallace_multiplier(width: int, name: str = "") -> MultiplierCircuit:
    """Build an unsigned Wallace-tree multiplier (column-wise 3:2 reduction).

    Included as an additional architecture beyond the paper's two benchmark
    families; useful for extension experiments.
    """
    if width < 1:
        raise ValueError("width must be positive")
    aig = AIG(name=name or f"wallace_mult_{width}")
    a_bits = [aig.add_input(f"a{i}") for i in range(width)]
    b_bits = [aig.add_input(f"b{i}") for i in range(width)]
    blocks: List[FABlock] = []
    out_width = 2 * width

    columns: List[List[int]] = [[] for _ in range(out_width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(aig.and_(a_bits[j], b_bits[i]))

    while max((len(column) for column in columns), default=0) > 2:
        columns = carry_save_reduce(aig, columns, blocks=blocks)
        columns = columns[:out_width]
        while len(columns) < out_width:
            columns.append([])

    row_a = [column[0] if len(column) >= 1 else CONST0 for column in columns]
    row_b = [column[1] if len(column) >= 2 else CONST0 for column in columns]
    merged = ripple_carry_sum(aig, row_a, row_b, carry_in=CONST0, blocks=blocks)
    for position in range(out_width):
        aig.add_output(merged[position], f"p{position}")
    return MultiplierCircuit(aig, width, "wallace", False, blocks)


def generate_multiplier(architecture: str, width: int) -> MultiplierCircuit:
    """Dispatch helper used by the benchmark harness.

    Args:
        architecture: ``"csa"``, ``"booth"`` or ``"wallace"``.
        width: operand bitwidth.
    """
    architecture = architecture.lower()
    if architecture == "csa":
        return csa_multiplier(width)
    if architecture == "booth":
        return booth_multiplier(width)
    if architecture == "wallace":
        return wallace_multiplier(width)
    raise ValueError(f"unknown multiplier architecture: {architecture!r}")
