"""Arithmetic circuit generators (adders, CSA/Booth/Wallace multipliers)."""

from .adders import (
    FABlock,
    booth_upper_bound_fa,
    build_ripple_carry_adder,
    carry_save_reduce,
    csa_upper_bound_fa,
    ripple_carry_adder,
    ripple_carry_sum,
)
from .multipliers import (
    MultiplierCircuit,
    booth_multiplier,
    csa_multiplier,
    generate_multiplier,
    wallace_multiplier,
)

__all__ = [
    "FABlock",
    "booth_upper_bound_fa",
    "build_ripple_carry_adder",
    "carry_save_reduce",
    "csa_upper_bound_fa",
    "ripple_carry_adder",
    "ripple_carry_sum",
    "MultiplierCircuit",
    "booth_multiplier",
    "csa_multiplier",
    "generate_multiplier",
    "wallace_multiplier",
]
