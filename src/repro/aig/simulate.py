"""Random and exhaustive simulation helpers for AIGs.

These helpers are used by tests (semantic equivalence checks on arithmetic
circuits) and by the Gamora-style baseline, which consumes simulation
signatures as node features.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .aig import AIG

__all__ = [
    "random_simulation",
    "simulation_signatures",
    "evaluate_words",
    "multiplier_value_check",
]


def random_simulation(aig: AIG, num_patterns: int = 64,
                      seed: int = 0) -> Dict[int, int]:
    """Simulate ``num_patterns`` random input patterns.

    Returns a map from every variable to its packed simulation word.
    """
    rng = random.Random(seed)
    mask = (1 << num_patterns) - 1
    words = {var: rng.getrandbits(num_patterns) for var in aig.inputs}
    return aig.simulate(words, mask=mask)


def simulation_signatures(aig: AIG, num_patterns: int = 64,
                          seed: int = 0) -> Dict[int, int]:
    """Return per-variable simulation signatures (same as random_simulation)."""
    return random_simulation(aig, num_patterns=num_patterns, seed=seed)


def evaluate_words(aig: AIG, input_words: Sequence[int],
                   num_patterns: int) -> List[int]:
    """Simulate with explicit per-input words and return the output words.

    ``input_words`` must be ordered like ``aig.inputs``.
    """
    if len(input_words) != aig.num_inputs:
        raise ValueError("one word per primary input is required")
    mask = (1 << num_patterns) - 1
    words = {var: word & mask for var, word in zip(aig.inputs, input_words)}
    values = aig.simulate(words, mask=mask)
    return aig.output_words(values, mask)


def multiplier_value_check(aig: AIG, width_a: int, width_b: int,
                           samples: Optional[Sequence[Tuple[int, int]]] = None,
                           signed: bool = False,
                           seed: int = 0,
                           num_random: int = 32) -> bool:
    """Check that an AIG computes ``a * b`` on sampled operand pairs.

    The AIG inputs are assumed ordered as ``a0..a{width_a-1}, b0..b{width_b-1}``
    and outputs as the product bits, least-significant first.

    Args:
        aig: multiplier AIG.
        width_a: bitwidth of the first operand.
        width_b: bitwidth of the second operand.
        samples: explicit operand pairs to test; random pairs are drawn when
            omitted.
        signed: interpret operands and product in two's complement.
        seed: random seed for sampled operands.
        num_random: number of random samples when ``samples`` is None.

    Returns:
        True if every sampled product matches.
    """
    if aig.num_inputs != width_a + width_b:
        raise ValueError("input count does not match the operand widths")
    rng = random.Random(seed)
    if samples is None:
        samples = [(rng.randrange(1 << width_a), rng.randrange(1 << width_b))
                   for _ in range(num_random)]
        corner = [0, 1, (1 << width_a) - 1]
        corner_b = [0, 1, (1 << width_b) - 1]
        samples = list(samples) + [(x, y) for x in corner for y in corner_b]

    width_out = aig.num_outputs
    for a_value, b_value in samples:
        bits: Dict[int, bool] = {}
        for i in range(width_a):
            bits[aig.inputs[i]] = bool((a_value >> i) & 1)
        for i in range(width_b):
            bits[aig.inputs[width_a + i]] = bool((b_value >> i) & 1)
        out_bits = aig.evaluate(bits)
        product = 0
        for i, bit in enumerate(out_bits):
            if bit:
                product |= 1 << i
        if signed:
            a_signed = a_value - (1 << width_a) if a_value >> (width_a - 1) else a_value
            b_signed = b_value - (1 << width_b) if b_value >> (width_b - 1) else b_value
            expected = (a_signed * b_signed) % (1 << width_out)
        else:
            expected = (a_value * b_value) % (1 << width_out)
        if product != expected:
            return False
    return True
