"""Truth-table utilities for small Boolean functions and AIG cones.

Truth tables are packed into Python integers: a function over ``k`` variables
is a ``2**k``-bit integer whose bit ``m`` is the function value on minterm
``m`` (variable 0 being the least-significant selector).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .aig import AIG, lit_is_compl, lit_var

__all__ = [
    "table_mask",
    "var_table",
    "table_not",
    "cofactors",
    "cone_truth_table",
    "output_truth_tables",
    "aig_equivalent",
    "XOR3_TABLE",
    "MAJ3_TABLE",
    "XOR2_TABLE",
    "AND2_TABLE",
]


def table_mask(num_vars: int) -> int:
    """Return the all-ones mask for a ``num_vars``-variable truth table."""
    return (1 << (1 << num_vars)) - 1


def var_table(index: int, num_vars: int) -> int:
    """Return the truth table of projection variable ``index``.

    Variable 0 alternates every minterm (``0101...``), variable 1 every two
    minterms, and so on.
    """
    if index >= num_vars:
        raise ValueError(f"variable {index} out of range for {num_vars} variables")
    block = 1 << index
    pattern = ((1 << block) - 1) << block
    period = 2 * block
    table = 0
    for offset in range(0, 1 << num_vars, period):
        table |= pattern << offset
    return table & table_mask(num_vars)


def table_not(table: int, num_vars: int) -> int:
    """Complement a truth table over ``num_vars`` variables."""
    return ~table & table_mask(num_vars)


def cofactors(table: int, var_index: int, num_vars: int) -> Tuple[int, int]:
    """Return the (negative, positive) cofactors with respect to ``var_index``.

    Both cofactors are returned as truth tables over the same variable set
    (the cofactored variable simply becomes a don't-care).
    """
    mask = table_mask(num_vars)
    var = var_table(var_index, num_vars)
    positive = table & var
    negative = table & ~var & mask
    block = 1 << var_index
    positive = positive | (positive >> block)
    negative = negative | (negative << block)
    return negative & mask, positive & mask


def cone_truth_table(aig: AIG, root_var: int, leaves: Sequence[int]) -> int:
    """Compute the truth table of gate variable ``root_var`` over ``leaves``.

    Args:
        aig: the AIG.
        root_var: variable index of the cone root.
        leaves: ordered variable indices treated as the cone inputs.

    Returns:
        A packed truth table over ``len(leaves)`` variables.

    Raises:
        ValueError: if the cone depends on a variable outside ``leaves`` that
            is not itself driven by gates within the cone.
    """
    num_vars = len(leaves)
    mask = table_mask(num_vars)
    values: Dict[int, int] = {0: 0}
    for position, leaf in enumerate(leaves):
        values[leaf] = var_table(position, num_vars)

    def eval_var(var: int) -> int:
        if var in values:
            return values[var]
        if not aig.is_gate_var(var):
            raise ValueError(
                f"cone of variable {root_var} depends on free variable {var} "
                f"not listed among the leaves {list(leaves)}")
        gate = aig.gate_of(var)
        a = eval_lit(gate.fanin0)
        b = eval_lit(gate.fanin1)
        result = a & b
        values[var] = result
        return result

    def eval_lit(lit: int) -> int:
        word = eval_var(lit_var(lit))
        return (~word & mask) if lit_is_compl(lit) else word

    return eval_var(root_var) & mask


def output_truth_tables(aig: AIG) -> List[int]:
    """Return the truth table of every primary output over all primary inputs.

    Only sensible for small AIGs (up to roughly 16 inputs).
    """
    num_vars = aig.num_inputs
    if num_vars > 20:
        raise ValueError("too many inputs for exhaustive truth tables")
    mask = table_mask(num_vars)
    words = {var: var_table(position, num_vars)
             for position, var in enumerate(aig.inputs)}
    values = aig.simulate(words, mask=mask)
    return aig.output_words(values, mask)


def aig_equivalent(left: AIG, right: AIG) -> bool:
    """Exhaustively check combinational equivalence of two small AIGs.

    The AIGs must have the same number of inputs and outputs; inputs are
    matched positionally.
    """
    if left.num_inputs != right.num_inputs or left.num_outputs != right.num_outputs:
        return False
    return output_truth_tables(left) == output_truth_tables(right)


def _named_table(bits: Sequence[int]) -> int:
    table = 0
    for minterm, value in enumerate(bits):
        if value:
            table |= 1 << minterm
    return table


# Reference truth tables over (a, b, c) with a as variable 0.
AND2_TABLE = _named_table([0, 0, 0, 1])
XOR2_TABLE = _named_table([0, 1, 1, 0])
XOR3_TABLE = _named_table([0, 1, 1, 0, 1, 0, 0, 1])
MAJ3_TABLE = _named_table([0, 0, 0, 1, 0, 1, 1, 1])
