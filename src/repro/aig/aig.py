"""And-Inverter Graph (AIG) data structure.

The AIG is the central Boolean-network representation used throughout the
BoolE reproduction.  It follows the AIGER convention:

* every variable ``v`` has two literals, ``2*v`` (positive) and ``2*v + 1``
  (complemented);
* variable ``0`` is the constant, so literal ``0`` is Boolean FALSE and
  literal ``1`` is Boolean TRUE;
* primary inputs are variables without a defining AND gate;
* every internal node is a two-input AND gate over two fanin literals.

The class performs structural hashing (strashing) and constant/trivial
simplification on insertion, mirroring how ABC builds AIGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "AIG",
    "AndGate",
    "lit_var",
    "lit_is_compl",
    "lit_not",
    "lit_regular",
    "make_lit",
    "CONST0",
    "CONST1",
]

# Literals of the constant variable (variable index 0).
CONST0 = 0
CONST1 = 1


def make_lit(var: int, compl: bool = False) -> int:
    """Build a literal from a variable index and a complement flag."""
    return 2 * var + (1 if compl else 0)


def lit_var(lit: int) -> int:
    """Return the variable index of a literal."""
    return lit >> 1


def lit_is_compl(lit: int) -> bool:
    """Return True if the literal is complemented."""
    return bool(lit & 1)


def lit_not(lit: int) -> int:
    """Return the complement of a literal."""
    return lit ^ 1


def lit_regular(lit: int) -> int:
    """Return the positive-phase (non-complemented) version of a literal."""
    return lit & ~1


@dataclass(frozen=True)
class AndGate:
    """A two-input AND gate defining one AIG variable.

    Attributes:
        out_var: variable index defined by this gate.
        fanin0: first fanin literal (by convention ``fanin0 <= fanin1``).
        fanin1: second fanin literal.
    """

    out_var: int
    fanin0: int
    fanin1: int

    @property
    def out_lit(self) -> int:
        """Positive literal of the gate's output variable."""
        return make_lit(self.out_var)

    def fanin_vars(self) -> Tuple[int, int]:
        """Return the two fanin variable indices."""
        return (lit_var(self.fanin0), lit_var(self.fanin1))


@dataclass
class AIG:
    """A structurally hashed And-Inverter Graph.

    The graph owns:

    * a list of primary-input variables (``inputs``) with optional names;
    * a list of AND gates (``gates``) in creation order, which is also a
      valid topological order (fanins always precede their fanout gate);
    * a list of primary outputs (``outputs``) given as literals with names.
    """

    name: str = "aig"
    inputs: List[int] = field(default_factory=list)
    input_names: Dict[int, str] = field(default_factory=dict)
    outputs: List[int] = field(default_factory=list)
    output_names: List[str] = field(default_factory=list)
    gates: List[AndGate] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._next_var = 1
        self._strash: Dict[Tuple[int, int], int] = {}
        self._gate_of_var: Dict[int, AndGate] = {}
        for gate in self.gates:
            self._register_gate(gate)
            self._next_var = max(self._next_var, gate.out_var + 1)
        for var in self.inputs:
            self._next_var = max(self._next_var, var + 1)

    # ------------------------------------------------------------------
    # Construction primitives
    # ------------------------------------------------------------------
    def add_input(self, name: Optional[str] = None) -> int:
        """Create a new primary input and return its positive literal."""
        var = self._next_var
        self._next_var += 1
        self.inputs.append(var)
        if name is None:
            name = f"i{len(self.inputs) - 1}"
        self.input_names[var] = name
        return make_lit(var)

    def add_output(self, lit: int, name: Optional[str] = None) -> int:
        """Register ``lit`` as a primary output; returns the output index."""
        self._check_lit(lit)
        self.outputs.append(lit)
        if name is None:
            name = f"o{len(self.outputs) - 1}"
        self.output_names.append(name)
        return len(self.outputs) - 1

    def const(self, value: bool) -> int:
        """Return the constant TRUE or FALSE literal."""
        return CONST1 if value else CONST0

    def and_(self, a: int, b: int) -> int:
        """Return the literal of ``a AND b``, with simplification and strashing."""
        self._check_lit(a)
        self._check_lit(b)
        # Trivial simplifications (same as ABC's Aig_And).
        if a == CONST0 or b == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1:
            return a
        if a == b:
            return a
        if a == lit_not(b):
            return CONST0
        if a > b:
            a, b = b, a
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return existing
        var = self._next_var
        self._next_var += 1
        gate = AndGate(out_var=var, fanin0=a, fanin1=b)
        self.gates.append(gate)
        self._register_gate(gate)
        lit = make_lit(var)
        self._strash[key] = lit
        return lit

    def not_(self, a: int) -> int:
        """Return the complement of literal ``a``."""
        self._check_lit(a)
        return lit_not(a)

    def or_(self, a: int, b: int) -> int:
        """Return the literal of ``a OR b`` built from AND/NOT."""
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def nand_(self, a: int, b: int) -> int:
        """Return the literal of ``NOT (a AND b)``."""
        return lit_not(self.and_(a, b))

    def nor_(self, a: int, b: int) -> int:
        """Return the literal of ``NOT (a OR b)``."""
        return self.and_(lit_not(a), lit_not(b))

    def xor_(self, a: int, b: int) -> int:
        """Return the literal of ``a XOR b`` built from two AND gates."""
        return lit_not(self.and_(lit_not(self.and_(a, lit_not(b))),
                                 lit_not(self.and_(lit_not(a), b))))

    def xnor_(self, a: int, b: int) -> int:
        """Return the literal of ``NOT (a XOR b)``."""
        return lit_not(self.xor_(a, b))

    def mux_(self, sel: int, t: int, e: int) -> int:
        """Return the literal of ``sel ? t : e``."""
        return self.or_(self.and_(sel, t), self.and_(lit_not(sel), e))

    def xor3_(self, a: int, b: int, c: int) -> int:
        """Return the literal of the three-input XOR (full-adder sum)."""
        return self.xor_(self.xor_(a, b), c)

    def maj3_(self, a: int, b: int, c: int) -> int:
        """Return the literal of the three-input majority (full-adder carry)."""
        return self.or_(self.or_(self.and_(a, b), self.and_(a, c)),
                        self.and_(b, c))

    def half_adder(self, a: int, b: int) -> Tuple[int, int]:
        """Return ``(sum, carry)`` literals of a half adder."""
        return self.xor_(a, b), self.and_(a, b)

    def full_adder(self, a: int, b: int, c: int) -> Tuple[int, int]:
        """Return ``(sum, carry)`` literals of a full adder."""
        return self.xor3_(a, b, c), self.maj3_(a, b, c)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        """Number of primary outputs."""
        return len(self.outputs)

    @property
    def num_gates(self) -> int:
        """Number of AND gates (AIG nodes)."""
        return len(self.gates)

    @property
    def num_vars(self) -> int:
        """Number of variables including the constant variable 0."""
        return self._next_var

    def is_input_var(self, var: int) -> bool:
        """Return True if ``var`` is a primary-input variable."""
        return var in self.input_names

    def is_const_var(self, var: int) -> bool:
        """Return True if ``var`` is the constant variable."""
        return var == 0

    def is_gate_var(self, var: int) -> bool:
        """Return True if ``var`` is defined by an AND gate."""
        return var in self._gate_of_var

    def gate_of(self, var: int) -> AndGate:
        """Return the AND gate defining ``var`` (raises KeyError for PIs)."""
        return self._gate_of_var[var]

    def fanins(self, var: int) -> Tuple[int, int]:
        """Return the two fanin literals of the gate defining ``var``."""
        gate = self._gate_of_var[var]
        return (gate.fanin0, gate.fanin1)

    def input_name(self, var: int) -> str:
        """Return the name of a primary-input variable."""
        return self.input_names[var]

    def topological_gates(self) -> Iterator[AndGate]:
        """Iterate gates in topological (creation) order."""
        return iter(self.gates)

    def fanout_map(self) -> Dict[int, List[int]]:
        """Return a map from variable index to the list of fanout gate variables."""
        fanouts: Dict[int, List[int]] = {var: [] for var in range(self._next_var)}
        for gate in self.gates:
            for fin in gate.fanin_vars():
                fanouts[fin].append(gate.out_var)
        return fanouts

    def levels(self) -> Dict[int, int]:
        """Return the logic level (depth) of every variable; PIs are level 0."""
        level: Dict[int, int] = {0: 0}
        for var in self.inputs:
            level[var] = 0
        for gate in self.gates:
            v0, v1 = gate.fanin_vars()
            level[gate.out_var] = 1 + max(level[v0], level[v1])
        return level

    def depth(self) -> int:
        """Return the maximum logic level over all outputs."""
        if not self.outputs:
            return 0
        level = self.levels()
        return max(level[lit_var(lit)] for lit in self.outputs)

    def cone_vars(self, roots: Iterable[int]) -> List[int]:
        """Return all gate variables in the transitive fanin cone of ``roots``.

        ``roots`` are variable indices.  The result is in topological order and
        excludes primary inputs and the constant.
        """
        wanted = set()
        stack = list(roots)
        while stack:
            var = stack.pop()
            if var in wanted or not self.is_gate_var(var):
                continue
            wanted.add(var)
            stack.extend(self.gate_of(var).fanin_vars())
        return [g.out_var for g in self.gates if g.out_var in wanted]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, input_values: Dict[int, int],
                 mask: Optional[int] = None) -> Dict[int, int]:
        """Bit-parallel simulation.

        Args:
            input_values: map from primary-input variable to an integer whose
                bits carry one simulation pattern each.
            mask: optional bit mask limiting the pattern width (e.g.
                ``(1 << n_patterns) - 1``).  If omitted, complements are
                computed over the widest provided input word.

        Returns:
            Map from every variable index to its simulated word.
        """
        if mask is None:
            width = max((value.bit_length() for value in input_values.values()),
                        default=1)
            width = max(width, 1)
            mask = (1 << width) - 1
        values: Dict[int, int] = {0: 0}
        for var in self.inputs:
            values[var] = input_values.get(var, 0) & mask
        for gate in self.gates:
            a = self._lit_word(gate.fanin0, values, mask)
            b = self._lit_word(gate.fanin1, values, mask)
            values[gate.out_var] = a & b
        return values

    def evaluate(self, input_bits: Dict[int, bool]) -> List[bool]:
        """Evaluate the outputs for a single input assignment."""
        words = {var: (1 if bit else 0) for var, bit in input_bits.items()}
        values = self.simulate(words, mask=1)
        return [bool(self._lit_word(lit, values, 1)) for lit in self.outputs]

    def output_words(self, values: Dict[int, int], mask: int) -> List[int]:
        """Map simulated variable words to output-literal words."""
        return [self._lit_word(lit, values, mask) for lit in self.outputs]

    def _lit_word(self, lit: int, values: Dict[int, int], mask: int) -> int:
        word = values[lit_var(lit)]
        if lit_is_compl(lit):
            word = ~word & mask
        return word & mask

    # ------------------------------------------------------------------
    # Transformation helpers
    # ------------------------------------------------------------------
    def cleanup(self) -> "AIG":
        """Return a copy with dangling gates (no path to an output) removed."""
        keep = set()
        stack = [lit_var(lit) for lit in self.outputs]
        while stack:
            var = stack.pop()
            if var in keep or not self.is_gate_var(var):
                continue
            keep.add(var)
            stack.extend(self.gate_of(var).fanin_vars())
        new = AIG(name=self.name)
        mapping: Dict[int, int] = {0: CONST0}
        for var in self.inputs:
            mapping[var] = new.add_input(self.input_names[var])
        for gate in self.gates:
            if gate.out_var not in keep:
                continue
            a = self._map_lit(gate.fanin0, mapping)
            b = self._map_lit(gate.fanin1, mapping)
            mapping[gate.out_var] = new.and_(a, b)
        for lit, name in zip(self.outputs, self.output_names):
            new.add_output(self._map_lit(lit, mapping), name)
        return new

    def copy(self) -> "AIG":
        """Return a deep structural copy of the AIG."""
        new = AIG(name=self.name)
        mapping: Dict[int, int] = {0: CONST0}
        for var in self.inputs:
            mapping[var] = new.add_input(self.input_names[var])
        for gate in self.gates:
            a = self._map_lit(gate.fanin0, mapping)
            b = self._map_lit(gate.fanin1, mapping)
            mapping[gate.out_var] = new.and_(a, b)
        for lit, name in zip(self.outputs, self.output_names):
            new.add_output(self._map_lit(lit, mapping), name)
        return new

    @staticmethod
    def _map_lit(lit: int, mapping: Dict[int, int]) -> int:
        mapped = mapping[lit_var(lit)]
        return lit_not(mapped) if lit_is_compl(lit) else mapped

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _register_gate(self, gate: AndGate) -> None:
        self._gate_of_var[gate.out_var] = gate
        a, b = gate.fanin0, gate.fanin1
        if a > b:
            a, b = b, a
        self._strash.setdefault((a, b), make_lit(gate.out_var))

    def _check_lit(self, lit: int) -> None:
        if lit < 0 or lit_var(lit) >= self._next_var:
            raise ValueError(f"literal {lit} refers to an unknown variable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AIG(name={self.name!r}, inputs={self.num_inputs}, "
                f"outputs={self.num_outputs}, gates={self.num_gates})")
