"""AIG substrate: data structure, AIGER I/O, simulation and truth tables."""

from .aig import (
    AIG,
    AndGate,
    CONST0,
    CONST1,
    lit_is_compl,
    lit_not,
    lit_regular,
    lit_var,
    make_lit,
)
from .aiger import from_aag_string, read_aag, to_aag_string, write_aag
from .simulate import (
    evaluate_words,
    multiplier_value_check,
    random_simulation,
    simulation_signatures,
)
from .truth_table import (
    AND2_TABLE,
    MAJ3_TABLE,
    XOR2_TABLE,
    XOR3_TABLE,
    aig_equivalent,
    cone_truth_table,
    output_truth_tables,
    table_mask,
    table_not,
    var_table,
)

__all__ = [
    "AIG",
    "AndGate",
    "CONST0",
    "CONST1",
    "lit_is_compl",
    "lit_not",
    "lit_regular",
    "lit_var",
    "make_lit",
    "from_aag_string",
    "read_aag",
    "to_aag_string",
    "write_aag",
    "evaluate_words",
    "multiplier_value_check",
    "random_simulation",
    "simulation_signatures",
    "AND2_TABLE",
    "MAJ3_TABLE",
    "XOR2_TABLE",
    "XOR3_TABLE",
    "aig_equivalent",
    "cone_truth_table",
    "output_truth_tables",
    "table_mask",
    "table_not",
    "var_table",
]
