"""repro.store: persistent e-graph snapshots + content-addressed caching.

Three layers (documented in ``docs/serialization.md``):

* :mod:`repro.store.codec` — versioned snapshot wire format for complete
  e-graphs, back-off scheduler state and resumable runner checkpoints,
  with atomic gzip file I/O;
* :mod:`repro.store.fingerprint` — SHA-256 content fingerprints of the
  saturation inputs (AIG, options, ruleset), salted with the codec
  version;
* :mod:`repro.store.store` — the on-disk content-addressed artifact
  store (``ArtifactStore``) with an advisory index, verify and GC.

A command-line inspector lives in ``python -m repro.store``.
"""

from .codec import (
    CODEC_VERSION,
    KIND_CHECKPOINT,
    KIND_EGRAPH,
    KIND_EXTRACTION,
    KIND_JOB,
    KIND_SATURATED,
    KIND_SWEEP,
    SnapshotError,
    SnapshotVersionError,
    aig_from_wire,
    aig_to_wire,
    checkpoint_from_wire,
    checkpoint_to_wire,
    egraph_from_wire,
    egraph_to_wire,
    extraction_from_wire,
    extraction_to_wire,
    load_checkpoint,
    load_egraph,
    read_snapshot,
    report_from_wire,
    report_to_wire,
    save_checkpoint,
    save_egraph,
    scheduler_from_wire,
    scheduler_to_wire,
    write_snapshot,
)
from .fingerprint import (
    canonical_digest,
    combine_cache_key,
    extraction_cache_key,
    fingerprint_aig,
    fingerprint_options,
    fingerprint_ruleset,
    phase_checkpoint_key,
    pipeline_cache_key,
)
from .store import ArtifactStore, StoreEntry

__all__ = [
    "CODEC_VERSION",
    "KIND_CHECKPOINT",
    "KIND_EGRAPH",
    "KIND_EXTRACTION",
    "KIND_JOB",
    "KIND_SATURATED",
    "KIND_SWEEP",
    "SnapshotError",
    "SnapshotVersionError",
    "aig_from_wire",
    "aig_to_wire",
    "checkpoint_from_wire",
    "checkpoint_to_wire",
    "egraph_from_wire",
    "egraph_to_wire",
    "extraction_from_wire",
    "extraction_to_wire",
    "load_checkpoint",
    "load_egraph",
    "read_snapshot",
    "report_from_wire",
    "report_to_wire",
    "save_checkpoint",
    "save_egraph",
    "scheduler_from_wire",
    "scheduler_to_wire",
    "write_snapshot",
    "canonical_digest",
    "combine_cache_key",
    "extraction_cache_key",
    "fingerprint_aig",
    "fingerprint_options",
    "fingerprint_ruleset",
    "phase_checkpoint_key",
    "pipeline_cache_key",
    "ArtifactStore",
    "StoreEntry",
]
