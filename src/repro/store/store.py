"""Content-addressed on-disk artifact store for e-graph snapshots.

Layout (all under one root directory)::

    <root>/
      objects/<k[:2]>/<key>.json.gz   # snapshot files (codec wire format)
      index.json                      # advisory metadata index

Artifacts are addressed by the SHA-256 content key of their *inputs*
(:mod:`repro.store.fingerprint`), never by position or name, so a store
can be shared between branches, machines and CI runs: an entry is either
exactly the artifact you asked for or absent.

Concurrency/atomicity model: object files are written via temp-file +
``os.replace`` (readers never see partial snapshots, concurrent writers
of the same key race benignly — both write identical bytes).  The index
is rewritten atomically, with every read-modify-write serialised by an
in-process lock *and* an ``flock`` on a sidecar lock file, so concurrent
writers — other threads, other store instances, other processes on the
same host — cannot lose each other's entries.  It is still *advisory*
in the recovery sense: :meth:`verify` re-adopts any orphaned object
file, so even a byte-level index disaster loses only metadata, never
objects.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import tempfile
import threading
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts skip file locking
    fcntl = None  # type: ignore[assignment]
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .codec import KIND_JOB, SnapshotError, read_snapshot, write_snapshot

__all__ = ["ArtifactStore", "StoreEntry"]

_KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")
_OBJECT_SUFFIX = ".json.gz"
_PIN_SUFFIX = ".pin"
_LEASE_SUFFIX = ".lease"


@dataclass
class StoreEntry:
    """Index record of one stored artifact."""

    key: str
    kind: str
    created: float
    size: int
    meta: Dict = field(default_factory=dict)
    #: True when a pin sidecar protects the artifact from GC eviction.
    pinned: bool = False


class ArtifactStore:
    """A content-addressed store of snapshot artifacts.

    Example::

        store = ArtifactStore("~/.cache/repro-store")
        store.put(key, {"egraph": wire}, kind="egraph", meta={"width": 16})
        payload = store.get(key)        # None on miss

    Args:
        root: store directory (created on first write; ``~`` expanded).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def _objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def path_for(self, key: str) -> Path:
        """Object-file path of ``key`` (the file may not exist)."""
        self._check_key(key)
        return self._objects_dir / key[:2] / f"{key}{_OBJECT_SUFFIX}"

    @staticmethod
    def _check_key(key: str) -> None:
        if not _KEY_RE.match(key):
            raise ValueError(f"invalid store key {key!r} (want lowercase hex)")

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def _pin_path(self, key: str) -> Path:
        return self.path_for(key).with_name(
            f"{key}{_OBJECT_SUFFIX}{_PIN_SUFFIX}")

    def contains(self, key: str) -> bool:
        """True when an artifact for ``key`` is on disk."""
        return self.path_for(key).exists()

    def kinds(self) -> Dict[str, str]:
        """Read-only ``key → kind`` snapshot of the advisory index.

        Planners probing many keys read the index once and pass the
        snapshot to :meth:`probe`, instead of re-reading it per key.
        """
        return {key: record.get("kind", "?")
                for key, record in self._read_index().items()}

    def probe(self, key: str, expected_kind: Optional[str] = None, *,
              kinds: Optional[Dict[str, str]] = None) -> bool:
        """Read-only existence check: would :meth:`get` serve this key?

        Unlike :meth:`get`, the object is never opened or touched — no
        payload decode, no LRU mtime bump — so probing is safe for
        planning passes that must not mutate the store.  The kind check
        consults the advisory index (pass a pre-read :meth:`kinds`
        snapshot to amortise it); an object the index does not know
        passes the check, because content-addressed keys digest their
        kind and execution re-verifies the header anyway.
        """
        if not self.path_for(key).exists():
            return False
        if expected_kind is None:
            return True
        if kinds is None:
            kinds = self.kinds()
        kind = kinds.get(key)
        return kind is None or kind == expected_kind

    def missing_keys(self, keys: Iterable[str]) -> List[str]:
        """Keys among ``keys`` with no artifact on disk (order preserved).

        A batched :meth:`probe` without the kind check: one ``stat`` per
        key, no payload decode, no mtime bump.  The worker fleet's
        dependency gate uses it to decide whether a DAG-scheduled job's
        prerequisites have landed yet.
        """
        return [key for key in keys if not self.path_for(key).exists()]

    def probe_all(self, keys: Iterable[str]) -> bool:
        """True when every key in ``keys`` has an artifact on disk."""
        return not self.missing_keys(keys)

    def put(self, key: str, payload: Dict, *, kind: str,
            meta: Optional[Dict] = None) -> Path:
        """Store ``payload`` under ``key``; returns the object path.

        Writing the same key twice is idempotent (content addressing makes
        the bytes identical); the index keeps the latest metadata.
        """
        path = self.path_for(key)
        write_snapshot(path, kind, payload, meta=meta)
        self._index_update(key, StoreEntry(
            key=key, kind=kind, created=time.time(),
            size=path.stat().st_size, meta=dict(meta or {})))
        return path

    def get(self, key: str, *,
            expected_kind: Optional[str] = None) -> Optional[Dict]:
        """Return the stored payload for ``key``, or ``None`` on a miss.

        A hit bumps the object's mtime so :meth:`gc` can evict least
        recently *used* (not written) artifacts.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        document = read_snapshot(path, expected_kind=expected_kind)
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - mtime bump is best-effort
            pass
        return document["payload"]

    def delete(self, key: str) -> bool:
        """Remove ``key``'s artifact (and pin sidecar); True if it existed.

        Explicit deletion overrides pinning — pins only protect against
        :meth:`gc` eviction, not against a caller that names the key.
        """
        path = self.path_for(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        self._pin_path(key).unlink(missing_ok=True)
        if existed:
            with self._index_mutation():
                index = self._read_index()
                if index.pop(key, None) is not None:
                    self._write_index(index)
        return existed

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self, key: str) -> None:
        """Protect ``key`` from GC eviction (age and size policies).

        Pins are sidecar files next to the object, so they survive index
        loss and travel with the objects directory.  Pinning a missing
        artifact raises ``KeyError`` — a pin records intent about bytes
        that exist, not a reservation.
        """
        if not self.contains(key):
            raise KeyError(key)
        self._pin_path(key).touch()

    def unpin(self, key: str) -> bool:
        """Drop the pin on ``key``; True when a pin existed."""
        self._check_key(key)
        pin = self._pin_path(key)
        existed = pin.exists()
        pin.unlink(missing_ok=True)
        return existed

    def is_pinned(self, key: str) -> bool:
        """True when ``key`` carries a pin sidecar."""
        self._check_key(key)
        return self._pin_path(key).exists()

    # ------------------------------------------------------------------
    # Lease sidecars
    # ------------------------------------------------------------------
    # The store owns the *file format* of advisory lease sidecars — JSON
    # ``{"owner", "acquired", "heartbeat", "ttl"}`` next to the object
    # path, exactly like pins — so verify/gc can self-heal a crashed
    # fleet without importing the service layer.  The claim/heartbeat
    # *protocol* lives in :mod:`repro.service.leases`.
    def lease_path_for(self, key: str) -> Path:
        """Lease-sidecar path of ``key`` (the file may not exist).

        Leases are claims on keys, not on objects: the sidecar usually
        appears *before* the artifact it guards (a worker claims the key,
        then computes the object), so — unlike pins — a lease on a
        missing artifact is the normal case, not an error.
        """
        return self.path_for(key).with_name(
            f"{key}{_OBJECT_SUFFIX}{_LEASE_SUFFIX}")

    def read_lease(self, key: str) -> Optional[Dict]:
        """Return ``key``'s lease payload, or ``None`` when absent/corrupt."""
        try:
            with open(self.lease_path_for(key), "r",
                      encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    @staticmethod
    def lease_is_stale(payload: Optional[Dict],
                       now: Optional[float] = None) -> bool:
        """True when a lease payload's heartbeat has expired (or is junk).

        A lease whose owner stopped heartbeating for longer than its own
        recorded ``ttl`` is dead capacity: verify/gc collect it and other
        workers may take the key over.
        """
        if payload is None:
            return True
        heartbeat = payload.get("heartbeat")
        ttl = payload.get("ttl")
        if (not isinstance(heartbeat, (int, float))
                or not isinstance(ttl, (int, float))):
            return True
        if now is None:
            now = time.time()
        return now > float(heartbeat) + float(ttl)

    def _lease_files(self) -> List[Path]:
        if not self._objects_dir.exists():
            return []
        return sorted(self._objects_dir.rglob("*" + _LEASE_SUFFIX))

    def leases(self) -> Dict[str, Dict]:
        """All lease sidecars on disk, ``key → payload`` (sorted by key).

        Unreadable lease files map to an empty payload (always stale).
        """
        table: Dict[str, Dict] = {}
        suffix = _OBJECT_SUFFIX + _LEASE_SUFFIX
        for path in self._lease_files():
            key = path.name[:-len(suffix)]
            table[key] = self.read_lease(key) or {}
        return table

    def describe(self, key: str) -> Optional[Dict]:
        """Return a stored artifact's header (kind, meta, size) sans payload."""
        path = self.path_for(key)
        if not path.exists():
            return None
        document = read_snapshot(path)
        return {
            "key": key,
            "kind": document["kind"],
            "codec_version": document["codec_version"],
            "meta": document["meta"],
            "size": path.stat().st_size,
            "pinned": self.is_pinned(key),
        }

    # ------------------------------------------------------------------
    # Index
    # ------------------------------------------------------------------
    def _read_index(self) -> Dict[str, Dict]:
        try:
            with open(self._index_path, "r", encoding="utf-8") as stream:
                data = json.load(stream)
            return data if isinstance(data, dict) else {}
        except (OSError, ValueError):
            return {}

    def _write_index(self, index: Dict[str, Dict]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(dir=self.root,
                                            prefix="index", suffix=".tmp")
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(index, stream, sort_keys=True, indent=1)
        os.replace(tmp_name, self._index_path)

    @property
    def _index_lock_path(self) -> Path:
        return self.root / "index.lock"

    @contextlib.contextmanager
    def _index_mutation(self) -> Iterator[None]:
        """Serialise index read-modify-writes across threads and processes.

        The in-process lock orders threads sharing this instance; the
        ``flock`` on a sidecar file orders distinct instances and
        distinct processes (each acquisition opens its own descriptor,
        so two instances in one process serialise too).  Without it a
        concurrent writer's entry is silently lost — metadata-only for
        result artifacts, but a lost ``kind="job"`` entry hides a queued
        job from the worker fleet forever.
        """
        with self._lock:
            if fcntl is None:  # pragma: no cover - non-POSIX fallback
                yield
                return
            self.root.mkdir(parents=True, exist_ok=True)
            handle = os.open(self._index_lock_path,
                             os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(handle, fcntl.LOCK_EX)
                yield
            finally:
                os.close(handle)  # closing the descriptor drops the flock

    def _index_update(self, key: str, entry: StoreEntry) -> None:
        with self._index_mutation():
            index = self._read_index()
            index[key] = {"kind": entry.kind, "created": entry.created,
                          "size": entry.size, "meta": entry.meta}
            self._write_index(index)

    def entries(self) -> List[StoreEntry]:
        """Indexed artifacts, newest first."""
        index = self._read_index()
        listed = [StoreEntry(key=key, kind=record.get("kind", "?"),
                             created=record.get("created", 0.0),
                             size=record.get("size", 0),
                             meta=record.get("meta", {}),
                             pinned=self.is_pinned(key))
                  for key, record in index.items()]
        return sorted(listed, key=lambda entry: -entry.created)

    def total_bytes(self) -> int:
        """Total size of all object files on disk."""
        if not self._objects_dir.exists():
            return 0
        return sum(path.stat().st_size
                   for path in self._objects_dir.rglob("*" + _OBJECT_SUFFIX))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _object_files(self) -> List[Path]:
        if not self._objects_dir.exists():
            return []
        return sorted(self._objects_dir.rglob("*" + _OBJECT_SUFFIX))

    def verify(self) -> Dict[str, List[str]]:
        """Cross-check index and objects; adopt orphans, drop ghosts.

        Returns a report dict: ``unreadable`` objects (corrupt/obsolete
        codec — left in place for :meth:`gc`), ``adopted`` object keys that
        were missing from the index, ``dropped`` index entries whose
        object files are gone, ``stale_leases`` whose sidecars were
        collected (heartbeat expired — the owning worker is gone), and
        ``requeued_jobs``: ``kind="job"`` records stuck in a live state
        (``planned``/``running``) with no live lease on their final key,
        reset to ``queued`` so a surviving fleet picks them back up.  The
        last two are what lets a hard-crashed fleet self-heal with one
        ``verify`` (or the next worker's takeover scan).
        """
        report: Dict[str, List[str]] = {
            "unreadable": [], "adopted": [], "dropped": [],
            "stale_leases": [], "requeued_jobs": []}
        now = time.time()
        with self._index_mutation():
            index = self._read_index()
            on_disk = {}
            for path in self._object_files():
                key = path.name[:-len(_OBJECT_SUFFIX)]
                try:
                    document = read_snapshot(path)
                except SnapshotError:
                    report["unreadable"].append(str(path))
                    continue
                on_disk[key] = (path, document)
            for key, (path, document) in on_disk.items():
                if key not in index:
                    index[key] = {"kind": document["kind"],
                                  "created": path.stat().st_mtime,
                                  "size": path.stat().st_size,
                                  "meta": document["meta"]}
                    report["adopted"].append(key)
            for key in list(index):
                if key not in on_disk:
                    del index[key]
                    report["dropped"].append(key)
            for key, payload in self.leases().items():
                if self.lease_is_stale(payload, now):
                    self.lease_path_for(key).unlink(missing_ok=True)
                    report["stale_leases"].append(key)
            for key, (path, document) in on_disk.items():
                if document["kind"] != KIND_JOB:
                    continue
                payload = document["payload"]
                if not isinstance(payload, dict):
                    continue
                if payload.get("state") not in ("planned", "running"):
                    continue
                final_key = payload.get("final_key")
                lease = (self.read_lease(final_key)
                         if isinstance(final_key, str)
                         and _KEY_RE.match(final_key) else None)
                if not self.lease_is_stale(lease, now):
                    continue
                payload = dict(payload)
                payload["state"] = "queued"
                payload["worker"] = None
                payload["updated"] = now
                write_snapshot(path, KIND_JOB, payload,
                               meta=document["meta"])
                index[key] = {"kind": KIND_JOB,
                              "created": index.get(key, {}).get(
                                  "created", path.stat().st_mtime),
                              "size": path.stat().st_size,
                              "meta": document["meta"]}
                report["requeued_jobs"].append(key)
            self._write_index(index)
        return report

    def gc(self, *, max_age_seconds: Optional[float] = None,
           max_total_bytes: Optional[int] = None,
           dry_run: bool = False) -> List[str]:
        """Evict artifacts; returns the removed (or would-remove) keys.

        Policy, applied in order:

        1. objects that cannot be read (corrupt, or written by another
           codec version) are always eligible — **even when pinned**: an
           unreadable object can never be served again, so keeping it
           would only wedge the store after a codec bump;
        2. unpinned objects unused for more than ``max_age_seconds``
           (mtime is bumped on every :meth:`get` hit);
        3. unpinned objects beyond ``max_total_bytes``, cheapest rebuild
           first: eviction order is (``saturation_seconds`` recorded in
           the artifact's ``meta`` ascending, then least-recently-used),
           so a shared cache under size pressure sheds the artifacts that
           cost seconds to recompute before the ones that cost minutes.

        With neither limit set, only unreadable objects and stale leases
        are collected.  :meth:`pin` / :meth:`unpin` control the pin set
        (e.g. nightly CI pins its 16-bit artifacts so per-PR sweeps
        cannot evict them).  Stale ``.lease`` sidecars (heartbeat older
        than their own ``ttl`` — the owning worker crashed) are always
        collected; live leases are never touched, even when the object
        they guard is evicted (the owner may be mid-recompute).
        """
        now = time.time()
        removed: List[str] = []
        if not dry_run:
            for key, payload in self.leases().items():
                if self.lease_is_stale(payload, now):
                    self.lease_path_for(key).unlink(missing_ok=True)
        survivors: List[Tuple[float, float, Path]] = []
        for path in self._object_files():
            key = path.name[:-len(_OBJECT_SUFFIX)]
            try:
                document = read_snapshot(path)
            except SnapshotError:
                removed.append(key)
                if not dry_run:
                    path.unlink(missing_ok=True)
                    self._pin_path(key).unlink(missing_ok=True)
                continue
            if self.is_pinned(key):
                continue
            mtime = path.stat().st_mtime
            if (max_age_seconds is not None
                    and now - mtime > max_age_seconds):
                removed.append(key)
                if not dry_run:
                    path.unlink(missing_ok=True)
                continue
            meta = document.get("meta") or {}
            cost = meta.get("saturation_seconds")
            if not isinstance(cost, (int, float)):
                cost = 0.0
            survivors.append((float(cost), mtime, path))
        if max_total_bytes is not None:
            # Rebuild-cost-aware LRU: under budget pressure, evict the
            # cheapest-to-recompute artifacts first, breaking cost ties by
            # least-recent use.  Pinned objects never reach this list but
            # their bytes still count against the budget — a store whose
            # pins exceed the budget simply evicts everything unpinned.
            survivors.sort()
            pinned_bytes = sum(
                path.stat().st_size for path in self._object_files()
                if self.is_pinned(path.name[:-len(_OBJECT_SUFFIX)]))
            total = pinned_bytes + sum(path.stat().st_size
                                       for _cost, _mtime, path in survivors)
            while survivors and total > max_total_bytes:
                _cost, _mtime, path = survivors.pop(0)
                total -= path.stat().st_size
                removed.append(path.name[:-len(_OBJECT_SUFFIX)])
                if not dry_run:
                    path.unlink(missing_ok=True)
        if not dry_run and removed:
            with self._index_mutation():
                index = self._read_index()
                for key in removed:
                    index.pop(key, None)
                self._write_index(index)
        return removed
