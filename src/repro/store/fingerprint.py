"""Stable content fingerprints for cacheable saturation inputs.

A saturated e-graph is (since the determinism work of PR 2) a pure
function of three inputs: the netlist, the pipeline options and the
ruleset.  Each gets a SHA-256 fingerprint over a canonical serialization,
salted with the snapshot codec version, and the three fingerprints
combine into a single content-addressed cache key
(:func:`pipeline_cache_key`).  Identical inputs — across processes,
machines and ``PYTHONHASHSEED`` values — always map to the same key;
*any* difference that can change the saturated e-graph changes the key.

Invalidation rules (see ``docs/serialization.md``):

* the codec version salts every digest, so a wire-format bump orphans all
  old artifacts at the key level;
* AIG fingerprints cover structure and signal names but **not** the
  netlist's display name, so structurally identical circuits share cache
  entries;
* option fingerprints cover every field except ``extract`` (extraction
  runs after the cache boundary); unknown future fields are picked up
  automatically via ``dataclasses.fields``;
* ruleset fingerprints cover each rule's name, pattern text, direction,
  group and the qualified names of condition/applier callables.  A change
  to a callable's *body* is invisible to the fingerprint — pass a new
  ``revision`` tag (or bump the codec version) when editing rule
  semantics in place.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Sequence

from ..aig import AIG
from ..egraph import Rewrite

if TYPE_CHECKING:  # import cycle: repro.core imports repro.store
    from ..core.pipeline import BoolEOptions
from .codec import CODEC_VERSION

__all__ = [
    "canonical_digest",
    "combine_cache_key",
    "extraction_cache_key",
    "fingerprint_aig",
    "fingerprint_options",
    "fingerprint_ruleset",
    "phase_checkpoint_key",
    "pipeline_cache_key",
]

#: ``BoolEOptions`` fields that cannot change the saturated e-graph:
#: ``extract``/``refine_rounds`` only act after the cache boundary (the
#: latter participates in :func:`extraction_cache_key` instead) and
#: ``checkpoint_every`` only changes *when* snapshots are taken — resume
#: is bit-identical, so two runs differing only in cadence must share
#: artifacts.  ``engine`` selects between bit-identical saturation
#: backends (dense vs. python), so artifacts produced under either engine
#: must warm the other.
_NON_SEMANTIC_OPTION_FIELDS = frozenset(
    {"extract", "refine_rounds", "checkpoint_every", "engine"})


def canonical_digest(payload: object) -> str:
    """SHA-256 hex digest of a JSON-serializable payload, codec-salted.

    The payload is rendered as canonical JSON (sorted keys, no
    whitespace); the digest input is prefixed with the codec version so
    every wire-format bump invalidates all derived cache keys.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(f"repro.store/v{CODEC_VERSION}\0".encode("utf-8"))
    digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


def fingerprint_aig(aig: AIG) -> str:
    """Fingerprint an AIG's structure and signal names.

    Covers inputs (variable indices and names), every AND gate and every
    output literal/name.  The netlist's display ``name`` is deliberately
    excluded: it does not influence saturation, and excluding it lets
    structurally identical circuits share cached artifacts.
    """
    return canonical_digest({
        "kind": "aig",
        "inputs": [[var, aig.input_names[var]] for var in aig.inputs],
        "gates": [[gate.out_var, gate.fanin0, gate.fanin1]
                  for gate in aig.gates],
        "outputs": [[lit, name]
                    for lit, name in zip(aig.outputs, aig.output_names)],
    })


def fingerprint_options(options: "BoolEOptions") -> str:
    """Fingerprint a :class:`~repro.core.pipeline.BoolEOptions` instance.

    Every dataclass field except the non-semantic ones participates:
    ``extract`` and ``refine_rounds`` only act after the cache boundary
    (the latter is digested into :func:`extraction_cache_key` instead),
    ``checkpoint_every`` cannot change results (resume is bit-identical),
    and ``engine`` selects a saturation backend that is proven
    bit-identical to the reference (same wire bytes, same fingerprints),
    so configurations differing only in those share the saturated
    artifact.  Fields added in future revisions are included
    automatically, which errs on the side of cache misses rather than
    wrong hits.
    """
    payload = {field.name: getattr(options, field.name)
               for field in dataclasses.fields(options)
               if field.name not in _NON_SEMANTIC_OPTION_FIELDS}
    return canonical_digest({"kind": "options", "fields": payload})


def _describe_callable(func: Optional[Callable]) -> str:
    if func is None:
        return ""
    return f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"


def fingerprint_ruleset(rules: Iterable[Rewrite],
                        revision: str = "") -> str:
    """Fingerprint a ruleset by each rule's observable definition.

    ``revision`` is an opaque tag mixed into the digest; rule modules can
    bump it when a condition/applier *body* changes (the fingerprint only
    sees callables' qualified names).
    """
    return canonical_digest({
        "kind": "ruleset",
        "revision": revision,
        "rules": [
            [rule.name, str(rule.lhs), str(rule.rhs), rule.bidirectional,
             rule.group, _describe_callable(rule.condition),
             _describe_callable(rule.applier)]
            for rule in rules
        ],
    })


def combine_cache_key(aig_fingerprint: str, options_fingerprint: str,
                      ruleset_fingerprints: Sequence[str]) -> str:
    """Combine already-computed fingerprints into one store key.

    Split out from :func:`pipeline_cache_key` so callers that probe many
    netlists under one configuration (the pipeline, the batch driver) can
    compute the options/ruleset fingerprints once and vary only the AIG.
    """
    return canonical_digest({
        "kind": "pipeline-cache-key",
        "aig": aig_fingerprint,
        "options": options_fingerprint,
        "rulesets": list(ruleset_fingerprints),
    })


def extraction_cache_key(saturated_key: str, node_cost: Dict[str, int],
                         roots: Sequence[int],
                         refine_rounds: int = 0) -> str:
    """Content key of a ``kind="extraction"`` artifact.

    Extraction + reconstruction are a pure function of the saturated
    e-graph (addressed by ``saturated_key``, which already covers the
    netlist, the options, the rulesets and the codec version), the
    extractor's per-operator cost table, the reconstruction roots
    (construction-time output class ids) and the refinement budget.
    Changing any of them — or bumping ``CODEC_VERSION``, which salts
    :func:`canonical_digest` — changes the key, so stale extraction
    artifacts are never even opened.
    """
    return canonical_digest({
        "kind": "extraction-cache-key",
        "saturated": saturated_key,
        "node_cost": sorted(node_cost.items()),
        "roots": list(roots),
        "refine_rounds": refine_rounds,
    })


def phase_checkpoint_key(saturated_key: str, phase: str) -> str:
    """Content key of a pipeline phase's ``kind="checkpoint"`` artifact.

    Derived from the saturated pipeline key (netlist + options + rulesets
    + codec version) and the phase name, so a checkpoint can only ever be
    resumed by a run that would — uninterrupted — have produced the same
    phase output.  Checkpoint cadence is deliberately absent: resume is
    bit-identical, so runs with different ``checkpoint_every`` settings
    share (and supersede) each other's checkpoints.
    """
    return canonical_digest({
        "kind": "phase-checkpoint-key",
        "saturated": saturated_key,
        "phase": phase,
    })


def pipeline_cache_key(aig: AIG, options: "BoolEOptions",
                       rulesets: Sequence[Iterable[Rewrite]],
                       revision: str = "") -> str:
    """Combine input fingerprints into one content-addressed store key."""
    return combine_cache_key(
        fingerprint_aig(aig),
        fingerprint_options(options),
        [fingerprint_ruleset(rules, revision=revision)
         for rules in rulesets])
